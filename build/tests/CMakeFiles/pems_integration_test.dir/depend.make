# Empty dependencies file for pems_integration_test.
# This may be replaced when dependencies are built.
