# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pems_integration_test.
