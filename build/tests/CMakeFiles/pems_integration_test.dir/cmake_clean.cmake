file(REMOVE_RECURSE
  "CMakeFiles/pems_integration_test.dir/pems_integration_test.cc.o"
  "CMakeFiles/pems_integration_test.dir/pems_integration_test.cc.o.d"
  "pems_integration_test"
  "pems_integration_test.pdb"
  "pems_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pems_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
