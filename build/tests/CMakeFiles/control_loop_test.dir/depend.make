# Empty dependencies file for control_loop_test.
# This may be replaced when dependencies are built.
