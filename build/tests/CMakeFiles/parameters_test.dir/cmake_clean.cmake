file(REMOVE_RECURSE
  "CMakeFiles/parameters_test.dir/parameters_test.cc.o"
  "CMakeFiles/parameters_test.dir/parameters_test.cc.o.d"
  "parameters_test"
  "parameters_test.pdb"
  "parameters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
