# Empty compiler generated dependencies file for parameters_test.
# This may be replaced when dependencies are built.
