file(REMOVE_RECURSE
  "CMakeFiles/streaming_bp_test.dir/streaming_bp_test.cc.o"
  "CMakeFiles/streaming_bp_test.dir/streaming_bp_test.cc.o.d"
  "streaming_bp_test"
  "streaming_bp_test.pdb"
  "streaming_bp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_bp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
