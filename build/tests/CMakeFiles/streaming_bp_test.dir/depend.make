# Empty dependencies file for streaming_bp_test.
# This may be replaced when dependencies are built.
