# Empty compiler generated dependencies file for table_manager_test.
# This may be replaced when dependencies are built.
