file(REMOVE_RECURSE
  "CMakeFiles/table_manager_test.dir/table_manager_test.cc.o"
  "CMakeFiles/table_manager_test.dir/table_manager_test.cc.o.d"
  "table_manager_test"
  "table_manager_test.pdb"
  "table_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
