# Empty compiler generated dependencies file for xrelation_test.
# This may be replaced when dependencies are built.
