file(REMOVE_RECURSE
  "CMakeFiles/xrelation_test.dir/xrelation_test.cc.o"
  "CMakeFiles/xrelation_test.dir/xrelation_test.cc.o.d"
  "xrelation_test"
  "xrelation_test.pdb"
  "xrelation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrelation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
