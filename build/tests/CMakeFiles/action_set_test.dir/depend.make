# Empty dependencies file for action_set_test.
# This may be replaced when dependencies are built.
