file(REMOVE_RECURSE
  "CMakeFiles/action_set_test.dir/action_set_test.cc.o"
  "CMakeFiles/action_set_test.dir/action_set_test.cc.o.d"
  "action_set_test"
  "action_set_test.pdb"
  "action_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
