file(REMOVE_RECURSE
  "CMakeFiles/erm_test.dir/erm_test.cc.o"
  "CMakeFiles/erm_test.dir/erm_test.cc.o.d"
  "erm_test"
  "erm_test.pdb"
  "erm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
