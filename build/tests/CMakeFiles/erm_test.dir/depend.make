# Empty dependencies file for erm_test.
# This may be replaced when dependencies are built.
