file(REMOVE_RECURSE
  "CMakeFiles/realization_test.dir/realization_test.cc.o"
  "CMakeFiles/realization_test.dir/realization_test.cc.o.d"
  "realization_test"
  "realization_test.pdb"
  "realization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
