# Empty compiler generated dependencies file for realization_test.
# This may be replaced when dependencies are built.
