# Empty dependencies file for serena.
# This may be replaced when dependencies are built.
