file(REMOVE_RECURSE
  "libserena.a"
)
