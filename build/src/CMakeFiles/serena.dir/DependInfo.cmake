
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/action.cc" "src/CMakeFiles/serena.dir/algebra/action.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/action.cc.o.d"
  "/root/repo/src/algebra/aggregate.cc" "src/CMakeFiles/serena.dir/algebra/aggregate.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/aggregate.cc.o.d"
  "/root/repo/src/algebra/explain.cc" "src/CMakeFiles/serena.dir/algebra/explain.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/explain.cc.o.d"
  "/root/repo/src/algebra/formula.cc" "src/CMakeFiles/serena.dir/algebra/formula.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/formula.cc.o.d"
  "/root/repo/src/algebra/operators.cc" "src/CMakeFiles/serena.dir/algebra/operators.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/operators.cc.o.d"
  "/root/repo/src/algebra/parameters.cc" "src/CMakeFiles/serena.dir/algebra/parameters.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/parameters.cc.o.d"
  "/root/repo/src/algebra/plan.cc" "src/CMakeFiles/serena.dir/algebra/plan.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/plan.cc.o.d"
  "/root/repo/src/algebra/validate.cc" "src/CMakeFiles/serena.dir/algebra/validate.cc.o" "gcc" "src/CMakeFiles/serena.dir/algebra/validate.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/serena.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/serena.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/serena.dir/common/random.cc.o" "gcc" "src/CMakeFiles/serena.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/serena.dir/common/status.cc.o" "gcc" "src/CMakeFiles/serena.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/serena.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/serena.dir/common/string_util.cc.o.d"
  "/root/repo/src/ddl/algebra_parser.cc" "src/CMakeFiles/serena.dir/ddl/algebra_parser.cc.o" "gcc" "src/CMakeFiles/serena.dir/ddl/algebra_parser.cc.o.d"
  "/root/repo/src/ddl/catalog.cc" "src/CMakeFiles/serena.dir/ddl/catalog.cc.o" "gcc" "src/CMakeFiles/serena.dir/ddl/catalog.cc.o.d"
  "/root/repo/src/ddl/ddl_parser.cc" "src/CMakeFiles/serena.dir/ddl/ddl_parser.cc.o" "gcc" "src/CMakeFiles/serena.dir/ddl/ddl_parser.cc.o.d"
  "/root/repo/src/ddl/dump.cc" "src/CMakeFiles/serena.dir/ddl/dump.cc.o" "gcc" "src/CMakeFiles/serena.dir/ddl/dump.cc.o.d"
  "/root/repo/src/ddl/lexer.cc" "src/CMakeFiles/serena.dir/ddl/lexer.cc.o" "gcc" "src/CMakeFiles/serena.dir/ddl/lexer.cc.o.d"
  "/root/repo/src/env/prototypes.cc" "src/CMakeFiles/serena.dir/env/prototypes.cc.o" "gcc" "src/CMakeFiles/serena.dir/env/prototypes.cc.o.d"
  "/root/repo/src/env/scenario.cc" "src/CMakeFiles/serena.dir/env/scenario.cc.o" "gcc" "src/CMakeFiles/serena.dir/env/scenario.cc.o.d"
  "/root/repo/src/env/sim_services.cc" "src/CMakeFiles/serena.dir/env/sim_services.cc.o" "gcc" "src/CMakeFiles/serena.dir/env/sim_services.cc.o.d"
  "/root/repo/src/env/synthetic_service.cc" "src/CMakeFiles/serena.dir/env/synthetic_service.cc.o" "gcc" "src/CMakeFiles/serena.dir/env/synthetic_service.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/serena.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/serena.dir/io/csv.cc.o.d"
  "/root/repo/src/pems/erm.cc" "src/CMakeFiles/serena.dir/pems/erm.cc.o" "gcc" "src/CMakeFiles/serena.dir/pems/erm.cc.o.d"
  "/root/repo/src/pems/monitor.cc" "src/CMakeFiles/serena.dir/pems/monitor.cc.o" "gcc" "src/CMakeFiles/serena.dir/pems/monitor.cc.o.d"
  "/root/repo/src/pems/network.cc" "src/CMakeFiles/serena.dir/pems/network.cc.o" "gcc" "src/CMakeFiles/serena.dir/pems/network.cc.o.d"
  "/root/repo/src/pems/pems.cc" "src/CMakeFiles/serena.dir/pems/pems.cc.o" "gcc" "src/CMakeFiles/serena.dir/pems/pems.cc.o.d"
  "/root/repo/src/pems/query_processor.cc" "src/CMakeFiles/serena.dir/pems/query_processor.cc.o" "gcc" "src/CMakeFiles/serena.dir/pems/query_processor.cc.o.d"
  "/root/repo/src/pems/table_manager.cc" "src/CMakeFiles/serena.dir/pems/table_manager.cc.o" "gcc" "src/CMakeFiles/serena.dir/pems/table_manager.cc.o.d"
  "/root/repo/src/rewrite/cost.cc" "src/CMakeFiles/serena.dir/rewrite/cost.cc.o" "gcc" "src/CMakeFiles/serena.dir/rewrite/cost.cc.o.d"
  "/root/repo/src/rewrite/equivalence.cc" "src/CMakeFiles/serena.dir/rewrite/equivalence.cc.o" "gcc" "src/CMakeFiles/serena.dir/rewrite/equivalence.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/CMakeFiles/serena.dir/rewrite/rewriter.cc.o" "gcc" "src/CMakeFiles/serena.dir/rewrite/rewriter.cc.o.d"
  "/root/repo/src/rewrite/rules.cc" "src/CMakeFiles/serena.dir/rewrite/rules.cc.o" "gcc" "src/CMakeFiles/serena.dir/rewrite/rules.cc.o.d"
  "/root/repo/src/schema/binding_pattern.cc" "src/CMakeFiles/serena.dir/schema/binding_pattern.cc.o" "gcc" "src/CMakeFiles/serena.dir/schema/binding_pattern.cc.o.d"
  "/root/repo/src/schema/extended_schema.cc" "src/CMakeFiles/serena.dir/schema/extended_schema.cc.o" "gcc" "src/CMakeFiles/serena.dir/schema/extended_schema.cc.o.d"
  "/root/repo/src/schema/relation_schema.cc" "src/CMakeFiles/serena.dir/schema/relation_schema.cc.o" "gcc" "src/CMakeFiles/serena.dir/schema/relation_schema.cc.o.d"
  "/root/repo/src/service/prototype.cc" "src/CMakeFiles/serena.dir/service/prototype.cc.o" "gcc" "src/CMakeFiles/serena.dir/service/prototype.cc.o.d"
  "/root/repo/src/service/service.cc" "src/CMakeFiles/serena.dir/service/service.cc.o" "gcc" "src/CMakeFiles/serena.dir/service/service.cc.o.d"
  "/root/repo/src/service/service_registry.cc" "src/CMakeFiles/serena.dir/service/service_registry.cc.o" "gcc" "src/CMakeFiles/serena.dir/service/service_registry.cc.o.d"
  "/root/repo/src/stream/continuous_query.cc" "src/CMakeFiles/serena.dir/stream/continuous_query.cc.o" "gcc" "src/CMakeFiles/serena.dir/stream/continuous_query.cc.o.d"
  "/root/repo/src/stream/executor.cc" "src/CMakeFiles/serena.dir/stream/executor.cc.o" "gcc" "src/CMakeFiles/serena.dir/stream/executor.cc.o.d"
  "/root/repo/src/stream/stream_store.cc" "src/CMakeFiles/serena.dir/stream/stream_store.cc.o" "gcc" "src/CMakeFiles/serena.dir/stream/stream_store.cc.o.d"
  "/root/repo/src/stream/xd_relation.cc" "src/CMakeFiles/serena.dir/stream/xd_relation.cc.o" "gcc" "src/CMakeFiles/serena.dir/stream/xd_relation.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/serena.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/serena.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/tuple.cc" "src/CMakeFiles/serena.dir/types/tuple.cc.o" "gcc" "src/CMakeFiles/serena.dir/types/tuple.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/serena.dir/types/value.cc.o" "gcc" "src/CMakeFiles/serena.dir/types/value.cc.o.d"
  "/root/repo/src/xrel/environment.cc" "src/CMakeFiles/serena.dir/xrel/environment.cc.o" "gcc" "src/CMakeFiles/serena.dir/xrel/environment.cc.o.d"
  "/root/repo/src/xrel/xrelation.cc" "src/CMakeFiles/serena.dir/xrel/xrelation.cc.o" "gcc" "src/CMakeFiles/serena.dir/xrel/xrelation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
