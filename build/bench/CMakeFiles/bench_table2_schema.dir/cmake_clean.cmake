file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_schema.dir/bench_table2_schema.cc.o"
  "CMakeFiles/bench_table2_schema.dir/bench_table2_schema.cc.o.d"
  "bench_table2_schema"
  "bench_table2_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
