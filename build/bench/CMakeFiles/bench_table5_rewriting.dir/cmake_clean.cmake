file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rewriting.dir/bench_table5_rewriting.cc.o"
  "CMakeFiles/bench_table5_rewriting.dir/bench_table5_rewriting.cc.o.d"
  "bench_table5_rewriting"
  "bench_table5_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
