file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_scalability.dir/bench_exp_scalability.cc.o"
  "CMakeFiles/bench_exp_scalability.dir/bench_exp_scalability.cc.o.d"
  "bench_exp_scalability"
  "bench_exp_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
