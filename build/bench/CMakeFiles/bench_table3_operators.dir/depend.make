# Empty dependencies file for bench_table3_operators.
# This may be replaced when dependencies are built.
