file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ddl.dir/bench_table1_ddl.cc.o"
  "CMakeFiles/bench_table1_ddl.dir/bench_table1_ddl.cc.o.d"
  "bench_table1_ddl"
  "bench_table1_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
