file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_rss.dir/bench_exp_rss.cc.o"
  "CMakeFiles/bench_exp_rss.dir/bench_exp_rss.cc.o.d"
  "bench_exp_rss"
  "bench_exp_rss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_rss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
