# Empty compiler generated dependencies file for bench_exp_rss.
# This may be replaced when dependencies are built.
