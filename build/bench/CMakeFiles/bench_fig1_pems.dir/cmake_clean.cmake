file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pems.dir/bench_fig1_pems.cc.o"
  "CMakeFiles/bench_fig1_pems.dir/bench_fig1_pems.cc.o.d"
  "bench_fig1_pems"
  "bench_fig1_pems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
