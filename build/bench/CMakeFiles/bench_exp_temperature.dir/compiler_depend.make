# Empty compiler generated dependencies file for bench_exp_temperature.
# This may be replaced when dependencies are built.
