file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_temperature.dir/bench_exp_temperature.cc.o"
  "CMakeFiles/bench_exp_temperature.dir/bench_exp_temperature.cc.o.d"
  "bench_exp_temperature"
  "bench_exp_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
