# Empty compiler generated dependencies file for serena_shell.
# This may be replaced when dependencies are built.
