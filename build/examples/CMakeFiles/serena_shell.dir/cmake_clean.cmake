file(REMOVE_RECURSE
  "CMakeFiles/serena_shell.dir/serena_shell.cc.o"
  "CMakeFiles/serena_shell.dir/serena_shell.cc.o.d"
  "serena_shell"
  "serena_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serena_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
