file(REMOVE_RECURSE
  "CMakeFiles/rss_feeds.dir/rss_feeds.cc.o"
  "CMakeFiles/rss_feeds.dir/rss_feeds.cc.o.d"
  "rss_feeds"
  "rss_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
