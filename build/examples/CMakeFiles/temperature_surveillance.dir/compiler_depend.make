# Empty compiler generated dependencies file for temperature_surveillance.
# This may be replaced when dependencies are built.
