file(REMOVE_RECURSE
  "CMakeFiles/temperature_surveillance.dir/temperature_surveillance.cc.o"
  "CMakeFiles/temperature_surveillance.dir/temperature_surveillance.cc.o.d"
  "temperature_surveillance"
  "temperature_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
