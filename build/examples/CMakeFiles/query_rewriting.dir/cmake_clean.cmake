file(REMOVE_RECURSE
  "CMakeFiles/query_rewriting.dir/query_rewriting.cc.o"
  "CMakeFiles/query_rewriting.dir/query_rewriting.cc.o.d"
  "query_rewriting"
  "query_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
