# Empty compiler generated dependencies file for query_rewriting.
# This may be replaced when dependencies are built.
