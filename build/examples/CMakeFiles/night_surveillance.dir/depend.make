# Empty dependencies file for night_surveillance.
# This may be replaced when dependencies are built.
