file(REMOVE_RECURSE
  "CMakeFiles/night_surveillance.dir/night_surveillance.cc.o"
  "CMakeFiles/night_surveillance.dir/night_surveillance.cc.o.d"
  "night_surveillance"
  "night_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/night_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
