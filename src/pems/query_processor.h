#ifndef SERENA_PEMS_QUERY_PROCESSOR_H_
#define SERENA_PEMS_QUERY_PROCESSOR_H_

#include <map>
#include <string>
#include <vector>

#include <set>

#include "algebra/parameters.h"
#include "analysis/session.h"
#include "ddl/algebra_parser.h"
#include "rewrite/rewriter.h"
#include "stream/executor.h"

namespace serena {

/// The Query Processor (§5.1, Figure 1): registers queries written in the
/// Serena Algebra Language and executes them — one-shot or continuous —
/// after logical optimization through the rewriter. It also maintains
/// *service discovery queries*: X-Relations that continuously mirror the
/// set of available services implementing a given prototype.
class QueryProcessor {
 public:
  QueryProcessor(Environment* env, StreamStore* streams);
  ~QueryProcessor();

  QueryProcessor(const QueryProcessor&) = delete;
  QueryProcessor& operator=(const QueryProcessor&) = delete;

  /// Toggle logical optimization (§3.3 rewriting) before execution.
  void set_optimize(bool optimize) { optimize_ = optimize; }

  /// Toggle the static-analysis gate. When on (the default), every plan
  /// is analyzed before execution or registration and rejected with the
  /// coded diagnostics (docs/ANALYSIS.md) if any *error* is found —
  /// before any service invocation can fire a side effect. Warnings
  /// never block. The initial value honors `SERENA_ANALYZE` (`off`, `0`
  /// or `false` disable the gate — the escape hatch for ill-formed-plan
  /// archaeology).
  void set_analyze(bool analyze) { analyze_ = analyze; }
  bool analyze() const { return analyze_; }

  /// Parses, optimizes and executes a one-shot query at the current
  /// instant.
  Result<QueryResult> ExecuteOneShot(std::string_view algebra);

  /// Parses and stores a parameterized query template under `name`
  /// (prepared-statement pattern; parameters are `:name` placeholders).
  Status Prepare(const std::string& name, std::string_view algebra);

  /// Binds `parameters` into a prepared template, optimizes and executes.
  Result<QueryResult> ExecutePrepared(
      const std::string& name,
      const std::map<std::string, Value>& parameters);

  /// Parameter names a prepared template requires.
  Result<std::set<std::string>> PreparedParameters(
      const std::string& name) const;

  /// Parses, optimizes and registers a continuous query.
  Status RegisterContinuous(const std::string& name,
                            std::string_view algebra,
                            ContinuousQuery::Sink sink = nullptr);
  Status UnregisterContinuous(const std::string& name);
  Result<ContinuousQueryPtr> GetContinuous(const std::string& name) const;

  /// Registers a continuous query whose per-instant results are appended
  /// to the named stream — a *derived stream*, composing continuous
  /// queries: the result of one standing query is an XD-Relation that
  /// other queries window over (§4.1's closure property made concrete).
  ///
  /// Creates the stream on first use (schema inferred from the query);
  /// if it exists, its attribute sequence must match the query's output
  /// (modulo realness — stream schemas store the real projection).
  Status RegisterContinuousInto(const std::string& name,
                                std::string_view algebra,
                                const std::string& stream);

  /// Creates (or adopts) X-Relation `relation`(service SERVICE) and keeps
  /// it synchronized with the registry: one tuple per available service
  /// implementing `prototype` (§5.1's "service discovery queries").
  Status RegisterDiscoveryQuery(const std::string& relation,
                                const std::string& prototype);

  /// The continuous executor driving registered queries; sources (stream
  /// feeders) are added here.
  ContinuousExecutor& executor() { return executor_; }

  /// The analysis session backing the gate: the per-query facts cache
  /// that keeps registration linting O(new query), plus the severity
  /// configuration (seeded from `SERENA_WERROR` / `SERENA_NO_WARN`).
  /// The shell's \check and tests read it; gate callers never need to.
  analysis::Session& analysis_session() { return session_; }
  const analysis::Session& analysis_session() const { return session_; }

  /// Advances one instant (delegates to the executor).
  Timestamp Tick() { return executor_.Tick(); }

 private:
  Status SyncDiscoveryRelation(const std::string& relation,
                               const std::string& prototype);

  /// The static-analysis gate for one plan: InvalidArgument carrying the
  /// rendered coded errors when the analyzer rejects it; OK otherwise
  /// (or when the gate is off).
  Status GatePlan(const PlanPtr& plan, AnalysisContext context) const;

  /// The cross-query gate: incremental frontier lint of the candidate
  /// (`name`, `plan`, `feeds`) against the session's committed facts —
  /// cycles, writer/writer conflicts — before it reaches the executor.
  Status GateRegistration(const std::string& name, const PlanPtr& plan,
                          const std::vector<std::string>& feeds);

  /// Semantic (analyzer-fact-driven) rewrites followed by the classic
  /// rule rewriter; identity when `optimize_` is off.
  Result<PlanPtr> OptimizePlan(PlanPtr plan) const;

  Environment* env_;
  StreamStore* streams_;
  ContinuousExecutor executor_;
  Rewriter rewriter_;
  analysis::Session session_;
  bool optimize_ = true;
  bool analyze_ = true;
  // relation name -> prototype it mirrors.
  std::map<std::string, std::string> discovery_queries_;
  // Prepared query templates by name.
  std::map<std::string, PlanPtr> prepared_;
  std::size_t registry_listener_token_ = 0;
  bool has_listener_ = false;
};

}  // namespace serena

#endif  // SERENA_PEMS_QUERY_PROCESSOR_H_
