#include "pems/table_manager.h"

namespace serena {

ExtendedTableManager::ExtendedTableManager(Environment* env,
                                           StreamStore* streams)
    : env_(env), streams_(streams), catalog_(env, streams) {}

Status ExtendedTableManager::ExecuteDdl(std::string_view ddl) {
  return catalog_.Execute(ddl);
}

Result<bool> ExtendedTableManager::InsertTuple(const std::string& relation,
                                               Tuple tuple) {
  SERENA_ASSIGN_OR_RETURN(XRelation * target,
                          env_->GetMutableRelation(relation));
  return target->Insert(std::move(tuple));
}

Result<bool> ExtendedTableManager::DeleteTuple(const std::string& relation,
                                               const Tuple& tuple) {
  SERENA_ASSIGN_OR_RETURN(XRelation * target,
                          env_->GetMutableRelation(relation));
  return target->Erase(tuple);
}

Status ExtendedTableManager::AppendToStream(const std::string& stream,
                                            Timestamp t, Tuple tuple) {
  if (streams_ == nullptr) {
    return Status::FailedPrecondition("no stream store configured");
  }
  SERENA_ASSIGN_OR_RETURN(XDRelation * target, streams_->GetStream(stream));
  return target->Append(t, std::move(tuple));
}

Result<std::size_t> ExtendedTableManager::RelationSize(
    const std::string& relation) const {
  SERENA_ASSIGN_OR_RETURN(const XRelation* target,
                          env_->GetRelation(relation));
  return target->size();
}

}  // namespace serena
