#ifndef SERENA_PEMS_ERM_H_
#define SERENA_PEMS_ERM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pems/network.h"
#include "service/service.h"
#include "xrel/environment.h"

namespace serena {

class LocalErm;

/// A proxy standing in the core ERM's registry for a service hosted by a
/// remote Local ERM. Invocations are forwarded to the hosting node (with
/// a round trip charged on the simulated network); if the service has
/// disappeared, the invocation fails with Unavailable — exactly what a
/// standing query must tolerate in a pervasive environment.
class RemoteServiceProxy final : public Service {
 public:
  RemoteServiceProxy(std::string ref, std::vector<PrototypePtr> prototypes,
                     std::weak_ptr<LocalErm> host, SimulatedNetwork* network);

  std::vector<PrototypePtr> prototypes() const override {
    return prototypes_;
  }

  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override;

 private:
  std::vector<PrototypePtr> prototypes_;
  std::weak_ptr<LocalErm> host_;
  SimulatedNetwork* network_;
};

/// A Local Environment Resource Manager (§5.1, Figure 1): runs on a
/// device node, hosts the services physically attached there, and
/// announces them on the network (UPnP-style alive/byebye) so the core
/// ERM can discover them.
class LocalErm : public std::enable_shared_from_this<LocalErm> {
 public:
  /// Creates and attaches a Local ERM to the network.
  static Result<std::shared_ptr<LocalErm>> Create(std::string node,
                                                  SimulatedNetwork* network);
  ~LocalErm();

  const std::string& node() const { return node_; }

  /// Hosts a service and announces it at instant `now`.
  Status Host(Timestamp now, ServicePtr service);

  /// Stops hosting a service and broadcasts its departure.
  Status Evict(Timestamp now, const std::string& ref);

  /// Local lookup used by invocation proxies.
  Result<ServicePtr> GetLocal(const std::string& ref) const;

  std::vector<std::string> HostedRefs() const;

  /// Re-announces all hosted services (periodic alive messages).
  void AnnounceAll(Timestamp now);

 private:
  LocalErm(std::string node, SimulatedNetwork* network);

  void Announce(Timestamp now, const Service& service);

  std::string node_;
  SimulatedNetwork* network_;
  std::map<std::string, ServicePtr> hosted_;
};

/// The core Environment Resource Manager (§5.1, Figure 1): listens for
/// service announcements, materializes remote services as proxies in the
/// environment's ServiceRegistry, and removes them on departure. The rest
/// of the system (Query Processor, algebra) sees one uniform registry.
class CoreErm {
 public:
  /// Creates the core ERM on node "core-erm" and attaches it.
  static Result<std::unique_ptr<CoreErm>> Create(SimulatedNetwork* network,
                                                 Environment* env);
  ~CoreErm();

  /// Registry of Local ERMs by node name, needed to resolve the hosting
  /// node of an announcement into a proxy target.
  void TrackLocalErm(const std::shared_ptr<LocalErm>& erm);

  /// UPnP-style lease: a discovered service not re-announced within `ttl`
  /// instants is considered gone (covers devices that crash without a
  /// byebye). 0 disables expiry (the default).
  void set_announcement_ttl(Timestamp ttl) { announcement_ttl_ = ttl; }
  Timestamp announcement_ttl() const { return announcement_ttl_; }

  /// Unregisters services whose announcements have expired at `now`;
  /// returns how many were dropped. Call once per instant (Pems::Tick
  /// does).
  std::size_t ExpireStale(Timestamp now);

  std::uint64_t services_discovered() const { return discovered_; }
  std::uint64_t services_lost() const { return lost_; }
  std::uint64_t services_expired() const { return expired_; }

  static constexpr const char* kNodeName = "core-erm";

 private:
  CoreErm(SimulatedNetwork* network, Environment* env);

  void OnMessage(const NetworkMessage& message);
  void OnAnnounce(const NetworkMessage& message);
  void OnByebye(const NetworkMessage& message);

  SimulatedNetwork* network_;
  Environment* env_;
  std::map<std::string, std::weak_ptr<LocalErm>> local_erms_;
  /// Per discovered service: the instant of its latest announcement.
  std::map<std::string, Timestamp> last_seen_;
  Timestamp announcement_ttl_ = 0;
  std::uint64_t discovered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t expired_ = 0;
};

/// Announcement payload helpers ("ref|proto1,proto2").
std::string EncodeAnnouncement(const std::string& ref,
                               const std::vector<std::string>& prototypes);
Result<std::pair<std::string, std::vector<std::string>>> DecodeAnnouncement(
    const std::string& payload);

}  // namespace serena

#endif  // SERENA_PEMS_ERM_H_
