#include "pems/network.h"

#include <algorithm>

namespace serena {

SimulatedNetwork::SimulatedNetwork() : SimulatedNetwork(Options()) {}

SimulatedNetwork::SimulatedNetwork(const Options& options)
    : options_(options), rng_(options.seed) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  counters_ = Counters{&metrics.GetCounter("serena.network.sent"),
                       &metrics.GetCounter("serena.network.delivered"),
                       &metrics.GetCounter("serena.network.dropped"),
                       &metrics.GetCounter("serena.network.round_trips")};
}

Status SimulatedNetwork::Attach(const std::string& node, Handler handler) {
  if (node.empty() || node == "*") {
    return Status::InvalidArgument("invalid node name '", node, "'");
  }
  if (!nodes_.emplace(node, std::move(handler)).second) {
    return Status::AlreadyExists("node '", node, "' already attached");
  }
  return Status::OK();
}

Status SimulatedNetwork::Detach(const std::string& node) {
  if (nodes_.erase(node) == 0) {
    return Status::NotFound("node '", node, "' is not attached");
  }
  return Status::OK();
}

bool SimulatedNetwork::IsAttached(const std::string& node) const {
  return nodes_.count(node) > 0;
}

void SimulatedNetwork::Send(Timestamp now, NetworkMessage message) {
  ++stats_.sent;
  Count(counters_.sent);
  if (rng_.NextBool(options_.drop_rate)) {
    ++stats_.dropped;
    Count(counters_.dropped);
    return;
  }
  const Timestamp latency =
      rng_.NextInt(options_.min_latency, options_.max_latency);
  queue_.push_back(Pending{now + latency, std::move(message)});
}

void SimulatedNetwork::Broadcast(Timestamp now, const std::string& from,
                                 const std::string& type,
                                 const std::string& payload) {
  NetworkMessage message;
  message.from = from;
  message.to = "*";
  message.type = type;
  message.payload = payload;
  Send(now, std::move(message));
}

std::size_t SimulatedNetwork::DeliverDue(Timestamp now) {
  std::size_t delivered = 0;
  // Stable partition keeps FIFO order among same-due messages.
  std::deque<Pending> remaining;
  std::deque<Pending> due;
  for (Pending& pending : queue_) {
    if (pending.due <= now) {
      due.push_back(std::move(pending));
    } else {
      remaining.push_back(std::move(pending));
    }
  }
  queue_ = std::move(remaining);

  for (Pending& pending : due) {
    NetworkMessage& message = pending.message;
    message.delivered_at = now;
    if (message.to == "*") {
      for (const auto& [node, handler] : nodes_) {
        if (node == message.from) continue;
        handler(message);
        ++stats_.delivered;
        Count(counters_.delivered);
        ++delivered;
      }
    } else {
      const auto it = nodes_.find(message.to);
      if (it != nodes_.end()) {
        it->second(message);
        ++stats_.delivered;
        Count(counters_.delivered);
        ++delivered;
      } else {
        ++stats_.dropped;
        Count(counters_.dropped);
      }
    }
  }
  return delivered;
}

}  // namespace serena
