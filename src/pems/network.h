#ifndef SERENA_PEMS_NETWORK_H_
#define SERENA_PEMS_NETWORK_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace serena {

/// A control-plane message on the simulated network (the UPnP-like
/// discovery traffic of §5.1): service announcements, departures, pings.
struct NetworkMessage {
  std::string from;
  std::string to;  // Node name, or "*" for broadcast.
  std::string type;
  std::string payload;
  /// Filled by the network when the message is handed to a handler: the
  /// instant of delivery (receivers often need "now", e.g. for leases).
  Timestamp delivered_at = 0;
};

/// Statistics for the simulated network.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  /// Data-plane round trips charged by remote invocation proxies.
  std::uint64_t invocation_round_trips = 0;
};

/// An in-process stand-in for the paper's OSGi/UPnP network: nodes attach
/// with a handler; messages are queued with a deterministic sampled
/// latency (in logical instants) and optionally dropped, and delivered
/// when the clock reaches their due time.
///
/// The data plane (remote invocation) does not serialize tuples through
/// this queue — `RemoteServiceProxy` calls the hosting node directly and
/// charges a round trip via `ChargeInvocationRoundTrip`, preserving the
/// cost structure without a marshalling layer.
class SimulatedNetwork {
 public:
  struct Options {
    std::uint64_t seed = 1;
    Timestamp min_latency = 0;  ///< Instants before a message can arrive.
    Timestamp max_latency = 1;
    double drop_rate = 0.0;     ///< Probability a message is lost.
  };

  using Handler = std::function<void(const NetworkMessage&)>;

  /// Default options: latency 0-1 instants, no drops.
  SimulatedNetwork();
  explicit SimulatedNetwork(const Options& options);

  SimulatedNetwork(const SimulatedNetwork&) = delete;
  SimulatedNetwork& operator=(const SimulatedNetwork&) = delete;

  /// Attaches a node. Fails on duplicate names.
  Status Attach(const std::string& node, Handler handler);
  Status Detach(const std::string& node);
  bool IsAttached(const std::string& node) const;

  /// Enqueues a message sent at instant `now`; it will be delivered at
  /// `now + latency` (or dropped).
  void Send(Timestamp now, NetworkMessage message);

  /// Broadcast helper (delivered to every node except the sender).
  void Broadcast(Timestamp now, const std::string& from,
                 const std::string& type, const std::string& payload);

  /// Delivers every queued message due at or before `now`. Returns the
  /// number delivered.
  std::size_t DeliverDue(Timestamp now);

  /// Charged from the data plane, which runs concurrently under a
  /// parallel invocation batch — hence the atomic counter.
  void ChargeInvocationRoundTrip() {
    invocation_round_trips_.fetch_add(1, std::memory_order_relaxed);
    Count(counters_.round_trips);
  }

  /// A snapshot (by value: the round-trip counter advances concurrently).
  NetworkStats stats() const {
    NetworkStats snapshot = stats_;
    snapshot.invocation_round_trips =
        invocation_round_trips_.load(std::memory_order_relaxed);
    return snapshot;
  }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Pending {
    Timestamp due;
    NetworkMessage message;
  };

  /// Registry counters mirroring `stats_` (resolved once; shared names,
  /// so several networks in one process aggregate).
  struct Counters {
    obs::Counter* sent;
    obs::Counter* delivered;
    obs::Counter* dropped;
    obs::Counter* round_trips;
  };

  static void Count(obs::Counter* counter) {
    if (obs::MetricsRegistry::Global().enabled()) counter->Increment();
  }

  Options options_;
  Rng rng_;
  std::map<std::string, Handler> nodes_;
  std::deque<Pending> queue_;
  // Control-plane counters (sent/delivered/dropped) mutate only between
  // query steps; the data-plane round-trip counter is kept separately,
  // atomic, because proxies charge it mid-step from pool threads.
  NetworkStats stats_;
  std::atomic<std::uint64_t> invocation_round_trips_{0};
  Counters counters_;
};

}  // namespace serena

#endif  // SERENA_PEMS_NETWORK_H_
