#ifndef SERENA_PEMS_PEMS_H_
#define SERENA_PEMS_PEMS_H_

#include <memory>
#include <string>
#include <vector>

#include "pems/erm.h"
#include "pems/network.h"
#include "pems/query_processor.h"
#include "pems/table_manager.h"

namespace serena {

/// The Pervasive Environment Management System (§5, Figure 1): owns the
/// relational pervasive environment and wires together the core modules —
///
///   Local ERMs ──announce/byebye──▶ core ERM ──register──▶ ServiceRegistry
///   Serena DDL ──▶ Extended Table Manager ──▶ X-Relations / XD-Relations
///   Serena Algebra Language ──▶ Query Processor ──▶ one-shot / continuous
///
/// `Tick()` advances one logical instant: pending network messages are
/// delivered first (so freshly announced services are visible), then the
/// continuous executor evaluates sources and standing queries.
class Pems {
 public:
  struct Options {
    SimulatedNetwork::Options network;
    /// UPnP-style lease duration in instants; services not re-announced
    /// within this span are dropped. 0 disables expiry.
    Timestamp announcement_ttl = 0;
    /// Every `reannounce_interval` instants all Local ERMs re-announce
    /// their hosted services (alive messages). 0 disables.
    Timestamp reannounce_interval = 0;
  };

  /// Creates a PEMS with default network options.
  static Result<std::unique_ptr<Pems>> Create();
  static Result<std::unique_ptr<Pems>> Create(const Options& options);

  Environment& env() { return env_; }
  StreamStore& streams() { return streams_; }
  SimulatedNetwork& network() { return *network_; }
  ExtendedTableManager& tables() { return *tables_; }
  QueryProcessor& queries() { return *queries_; }
  CoreErm& erm() { return *core_erm_; }

  /// Spawns a Local ERM on node `node` and makes it discoverable.
  Result<std::shared_ptr<LocalErm>> CreateLocalErm(const std::string& node);

  /// Hosts `service` on `node`'s Local ERM (creating the ERM on demand)
  /// at the current instant; the core ERM will discover it once the
  /// announcement is delivered.
  Status Deploy(const std::string& node, ServicePtr service);

  /// Simulates a node crash: its Local ERM is destroyed without any
  /// byebye message. Hosted services stop renewing their leases (they
  /// expire after `announcement_ttl`) and their proxies start failing
  /// with Unavailable.
  Status CrashNode(const std::string& node);

  /// One logical instant: deliver due network traffic, then run sources
  /// and continuous queries.
  Timestamp Tick();
  Timestamp Run(int n);

 private:
  Pems() = default;

  Status Init(const Options& options);

  Options options_;
  Environment env_;
  StreamStore streams_;
  std::unique_ptr<SimulatedNetwork> network_;
  std::unique_ptr<CoreErm> core_erm_;
  std::unique_ptr<ExtendedTableManager> tables_;
  std::unique_ptr<QueryProcessor> queries_;
  std::vector<std::shared_ptr<LocalErm>> local_erms_;
};

}  // namespace serena

#endif  // SERENA_PEMS_PEMS_H_
