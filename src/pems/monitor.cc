#include "pems/monitor.h"

#include "common/string_util.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace serena {

std::string PemsMetrics::ToString() const {
  std::string s;
  s += StringFormat("instant %lld\n", static_cast<long long>(instant));
  s += StringFormat(
      "catalog: %zu prototypes, %zu relations (%zu tuples), %zu streams\n",
      prototypes, relations, total_tuples, streams);
  s += StringFormat(
      "services: %zu available (discovered %llu, lost %llu, expired %llu)\n",
      services, static_cast<unsigned long long>(services_discovered),
      static_cast<unsigned long long>(services_lost),
      static_cast<unsigned long long>(services_expired));
  s += StringFormat(
      "invocations: %llu logical, %llu physical, %llu active, %llu output "
      "tuples, %llu memo hits, %llu failed\n",
      static_cast<unsigned long long>(invocations.logical_invocations),
      static_cast<unsigned long long>(invocations.physical_invocations),
      static_cast<unsigned long long>(invocations.active_invocations),
      static_cast<unsigned long long>(invocations.output_tuples),
      static_cast<unsigned long long>(invocations.memo_hits),
      static_cast<unsigned long long>(invocations.failed_invocations));
  s += StringFormat(
      "network: %llu sent, %llu delivered, %llu dropped, %llu round trips\n",
      static_cast<unsigned long long>(network.sent),
      static_cast<unsigned long long>(network.delivered),
      static_cast<unsigned long long>(network.dropped),
      static_cast<unsigned long long>(network.invocation_round_trips));
  s += StringFormat(
      "executor: %llu ticks, %llu query errors, %llu pruned tuples\n",
      static_cast<unsigned long long>(total_ticks),
      static_cast<unsigned long long>(total_query_errors),
      static_cast<unsigned long long>(total_pruned_tuples));
  if (tick_latency.count > 0) {
    s += StringFormat(
        "tick latency: mean %.1fus, p50 %.1fus, p99 %.1fus, max %.1fus "
        "(%llu samples, process-wide)\n",
        tick_latency.mean_ns / 1e3,
        static_cast<double>(tick_latency.p50_ns) / 1e3,
        static_cast<double>(tick_latency.p99_ns) / 1e3,
        static_cast<double>(tick_latency.max_ns) / 1e3,
        static_cast<unsigned long long>(tick_latency.count));
  }
  s += StringFormat("continuous queries: %zu\n", queries.size());
  for (const QueryInfo& query : queries) {
    s += StringFormat("  %s: %llu steps, %zu distinct actions\n",
                      query.name.c_str(),
                      static_cast<unsigned long long>(query.steps),
                      query.actions);
  }
  for (const QueryHealth::QuerySnapshot& health : query_health) {
    s += StringFormat(
        "  %s health: lag %lld, streak %llu, errors %llu, p50 %.1fus, "
        "p99 %.1fus, rows in/out per step %.1f/%.1f\n",
        health.name.c_str(), static_cast<long long>(health.lag),
        static_cast<unsigned long long>(health.error_streak),
        static_cast<unsigned long long>(health.total_errors),
        static_cast<double>(health.p50_step_ns) / 1e3,
        static_cast<double>(health.p99_step_ns) / 1e3, health.rows_in_rate,
        health.rows_out_rate);
  }
  return s;
}

std::string PemsMetrics::ToJson() const {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("instant").Value(static_cast<std::int64_t>(instant));

  json.Key("catalog").BeginObject();
  json.Key("prototypes").Value(static_cast<std::uint64_t>(prototypes));
  json.Key("relations").Value(static_cast<std::uint64_t>(relations));
  json.Key("total_tuples").Value(static_cast<std::uint64_t>(total_tuples));
  json.Key("streams").Value(static_cast<std::uint64_t>(streams));
  json.EndObject();

  json.Key("services").BeginObject();
  json.Key("available").Value(static_cast<std::uint64_t>(services));
  json.Key("discovered").Value(services_discovered);
  json.Key("lost").Value(services_lost);
  json.Key("expired").Value(services_expired);
  json.EndObject();

  json.Key("invocations").BeginObject();
  json.Key("logical").Value(invocations.logical_invocations);
  json.Key("physical").Value(invocations.physical_invocations);
  json.Key("active").Value(invocations.active_invocations);
  json.Key("output_tuples").Value(invocations.output_tuples);
  json.Key("memo_hits").Value(invocations.memo_hits);
  json.Key("failed").Value(invocations.failed_invocations);
  json.EndObject();

  json.Key("network").BeginObject();
  json.Key("sent").Value(network.sent);
  json.Key("delivered").Value(network.delivered);
  json.Key("dropped").Value(network.dropped);
  json.Key("round_trips").Value(network.invocation_round_trips);
  json.EndObject();

  json.Key("executor").BeginObject();
  json.Key("ticks").Value(total_ticks);
  json.Key("query_errors").Value(total_query_errors);
  json.Key("pruned_tuples").Value(total_pruned_tuples);
  json.Key("tick_latency_ns").BeginObject();
  json.Key("count").Value(tick_latency.count);
  json.Key("mean").Value(tick_latency.mean_ns);
  json.Key("p50").Value(tick_latency.p50_ns);
  json.Key("p99").Value(tick_latency.p99_ns);
  json.Key("max").Value(tick_latency.max_ns);
  json.EndObject();
  json.EndObject();

  json.Key("queries").BeginArray();
  for (const QueryInfo& query : queries) {
    json.BeginObject();
    json.Key("name").Value(query.name);
    json.Key("steps").Value(query.steps);
    json.Key("actions").Value(static_cast<std::uint64_t>(query.actions));
    json.EndObject();
  }
  json.EndArray();

  json.Key("query_health").BeginArray();
  for (const QueryHealth::QuerySnapshot& health : query_health) {
    json.BeginObject();
    json.Key("name").Value(health.name);
    json.Key("last_instant")
        .Value(static_cast<std::int64_t>(health.last_completed_instant));
    json.Key("lag").Value(static_cast<std::int64_t>(health.lag));
    json.Key("streak").Value(health.error_streak);
    json.Key("errors").Value(health.total_errors);
    json.Key("steps").Value(health.steps);
    json.Key("p50_step_ns").Value(health.p50_step_ns);
    json.Key("p99_step_ns").Value(health.p99_step_ns);
    json.Key("rows_in_rate").Value(health.rows_in_rate);
    json.Key("rows_out_rate").Value(health.rows_out_rate);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.TakeString();
}

PemsMetrics SnapshotMetrics(Pems& pems) {
  PemsMetrics metrics;
  metrics.instant = pems.env().clock().now();
  metrics.prototypes = pems.env().PrototypeNames().size();
  const auto relation_names = pems.env().RelationNames();
  metrics.relations = relation_names.size();
  for (const std::string& name : relation_names) {
    auto relation = pems.env().GetRelation(name);
    if (relation.ok()) metrics.total_tuples += (*relation)->size();
  }
  metrics.streams = pems.streams().StreamNames().size();
  metrics.services = pems.env().registry().size();
  metrics.services_discovered = pems.erm().services_discovered();
  metrics.services_lost = pems.erm().services_lost();
  metrics.services_expired = pems.erm().services_expired();
  metrics.invocations = pems.env().registry().stats();
  metrics.network = pems.network().stats();

  const ContinuousExecutor& executor = pems.queries().executor();
  metrics.total_ticks = executor.total_ticks();
  metrics.total_query_errors = executor.total_query_errors();
  metrics.total_pruned_tuples = executor.total_pruned_tuples();

  const obs::Histogram* tick_ns =
      obs::MetricsRegistry::Global().FindHistogram("serena.executor.tick_ns");
  if (tick_ns != nullptr) {
    // One snapshot pass: a concurrent ResetValues can no longer tear the
    // summary into a count from before the reset and percentiles from
    // after it.
    const obs::HistogramSnapshot snapshot = tick_ns->Snapshot();
    metrics.tick_latency.count = snapshot.count;
    metrics.tick_latency.mean_ns = snapshot.mean();
    metrics.tick_latency.p50_ns = snapshot.ValueAtPercentile(50);
    metrics.tick_latency.p99_ns = snapshot.ValueAtPercentile(99);
    metrics.tick_latency.max_ns = snapshot.max;
  }

  for (const std::string& name : pems.queries().executor().QueryNames()) {
    auto query = pems.queries().GetContinuous(name);
    if (query.ok()) {
      metrics.queries.push_back(PemsMetrics::QueryInfo{
          name, (*query)->steps(), (*query)->accumulated_actions().size()});
    }
  }
  metrics.query_health = executor.health().Snapshots();
  return metrics;
}

}  // namespace serena
