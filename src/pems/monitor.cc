#include "pems/monitor.h"

#include "common/string_util.h"

namespace serena {

std::string PemsMetrics::ToString() const {
  std::string s;
  s += StringFormat("instant %lld\n", static_cast<long long>(instant));
  s += StringFormat(
      "catalog: %zu prototypes, %zu relations (%zu tuples), %zu streams\n",
      prototypes, relations, total_tuples, streams);
  s += StringFormat(
      "services: %zu available (discovered %llu, lost %llu, expired %llu)\n",
      services, static_cast<unsigned long long>(services_discovered),
      static_cast<unsigned long long>(services_lost),
      static_cast<unsigned long long>(services_expired));
  s += StringFormat(
      "invocations: %llu logical, %llu physical, %llu active, %llu output "
      "tuples\n",
      static_cast<unsigned long long>(invocations.logical_invocations),
      static_cast<unsigned long long>(invocations.physical_invocations),
      static_cast<unsigned long long>(invocations.active_invocations),
      static_cast<unsigned long long>(invocations.output_tuples));
  s += StringFormat(
      "network: %llu sent, %llu delivered, %llu dropped, %llu round trips\n",
      static_cast<unsigned long long>(network.sent),
      static_cast<unsigned long long>(network.delivered),
      static_cast<unsigned long long>(network.dropped),
      static_cast<unsigned long long>(network.invocation_round_trips));
  s += StringFormat("continuous queries: %zu\n", queries.size());
  for (const QueryInfo& query : queries) {
    s += StringFormat("  %s: %llu steps, %zu distinct actions\n",
                      query.name.c_str(),
                      static_cast<unsigned long long>(query.steps),
                      query.actions);
  }
  return s;
}

PemsMetrics SnapshotMetrics(Pems& pems) {
  PemsMetrics metrics;
  metrics.instant = pems.env().clock().now();
  metrics.prototypes = pems.env().PrototypeNames().size();
  const auto relation_names = pems.env().RelationNames();
  metrics.relations = relation_names.size();
  for (const std::string& name : relation_names) {
    auto relation = pems.env().GetRelation(name);
    if (relation.ok()) metrics.total_tuples += (*relation)->size();
  }
  metrics.streams = pems.streams().StreamNames().size();
  metrics.services = pems.env().registry().size();
  metrics.services_discovered = pems.erm().services_discovered();
  metrics.services_lost = pems.erm().services_lost();
  metrics.services_expired = pems.erm().services_expired();
  metrics.invocations = pems.env().registry().stats();
  metrics.network = pems.network().stats();
  for (const std::string& name : pems.queries().executor().QueryNames()) {
    auto query = pems.queries().GetContinuous(name);
    if (query.ok()) {
      metrics.queries.push_back(PemsMetrics::QueryInfo{
          name, (*query)->steps(), (*query)->accumulated_actions().size()});
    }
  }
  return metrics;
}

}  // namespace serena
