#ifndef SERENA_PEMS_TABLE_MANAGER_H_
#define SERENA_PEMS_TABLE_MANAGER_H_

#include <string>

#include "ddl/catalog.h"
#include "stream/stream_store.h"
#include "xrel/environment.h"

namespace serena {

/// The Extended Table Manager (§5.1, Figure 1): defines XD-Relations from
/// Serena DDL statements and manages their data (insertion and deletion
/// of tuples; appends for streams).
class ExtendedTableManager {
 public:
  ExtendedTableManager(Environment* env, StreamStore* streams);

  /// Executes Serena DDL (PROTOTYPE / SERVICE / EXTENDED RELATION /
  /// EXTENDED STREAM statements).
  Status ExecuteDdl(std::string_view ddl);

  SerenaCatalog& catalog() { return catalog_; }

  /// Inserts a tuple (over the relation's real schema) into a finite
  /// XD-Relation. Returns whether the tuple was new (set semantics).
  Result<bool> InsertTuple(const std::string& relation, Tuple tuple);

  /// Deletes a tuple. Returns whether it was present.
  Result<bool> DeleteTuple(const std::string& relation, const Tuple& tuple);

  /// Appends a tuple to an infinite XD-Relation at instant `t`.
  Status AppendToStream(const std::string& stream, Timestamp t, Tuple tuple);

  /// Number of tuples currently in a finite relation.
  Result<std::size_t> RelationSize(const std::string& relation) const;

 private:
  Environment* env_;
  StreamStore* streams_;
  SerenaCatalog catalog_;
};

}  // namespace serena

#endif  // SERENA_PEMS_TABLE_MANAGER_H_
