#include "pems/pems.h"

namespace serena {

Result<std::unique_ptr<Pems>> Pems::Create() { return Create(Options()); }

Result<std::unique_ptr<Pems>> Pems::Create(const Options& options) {
  std::unique_ptr<Pems> pems(new Pems());
  SERENA_RETURN_NOT_OK(pems->Init(options));
  return pems;
}

Status Pems::Init(const Options& options) {
  options_ = options;
  network_ = std::make_unique<SimulatedNetwork>(options.network);
  SERENA_ASSIGN_OR_RETURN(core_erm_, CoreErm::Create(network_.get(), &env_));
  core_erm_->set_announcement_ttl(options.announcement_ttl);
  tables_ = std::make_unique<ExtendedTableManager>(&env_, &streams_);
  queries_ = std::make_unique<QueryProcessor>(&env_, &streams_);
  return Status::OK();
}

Result<std::shared_ptr<LocalErm>> Pems::CreateLocalErm(
    const std::string& node) {
  SERENA_ASSIGN_OR_RETURN(std::shared_ptr<LocalErm> erm,
                          LocalErm::Create(node, network_.get()));
  core_erm_->TrackLocalErm(erm);
  local_erms_.push_back(erm);
  return erm;
}

Status Pems::Deploy(const std::string& node, ServicePtr service) {
  std::shared_ptr<LocalErm> target;
  for (const auto& erm : local_erms_) {
    if (erm->node() == node) {
      target = erm;
      break;
    }
  }
  if (target == nullptr) {
    SERENA_ASSIGN_OR_RETURN(target, CreateLocalErm(node));
  }
  return target->Host(env_.clock().now(), std::move(service));
}

Status Pems::CrashNode(const std::string& node) {
  for (auto it = local_erms_.begin(); it != local_erms_.end(); ++it) {
    if ((*it)->node() == node) {
      local_erms_.erase(it);  // Last owner: destroys the ERM silently.
      return Status::OK();
    }
  }
  return Status::NotFound("no Local ERM on node '", node, "'");
}

Timestamp Pems::Tick() {
  const Timestamp next = env_.clock().now() + 1;
  // Periodic alive messages from every Local ERM (lease renewal).
  if (options_.reannounce_interval > 0 &&
      next % options_.reannounce_interval == 0) {
    for (const auto& erm : local_erms_) erm->AnnounceAll(next);
  }
  network_->DeliverDue(next);
  core_erm_->ExpireStale(next);
  return queries_->Tick();
}

Timestamp Pems::Run(int n) {
  Timestamp last = env_.clock().now();
  for (int i = 0; i < n; ++i) last = Tick();
  return last;
}

}  // namespace serena
