#include "pems/erm.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace serena {

namespace {

constexpr const char* kAnnounceType = "announce";
constexpr const char* kByebyeType = "byebye";

}  // namespace

std::string EncodeAnnouncement(const std::string& ref,
                               const std::vector<std::string>& prototypes) {
  return ref + "|" + Join(prototypes, ",");
}

Result<std::pair<std::string, std::vector<std::string>>> DecodeAnnouncement(
    const std::string& payload) {
  const std::size_t bar = payload.find('|');
  if (bar == std::string::npos) {
    return Status::ParseError("malformed announcement payload: ", payload);
  }
  const std::string ref = payload.substr(0, bar);
  if (ref.empty()) {
    return Status::ParseError("announcement without service reference");
  }
  std::vector<std::string> prototypes;
  const std::string protos = payload.substr(bar + 1);
  if (!protos.empty()) {
    prototypes = Split(protos, ',');
  }
  return std::make_pair(ref, std::move(prototypes));
}

// ---------------------------------------------------------------------------
// RemoteServiceProxy
// ---------------------------------------------------------------------------

RemoteServiceProxy::RemoteServiceProxy(std::string ref,
                                       std::vector<PrototypePtr> prototypes,
                                       std::weak_ptr<LocalErm> host,
                                       SimulatedNetwork* network)
    : Service(std::move(ref)),
      prototypes_(std::move(prototypes)),
      host_(std::move(host)),
      network_(network) {}

Result<std::vector<Tuple>> RemoteServiceProxy::Invoke(
    const Prototype& prototype, const Tuple& input, Timestamp now) {
  std::shared_ptr<LocalErm> host = host_.lock();
  if (host == nullptr) {
    return Status::Unavailable("service '", id(),
                               "': hosting Local ERM is gone");
  }
  SERENA_ASSIGN_OR_RETURN(ServicePtr service, host->GetLocal(id()));
  if (network_ != nullptr) network_->ChargeInvocationRoundTrip();
  return service->Invoke(prototype, input, now);
}

// ---------------------------------------------------------------------------
// LocalErm
// ---------------------------------------------------------------------------

LocalErm::LocalErm(std::string node, SimulatedNetwork* network)
    : node_(std::move(node)), network_(network) {}

Result<std::shared_ptr<LocalErm>> LocalErm::Create(
    std::string node, SimulatedNetwork* network) {
  if (network == nullptr) {
    return Status::InvalidArgument("null network");
  }
  std::shared_ptr<LocalErm> erm(new LocalErm(std::move(node), network));
  // Local ERMs currently only emit discovery traffic; attach with a no-op
  // handler so unicast pings to the node are deliverable.
  SERENA_RETURN_NOT_OK(
      network->Attach(erm->node_, [](const NetworkMessage&) {}));
  return erm;
}

LocalErm::~LocalErm() {
  if (network_ != nullptr && network_->IsAttached(node_)) {
    (void)network_->Detach(node_);
  }
}

void LocalErm::Announce(Timestamp now, const Service& service) {
  std::vector<std::string> prototype_names;
  for (const PrototypePtr& prototype : service.prototypes()) {
    prototype_names.push_back(prototype->name());
  }
  NetworkMessage message;
  message.from = node_;
  message.to = CoreErm::kNodeName;
  message.type = kAnnounceType;
  message.payload = EncodeAnnouncement(service.id(), prototype_names);
  network_->Send(now, std::move(message));
}

Status LocalErm::Host(Timestamp now, ServicePtr service) {
  if (service == nullptr) {
    return Status::InvalidArgument("null service");
  }
  const std::string ref = service->id();
  const auto [it, inserted] = hosted_.emplace(ref, std::move(service));
  if (!inserted) {
    return Status::AlreadyExists("service '", ref, "' already hosted on '",
                                 node_, "'");
  }
  Announce(now, *it->second);
  return Status::OK();
}

Status LocalErm::Evict(Timestamp now, const std::string& ref) {
  if (hosted_.erase(ref) == 0) {
    return Status::NotFound("service '", ref, "' is not hosted on '", node_,
                            "'");
  }
  NetworkMessage message;
  message.from = node_;
  message.to = CoreErm::kNodeName;
  message.type = kByebyeType;
  message.payload = EncodeAnnouncement(ref, {});
  network_->Send(now, std::move(message));
  return Status::OK();
}

Result<ServicePtr> LocalErm::GetLocal(const std::string& ref) const {
  const auto it = hosted_.find(ref);
  if (it == hosted_.end()) {
    return Status::Unavailable("service '", ref, "' is no longer hosted on '",
                               node_, "'");
  }
  return it->second;
}

std::vector<std::string> LocalErm::HostedRefs() const {
  std::vector<std::string> refs;
  refs.reserve(hosted_.size());
  for (const auto& [ref, service] : hosted_) refs.push_back(ref);
  return refs;
}

void LocalErm::AnnounceAll(Timestamp now) {
  for (const auto& [ref, service] : hosted_) Announce(now, *service);
}

// ---------------------------------------------------------------------------
// CoreErm
// ---------------------------------------------------------------------------

CoreErm::CoreErm(SimulatedNetwork* network, Environment* env)
    : network_(network), env_(env) {}

Result<std::unique_ptr<CoreErm>> CoreErm::Create(SimulatedNetwork* network,
                                                 Environment* env) {
  if (network == nullptr || env == nullptr) {
    return Status::InvalidArgument("null network or environment");
  }
  std::unique_ptr<CoreErm> erm(new CoreErm(network, env));
  CoreErm* raw = erm.get();
  SERENA_RETURN_NOT_OK(network->Attach(
      kNodeName,
      [raw](const NetworkMessage& message) { raw->OnMessage(message); }));
  return erm;
}

CoreErm::~CoreErm() {
  if (network_ != nullptr && network_->IsAttached(kNodeName)) {
    (void)network_->Detach(kNodeName);
  }
}

void CoreErm::TrackLocalErm(const std::shared_ptr<LocalErm>& erm) {
  local_erms_[erm->node()] = erm;
}

void CoreErm::OnMessage(const NetworkMessage& message) {
  if (message.type == kAnnounceType) {
    OnAnnounce(message);
  } else if (message.type == kByebyeType) {
    OnByebye(message);
  }
}

void CoreErm::OnAnnounce(const NetworkMessage& message) {
  auto decoded = DecodeAnnouncement(message.payload);
  if (!decoded.ok()) {
    SERENA_LOG(Warning) << "bad announcement from " << message.from << ": "
                        << decoded.status();
    return;
  }
  const auto& [ref, prototype_names] = *decoded;
  last_seen_[ref] = message.delivered_at;  // Refresh the lease.
  if (env_->registry().Contains(ref)) return;  // Periodic re-announce.

  const auto erm_it = local_erms_.find(message.from);
  if (erm_it == local_erms_.end()) {
    SERENA_LOG(Warning) << "announcement from unknown Local ERM '"
                        << message.from << "'";
    return;
  }
  // Resolve prototype declarations from the catalog; unknown prototypes
  // are skipped (the environment does not understand them yet).
  std::vector<PrototypePtr> prototypes;
  for (const std::string& name : prototype_names) {
    auto prototype = env_->GetPrototype(name);
    if (prototype.ok()) prototypes.push_back(*prototype);
  }
  if (prototypes.empty()) return;

  auto proxy = std::make_shared<RemoteServiceProxy>(
      ref, std::move(prototypes), erm_it->second, network_);
  if (env_->registry().Register(std::move(proxy)).ok()) {
    ++discovered_;
  }
}

void CoreErm::OnByebye(const NetworkMessage& message) {
  auto decoded = DecodeAnnouncement(message.payload);
  if (!decoded.ok()) return;
  last_seen_.erase(decoded->first);
  if (env_->registry().Unregister(decoded->first).ok()) {
    ++lost_;
  }
}

std::size_t CoreErm::ExpireStale(Timestamp now) {
  if (announcement_ttl_ <= 0) return 0;
  std::vector<std::string> stale;
  for (const auto& [ref, seen] : last_seen_) {
    if (seen + announcement_ttl_ < now) stale.push_back(ref);
  }
  for (const std::string& ref : stale) {
    last_seen_.erase(ref);
    if (env_->registry().Unregister(ref).ok()) {
      ++expired_;
    }
  }
  return stale.size();
}

}  // namespace serena
