#ifndef SERENA_PEMS_MONITOR_H_
#define SERENA_PEMS_MONITOR_H_

#include <string>
#include <vector>

#include "pems/pems.h"
#include "stream/query_health.h"

namespace serena {

/// A point-in-time snapshot of everything a PEMS operator wants on a
/// dashboard: catalog sizes, invocation traffic, discovery counters,
/// network statistics, executor health and the standing queries.
///
/// Scalar fields are scoped to the snapshotted PEMS instance; the
/// `tick_latency` summary is read back from the process-wide
/// `MetricsRegistry` (metric `serena.executor.tick_ns` — see
/// docs/OBSERVABILITY.md).
struct PemsMetrics {
  Timestamp instant = 0;

  // Catalog.
  std::size_t prototypes = 0;
  std::size_t relations = 0;
  std::size_t total_tuples = 0;
  std::size_t streams = 0;

  // Services / discovery.
  std::size_t services = 0;
  std::uint64_t services_discovered = 0;
  std::uint64_t services_lost = 0;
  std::uint64_t services_expired = 0;

  // Traffic.
  InvocationStats invocations;
  NetworkStats network;

  // Executor health.
  std::uint64_t total_ticks = 0;
  /// Monotonic count of query-step failures — unlike the executor's
  /// `last_errors()` (most recent tick only), failures between two
  /// snapshots are never lost.
  std::uint64_t total_query_errors = 0;
  std::uint64_t total_pruned_tuples = 0;

  /// Condensed view of a latency histogram (nanoseconds).
  struct LatencySummary {
    std::uint64_t count = 0;
    double mean_ns = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t max_ns = 0;
  };
  /// Per-tick wall time, from the global metrics registry (process-wide;
  /// zero when metrics are disabled).
  LatencySummary tick_latency;

  // Standing queries and their accumulated side effects.
  struct QueryInfo {
    std::string name;
    std::uint64_t steps = 0;
    std::size_t actions = 0;
  };
  std::vector<QueryInfo> queries;

  /// Per-query health (lag, error streak, latency percentiles, tuple
  /// rates) from the executor's QueryHealth tracker, sorted by name.
  std::vector<QueryHealth::QuerySnapshot> query_health;

  /// Multi-line human-readable dashboard rendering.
  std::string ToString() const;

  /// The dashboard as one JSON object (machine-readable twin of
  /// `ToString`): `{"instant", "catalog": {...}, "services": {...},
  /// "invocations": {...}, "network": {...}, "executor": {...},
  /// "queries": [...]}`.
  std::string ToJson() const;
};

/// Collects a metrics snapshot from a running PEMS.
PemsMetrics SnapshotMetrics(Pems& pems);

}  // namespace serena

#endif  // SERENA_PEMS_MONITOR_H_
