#ifndef SERENA_PEMS_MONITOR_H_
#define SERENA_PEMS_MONITOR_H_

#include <string>
#include <vector>

#include "pems/pems.h"

namespace serena {

/// A point-in-time snapshot of everything a PEMS operator wants on a
/// dashboard: catalog sizes, invocation traffic, discovery counters,
/// network statistics and the standing queries.
struct PemsMetrics {
  Timestamp instant = 0;

  // Catalog.
  std::size_t prototypes = 0;
  std::size_t relations = 0;
  std::size_t total_tuples = 0;
  std::size_t streams = 0;

  // Services / discovery.
  std::size_t services = 0;
  std::uint64_t services_discovered = 0;
  std::uint64_t services_lost = 0;
  std::uint64_t services_expired = 0;

  // Traffic.
  InvocationStats invocations;
  NetworkStats network;

  // Standing queries and their accumulated side effects.
  struct QueryInfo {
    std::string name;
    std::uint64_t steps = 0;
    std::size_t actions = 0;
  };
  std::vector<QueryInfo> queries;

  /// Multi-line human-readable dashboard rendering.
  std::string ToString() const;
};

/// Collects a metrics snapshot from a running PEMS.
PemsMetrics SnapshotMetrics(Pems& pems);

}  // namespace serena

#endif  // SERENA_PEMS_MONITOR_H_
