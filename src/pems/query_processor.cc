#include "pems/query_processor.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/export.h"
#include "obs/stats.h"
#include "rewrite/semantic.h"

namespace serena {

namespace {

/// `SERENA_ANALYZE=off|0|false` disables the gate process-wide — the
/// escape hatch for deliberately executing ill-formed plans.
bool AnalyzeEnabledByEnv() {
  const char* value = std::getenv("SERENA_ANALYZE");
  if (value == nullptr) return true;
  const std::string lower = ToLower(value);
  return !(lower == "off" || lower == "0" || lower == "false");
}

/// The gate's session configuration: errors only (warnings never block
/// execution — unless severity config promotes them), severity from the
/// environment.
analysis::AnalyzeOptions GateOptions() {
  analysis::AnalyzeOptions options;
  options.include_warnings = false;
  options.severity = analysis::SeverityConfig::FromEnv();
  return options;
}

}  // namespace

QueryProcessor::QueryProcessor(Environment* env, StreamStore* streams)
    : env_(env),
      streams_(streams),
      executor_(env, streams),
      rewriter_(env, streams),
      session_(env, streams, GateOptions()),
      analyze_(AnalyzeEnabledByEnv()) {}

QueryProcessor::~QueryProcessor() {
  if (has_listener_) {
    env_->registry().RemoveListener(registry_listener_token_);
  }
  // Clean-shutdown flushes: the periodic SERENA_METRICS_FILE writer is
  // rate-limited, so the final tick's counters may never have hit disk;
  // the stats store only persists on demand. Both are no-ops unless
  // their environment variable is set.
  obs::FlushMetricsFile();
  obs::StatsStore::Global().MaybeSaveEnvFile();
}

Status QueryProcessor::GatePlan(const PlanPtr& plan,
                                AnalysisContext context) const {
  if (!analyze_) return Status::OK();
  SERENA_ASSIGN_OR_RETURN(std::vector<Diagnostic> diagnostics,
                          session_.AnalyzePlan(plan, context));
  if (IsValid(diagnostics)) return Status::OK();
  return Status::InvalidArgument("plan rejected by static analysis:\n",
                                 RenderDiagnostics(diagnostics));
}

Status QueryProcessor::GateRegistration(
    const std::string& name, const PlanPtr& plan,
    const std::vector<std::string>& feeds) {
  if (!analyze_) return Status::OK();
  // Sources may have been added since the last registration; the lint
  // needs the current list to not misreport SER041.
  session_.mutable_options().source_fed_streams =
      executor_.SourceFedStreams();
  SERENA_ASSIGN_OR_RETURN(std::vector<Diagnostic> diagnostics,
                          session_.LintRegistration(name, plan, feeds));
  if (IsValid(diagnostics)) return Status::OK();
  return Status::InvalidArgument("continuous query '", name,
                                 "' rejected by static analysis:\n",
                                 RenderDiagnostics(diagnostics));
}

Result<PlanPtr> QueryProcessor::OptimizePlan(PlanPtr plan) const {
  if (!optimize_) return plan;
  // Semantic pass first: it consumes analyzer facts over the *user's*
  // plan shape, then the classic rule rewriter reorders what remains.
  SERENA_ASSIGN_OR_RETURN(SemanticRewriteResult semantic,
                          SemanticOptimize(plan, *env_, streams_));
  return rewriter_.Optimize(semantic.plan);
}

Result<QueryResult> QueryProcessor::ExecuteOneShot(
    std::string_view algebra) {
  SERENA_ASSIGN_OR_RETURN(PlanPtr plan, ParseAlgebra(algebra));
  SERENA_RETURN_NOT_OK(GatePlan(plan, AnalysisContext::kOneShot));
  SERENA_ASSIGN_OR_RETURN(plan, OptimizePlan(std::move(plan)));
  return Execute(plan, env_, streams_);
}

Status QueryProcessor::Prepare(const std::string& name,
                               std::string_view algebra) {
  SERENA_ASSIGN_OR_RETURN(PlanPtr plan, ParseAlgebra(algebra));
  if (!prepared_.emplace(name, std::move(plan)).second) {
    return Status::AlreadyExists("prepared query '", name,
                                 "' already exists");
  }
  return Status::OK();
}

Result<QueryResult> QueryProcessor::ExecutePrepared(
    const std::string& name,
    const std::map<std::string, Value>& parameters) {
  const auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    return Status::NotFound("prepared query '", name, "' does not exist");
  }
  SERENA_ASSIGN_OR_RETURN(PlanPtr bound,
                          BindParameters(it->second, parameters));
  // The gate runs on the *bound* plan: templates legitimately carry
  // unbound parameters until here.
  SERENA_RETURN_NOT_OK(GatePlan(bound, AnalysisContext::kOneShot));
  SERENA_ASSIGN_OR_RETURN(bound, OptimizePlan(std::move(bound)));
  return Execute(bound, env_, streams_);
}

Result<std::set<std::string>> QueryProcessor::PreparedParameters(
    const std::string& name) const {
  const auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    return Status::NotFound("prepared query '", name, "' does not exist");
  }
  return CollectParameters(it->second);
}

Status QueryProcessor::RegisterContinuous(const std::string& name,
                                          std::string_view algebra,
                                          ContinuousQuery::Sink sink) {
  SERENA_ASSIGN_OR_RETURN(PlanPtr plan, ParseAlgebra(algebra));
  SERENA_RETURN_NOT_OK(GatePlan(plan, AnalysisContext::kContinuous));
  SERENA_ASSIGN_OR_RETURN(plan, OptimizePlan(std::move(plan)));
  SERENA_RETURN_NOT_OK(GateRegistration(name, plan, /*feeds=*/{}));
  auto query = std::make_shared<ContinuousQuery>(name, plan);
  if (sink) query->set_sink(std::move(sink));
  SERENA_RETURN_NOT_OK(executor_.Register(std::move(query)));
  session_.CommitQuery(name, plan, /*feeds=*/{});
  return Status::OK();
}

Status QueryProcessor::UnregisterContinuous(const std::string& name) {
  SERENA_RETURN_NOT_OK(executor_.Unregister(name));
  session_.RemoveQuery(name);
  return Status::OK();
}

Status QueryProcessor::RegisterContinuousInto(const std::string& name,
                                              std::string_view algebra,
                                              const std::string& stream) {
  if (streams_ == nullptr) {
    return Status::FailedPrecondition("no stream store configured");
  }
  SERENA_ASSIGN_OR_RETURN(PlanPtr plan, ParseAlgebra(algebra));
  SERENA_RETURN_NOT_OK(GatePlan(plan, AnalysisContext::kContinuous));
  SERENA_ASSIGN_OR_RETURN(plan, OptimizePlan(std::move(plan)));
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr result_schema,
                          plan->InferSchema(*env_, streams_));

  if (!streams_->HasStream(stream)) {
    // Derive the stream schema from the query: only the real attributes
    // carry values, so the derived stream stores exactly those.
    std::vector<Attribute> attributes;
    for (const Attribute& attr : result_schema->attributes()) {
      if (attr.is_real()) attributes.push_back(attr);
    }
    SERENA_ASSIGN_OR_RETURN(
        ExtendedSchemaPtr stream_schema,
        ExtendedSchema::Create(stream, std::move(attributes)));
    SERENA_RETURN_NOT_OK(streams_->AddStream(std::move(stream_schema)));
  } else {
    SERENA_ASSIGN_OR_RETURN(const XDRelation* existing,
                            streams_->GetStream(stream));
    // The query's real output must line up with the stream's schema.
    std::vector<Attribute> real_attrs;
    for (const Attribute& attr : result_schema->attributes()) {
      if (attr.is_real()) real_attrs.push_back(attr);
    }
    if (real_attrs != existing->schema().attributes()) {
      return Status::FailedPrecondition(
          "derived stream '", stream,
          "' has a schema incompatible with query '", name, "'");
    }
  }

  // The cross-query gate runs after the stream-schema compatibility
  // check above (whose FailedPrecondition callers rely on) but before
  // anything reaches the executor.
  SERENA_RETURN_NOT_OK(GateRegistration(name, plan, {stream}));

  auto query = std::make_shared<ContinuousQuery>(name, plan);
  // Declare the sink's target stream so the executor schedules consumers
  // of `stream` after this producer within each tick.
  query->set_feeds({stream});
  StreamStore* streams = streams_;
  query->set_sink([streams, stream](Timestamp t, const XRelation& result) {
    auto target = streams->GetStream(stream);
    if (!target.ok()) return;
    for (const Tuple& tuple : result.tuples()) {
      const Status status = (*target)->Append(t, tuple);
      if (!status.ok()) {
        SERENA_LOG(Warning) << "derived stream '" << stream
                            << "' append failed: " << status;
      }
    }
  });
  SERENA_RETURN_NOT_OK(executor_.Register(std::move(query)));
  session_.CommitQuery(name, plan, {stream});
  return Status::OK();
}

Result<ContinuousQueryPtr> QueryProcessor::GetContinuous(
    const std::string& name) const {
  return executor_.GetQuery(name);
}

Status QueryProcessor::RegisterDiscoveryQuery(const std::string& relation,
                                              const std::string& prototype) {
  SERENA_ASSIGN_OR_RETURN(PrototypePtr proto,
                          env_->GetPrototype(prototype));
  if (!env_->HasRelation(relation)) {
    // Shape the discovery relation so it is directly queryable: the
    // service reference plus the prototype's parameters as virtual
    // attributes, bound by `prototype[service]` — like the `cameras`
    // XD-Relation the paper's Query Processor maintains (§5.1).
    std::vector<Attribute> attributes = {{"service", DataType::kService}};
    for (const Attribute& attr : proto->input().attributes()) {
      if (attr.name == "service") {
        return Status::InvalidArgument(
            "prototype parameter 'service' collides with the discovery "
            "relation's reference attribute");
      }
      attributes.emplace_back(attr.name, attr.type, AttributeKind::kVirtual);
    }
    for (const Attribute& attr : proto->output().attributes()) {
      attributes.emplace_back(attr.name, attr.type, AttributeKind::kVirtual);
    }
    SERENA_ASSIGN_OR_RETURN(
        ExtendedSchemaPtr schema,
        ExtendedSchema::Create(relation, std::move(attributes),
                               {BindingPattern(proto, "service")}));
    SERENA_RETURN_NOT_OK(env_->AddRelation(std::move(schema)));
  }
  discovery_queries_[relation] = prototype;
  SERENA_RETURN_NOT_OK(SyncDiscoveryRelation(relation, prototype));

  if (!has_listener_) {
    registry_listener_token_ = env_->registry().AddListener(
        [this](const std::string& /*ref*/, bool /*registered*/) {
          for (const auto& [rel, proto] : discovery_queries_) {
            const Status status = SyncDiscoveryRelation(rel, proto);
            if (!status.ok()) {
              SERENA_LOG(Warning)
                  << "discovery sync for '" << rel << "' failed: " << status;
            }
          }
        });
    has_listener_ = true;
  }
  return Status::OK();
}

Status QueryProcessor::SyncDiscoveryRelation(const std::string& relation,
                                             const std::string& prototype) {
  SERENA_ASSIGN_OR_RETURN(XRelation * target,
                          env_->GetMutableRelation(relation));
  const auto coord = target->schema().CoordinateOf("service");
  if (!coord.has_value()) {
    return Status::FailedPrecondition(
        "discovery relation '", relation,
        "' has no real 'service' attribute");
  }
  const std::vector<std::string> available =
      env_->registry().ServicesImplementing(prototype);

  // Remove rows for departed services.
  std::vector<Tuple> stale;
  for (const Tuple& t : target->tuples()) {
    const std::string& ref = t[*coord].string_value();
    if (std::find(available.begin(), available.end(), ref) ==
        available.end()) {
      stale.push_back(t);
    }
  }
  for (const Tuple& t : stale) target->Erase(t);

  // Add rows for newly available services (single-attribute schema).
  if (target->schema().real_arity() == 1) {
    for (const std::string& ref : available) {
      Tuple row{Value::String(ref)};
      if (!target->Contains(row)) target->InsertUnchecked(std::move(row));
    }
  }
  return Status::OK();
}

}  // namespace serena
