#include "service/service_registry.h"

#include <algorithm>

#include "common/hash.h"

namespace serena {

std::size_t ServiceRegistry::MemoKeyHasher::operator()(
    const MemoKey& key) const {
  std::size_t h = StableHash(key.prototype);
  h = HashCombine(h, StableHash(key.service_ref));
  h = HashCombine(h, key.input.Hash());
  return h;
}

Status ServiceRegistry::Register(ServicePtr service) {
  if (service == nullptr) {
    return Status::InvalidArgument("cannot register null service");
  }
  const std::string& ref = service->id();
  if (ref.empty()) {
    return Status::InvalidArgument("service reference must be non-empty");
  }
  if (!services_.emplace(ref, std::move(service)).second) {
    return Status::AlreadyExists("service '", ref, "' already registered");
  }
  NotifyListeners(ref, /*registered=*/true);
  return Status::OK();
}

Status ServiceRegistry::Unregister(const std::string& service_ref) {
  if (services_.erase(service_ref) == 0) {
    return Status::NotFound("service '", service_ref, "' is not registered");
  }
  NotifyListeners(service_ref, /*registered=*/false);
  return Status::OK();
}

Result<ServicePtr> ServiceRegistry::Lookup(
    const std::string& service_ref) const {
  const auto it = services_.find(service_ref);
  if (it == services_.end()) {
    return Status::NotFound("service '", service_ref, "' is not registered");
  }
  return it->second;
}

bool ServiceRegistry::Contains(const std::string& service_ref) const {
  return services_.count(service_ref) > 0;
}

std::vector<std::string> ServiceRegistry::ServiceRefs() const {
  std::vector<std::string> refs;
  refs.reserve(services_.size());
  for (const auto& [ref, service] : services_) refs.push_back(ref);
  return refs;
}

std::vector<std::string> ServiceRegistry::ServicesImplementing(
    std::string_view prototype_name) const {
  std::vector<std::string> refs;
  for (const auto& [ref, service] : services_) {
    if (service->Implements(prototype_name)) refs.push_back(ref);
  }
  return refs;
}

ServiceRegistry::PrototypeInstruments& ServiceRegistry::InstrumentsFor(
    const std::string& prototype) {
  const auto it = instruments_.find(prototype);
  if (it != instruments_.end()) return it->second;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const std::string prefix = "serena.service." + prototype;
  return instruments_
      .emplace(prototype,
               PrototypeInstruments{
                   &metrics.GetHistogram(prefix + ".invoke_ns"),
                   &metrics.GetCounter(prefix + ".memo_hits"),
                   &metrics.GetCounter(prefix + ".memo_misses"),
                   &metrics.GetCounter(prefix + ".errors")})
      .first->second;
}

Result<std::vector<Tuple>> ServiceRegistry::Invoke(
    const Prototype& prototype, const std::string& service_ref,
    const Tuple& input, Timestamp now) {
  PrototypeInstruments* instruments =
      obs::MetricsRegistry::Global().enabled()
          ? &InstrumentsFor(prototype.name())
          : nullptr;
  const auto fail = [&](Status status) -> Result<std::vector<Tuple>> {
    ++stats_.failed_invocations;
    if (instruments != nullptr) instruments->errors->Increment();
    return status;
  };

  Status input_valid = prototype.input().ValidateTuple(input);
  if (!input_valid.ok()) return fail(std::move(input_valid));

  // A new instant invalidates all memoized results: services may answer
  // differently now.
  if (now != memo_instant_) {
    memo_.clear();
    memo_instant_ = now;
  }

  ++stats_.logical_invocations;
  MemoKey key{prototype.name(), service_ref, input};
  const auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) {
    ++stats_.memo_hits;
    if (instruments != nullptr) instruments->memo_hits->Increment();
    return memo_it->second;
  }
  if (instruments != nullptr) instruments->memo_misses->Increment();

  auto service_or = Lookup(service_ref);
  if (!service_or.ok()) return fail(service_or.status());
  const ServicePtr& service = service_or.ValueOrDie();
  if (!service->Implements(prototype.name())) {
    return fail(Status::FailedPrecondition(
        "service '", service_ref, "' does not implement prototype '",
        prototype.name(), "'"));
  }

  Result<std::vector<Tuple>> outputs_or = [&] {
    // Latency covers only the physical service call, not validation or
    // memo bookkeeping — it is the per-prototype service cost.
    obs::ScopedLatencyTimer timer(
        instruments != nullptr ? instruments->invoke_ns : nullptr);
    return service->Invoke(prototype, input, now);
  }();
  if (!outputs_or.ok()) return fail(outputs_or.status());
  std::vector<Tuple> outputs = std::move(outputs_or).ValueOrDie();
  for (const Tuple& out : outputs) {
    Status output_valid = prototype.output().ValidateTuple(out);
    if (!output_valid.ok()) return fail(std::move(output_valid));
  }

  ++stats_.physical_invocations;
  if (prototype.active()) ++stats_.active_invocations;
  stats_.output_tuples += outputs.size();

  memo_.emplace(std::move(key), outputs);
  return outputs;
}

std::size_t ServiceRegistry::AddListener(Listener listener) {
  const std::size_t token = next_listener_token_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void ServiceRegistry::RemoveListener(std::size_t token) {
  listeners_.erase(token);
}

void ServiceRegistry::NotifyListeners(const std::string& service_ref,
                                      bool registered) {
  for (const auto& [token, listener] : listeners_) {
    listener(service_ref, registered);
  }
}

}  // namespace serena
