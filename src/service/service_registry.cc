#include "service/service_registry.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace serena {

namespace {

constexpr char kCancelledMessage[] =
    "invocation cancelled: an earlier invocation in the batch failed";

}  // namespace

std::size_t ServiceRegistry::MemoKeyHasher::operator()(
    const MemoKey& key) const {
  std::size_t h = StableHash(key.prototype);
  h = HashCombine(h, StableHash(key.service_ref));
  h = HashCombine(h, key.input.Hash());
  return h;
}

bool ServiceRegistry::IsCancelled(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kCancelledMessage;
}

Status ServiceRegistry::Register(ServicePtr service) {
  if (service == nullptr) {
    return Status::InvalidArgument("cannot register null service");
  }
  const std::string& ref = service->id();
  if (ref.empty()) {
    return Status::InvalidArgument("service reference must be non-empty");
  }
  {
    std::lock_guard<std::mutex> lock(services_mu_);
    if (!services_.emplace(ref, std::move(service)).second) {
      return Status::AlreadyExists("service '", ref, "' already registered");
    }
  }
  NotifyListeners(ref, /*registered=*/true);
  return Status::OK();
}

Status ServiceRegistry::Unregister(const std::string& service_ref) {
  {
    std::lock_guard<std::mutex> lock(services_mu_);
    if (services_.erase(service_ref) == 0) {
      return Status::NotFound("service '", service_ref,
                              "' is not registered");
    }
  }
  NotifyListeners(service_ref, /*registered=*/false);
  return Status::OK();
}

Result<ServicePtr> ServiceRegistry::Lookup(
    const std::string& service_ref) const {
  std::lock_guard<std::mutex> lock(services_mu_);
  const auto it = services_.find(service_ref);
  if (it == services_.end()) {
    return Status::NotFound("service '", service_ref, "' is not registered");
  }
  return it->second;
}

bool ServiceRegistry::Contains(const std::string& service_ref) const {
  std::lock_guard<std::mutex> lock(services_mu_);
  return services_.count(service_ref) > 0;
}

std::vector<std::string> ServiceRegistry::ServiceRefs() const {
  std::lock_guard<std::mutex> lock(services_mu_);
  std::vector<std::string> refs;
  refs.reserve(services_.size());
  for (const auto& [ref, service] : services_) refs.push_back(ref);
  return refs;
}

std::vector<std::string> ServiceRegistry::ServicesImplementing(
    std::string_view prototype_name) const {
  std::lock_guard<std::mutex> lock(services_mu_);
  std::vector<std::string> refs;
  for (const auto& [ref, service] : services_) {
    if (service->Implements(prototype_name)) refs.push_back(ref);
  }
  return refs;
}

std::size_t ServiceRegistry::size() const {
  std::lock_guard<std::mutex> lock(services_mu_);
  return services_.size();
}

ServiceRegistry::PrototypeInstruments ServiceRegistry::InstrumentsFor(
    const std::string& prototype) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (!metrics.enabled()) return {};
  std::lock_guard<std::mutex> lock(instruments_mu_);
  const auto it = instruments_.find(prototype);
  if (it != instruments_.end()) return it->second;
  const std::string prefix = "serena.service." + prototype;
  return instruments_
      .emplace(prototype,
               PrototypeInstruments{
                   &metrics.GetHistogram(prefix + ".invoke_ns"),
                   &metrics.GetCounter(prefix + ".memo_hits"),
                   &metrics.GetCounter(prefix + ".memo_misses"),
                   &metrics.GetCounter(prefix + ".errors")})
      .first->second;
}

Result<TupleRows> ServiceRegistry::Fail(
    Status status, const PrototypeInstruments& instruments) {
  stats_.failed_invocations.fetch_add(1, std::memory_order_relaxed);
  if (instruments.errors != nullptr) instruments.errors->Increment();
  return status;
}

Result<TupleRows> ServiceRegistry::InvokePhysical(
    const Prototype& prototype, const std::string& service_ref,
    const Tuple& input, Timestamp now,
    const PrototypeInstruments& instruments) {
  auto service_or = Lookup(service_ref);
  if (!service_or.ok()) return Fail(service_or.status(), instruments);
  const ServicePtr& service = service_or.ValueOrDie();
  if (!service->Implements(prototype.name())) {
    return Fail(Status::FailedPrecondition(
                    "service '", service_ref,
                    "' does not implement prototype '", prototype.name(),
                    "'"),
                instruments);
  }

  Result<std::vector<Tuple>> outputs_or = [&] {
    // Latency covers only the physical service call, not validation or
    // memo bookkeeping — it is the per-prototype service cost.
    obs::ScopedLatencyTimer timer(instruments.invoke_ns);
    return service->Invoke(prototype, input, now);
  }();
  if (!outputs_or.ok()) return Fail(outputs_or.status(), instruments);
  std::vector<Tuple> outputs = std::move(outputs_or).ValueOrDie();
  for (const Tuple& out : outputs) {
    Status output_valid = prototype.output().ValidateTuple(out);
    if (!output_valid.ok()) return Fail(std::move(output_valid), instruments);
  }

  stats_.physical_invocations.fetch_add(1, std::memory_order_relaxed);
  if (prototype.active()) {
    stats_.active_invocations.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.output_tuples.fetch_add(outputs.size(), std::memory_order_relaxed);
  return std::make_shared<const std::vector<Tuple>>(std::move(outputs));
}

void ServiceRegistry::RefreshInstantLocked(Timestamp now) {
  // A new instant invalidates all memoized results: services may answer
  // differently now.
  if (now != memo_instant_) {
    memo_.clear();
    memo_instant_ = now;
  }
}

Result<TupleRows> ServiceRegistry::InvokeMemoized(
    const Prototype& prototype, const std::string& service_ref,
    const Tuple& input, Timestamp now,
    const PrototypeInstruments& instruments) {
  MemoKey key{prototype.name(), service_ref, input};
  const bool tracing = obs::TraceBuffer::Global().enabled();
  for (;;) {
    std::promise<Result<TupleRows>> promise;
    MemoSlot slot;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(memo_mu_);
      RefreshInstantLocked(now);
      const auto it = memo_.find(key);
      if (it == memo_.end()) {
        owner = true;
        slot.future = promise.get_future().share();
        // Preallocate the winning call's span id so waiters arriving
        // while the call is in flight can already link to it.
        slot.span_id = tracing ? obs::NextSpanId() : 0;
        memo_.emplace(key, slot);
      } else {
        slot = it->second;
      }
    }

    if (owner) {
      if (instruments.memo_misses != nullptr) {
        instruments.memo_misses->Increment();
      }
      Result<TupleRows> result = [&] {
        obs::Span span("service.invoke", now, service_ref, slot.span_id);
        return InvokePhysical(prototype, service_ref, input, now,
                              instruments);
      }();
      if (!result.ok()) {
        // Failures are not memoized: drop the slot (before waking
        // waiters, so a retrying waiter never re-reads it).
        std::lock_guard<std::mutex> lock(memo_mu_);
        if (memo_instant_ == now) memo_.erase(key);
      }
      promise.set_value(result);
      return result;
    }

    // Another call owns this key; await its result. The owner runs the
    // physical call on its own thread, so this wait cannot deadlock on
    // pool capacity.
    Result<TupleRows> result = [&] {
      obs::Span span("invoke.wait", now, service_ref);
      span.set_link_span(slot.span_id);
      return slot.future.get();
    }();
    if (result.ok()) {
      stats_.memo_hits.fetch_add(1, std::memory_order_relaxed);
      if (instruments.memo_hits != nullptr) {
        instruments.memo_hits->Increment();
      }
      return result;
    }
    // The owner failed; retry physically, exactly like a serial caller
    // that never saw a memo entry.
  }
}

Result<TupleRows> ServiceRegistry::Invoke(const Prototype& prototype,
                                          const std::string& service_ref,
                                          const Tuple& input, Timestamp now) {
  const PrototypeInstruments instruments = InstrumentsFor(prototype.name());

  Status input_valid = prototype.input().ValidateTuple(input);
  if (!input_valid.ok()) return Fail(std::move(input_valid), instruments);

  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    RefreshInstantLocked(now);
    stats_.logical_invocations.fetch_add(1, std::memory_order_relaxed);
  }
  return InvokeMemoized(prototype, service_ref, input, now, instruments);
}

std::vector<Result<TupleRows>> ServiceRegistry::InvokeMany(
    const Prototype& prototype, std::span<const InvocationRequest> requests,
    Timestamp now, ThreadPool* pool, bool cancel_on_error) {
  const PrototypeInstruments instruments = InstrumentsFor(prototype.name());
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    static obs::Histogram* batch_size =
        &obs::MetricsRegistry::Global().GetHistogram(
            "serena.invoke.batch_size");
    batch_size->Record(requests.size());
  }

  std::vector<Result<TupleRows>> results(
      requests.size(), Result<TupleRows>(Status::Internal("unresolved")));

  // One group per unique (service_ref, input) pair this batch will invoke
  // physically; `indices` fan its eventual result back out to every
  // duplicate. The group's future is published in the memo *before*
  // dispatch (single-flight), so a concurrently-stepped query never
  // re-invokes a pair this batch already owns.
  struct Group {
    std::size_t first_index;
    std::vector<std::size_t> indices;
    std::promise<Result<TupleRows>> promise;
    std::uint64_t span_id = 0;  ///< Preallocated invocation span.
  };
  std::vector<Group> groups;
  // Requests whose key is owned by an earlier call (possibly still in
  // flight): resolved from the owner's future after dispatch.
  struct Await {
    std::size_t index;
    MemoSlot slot;
  };
  std::vector<Await> awaits;
  const bool tracing = obs::TraceBuffer::Global().enabled();
  {
    std::unordered_map<MemoKey, std::size_t, MemoKeyHasher> pending;
    std::lock_guard<std::mutex> lock(memo_mu_);
    RefreshInstantLocked(now);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const InvocationRequest& request = requests[i];
      Status input_valid = prototype.input().ValidateTuple(request.input);
      if (!input_valid.ok()) {
        results[i] = Fail(std::move(input_valid), instruments);
        continue;
      }
      stats_.logical_invocations.fetch_add(1, std::memory_order_relaxed);
      MemoKey key{prototype.name(), request.service_ref, request.input};
      // Batch-internal duplicates group before consulting the memo so a
      // duplicate of a failing request shares the failure (see header).
      const auto pending_it = pending.find(key);
      if (pending_it != pending.end()) {
        stats_.memo_hits.fetch_add(1, std::memory_order_relaxed);
        if (instruments.memo_hits != nullptr) {
          instruments.memo_hits->Increment();
        }
        groups[pending_it->second].indices.push_back(i);
        continue;
      }
      const auto memo_it = memo_.find(key);
      if (memo_it != memo_.end()) {
        awaits.push_back(Await{i, memo_it->second});
        continue;
      }
      if (instruments.memo_misses != nullptr) {
        instruments.memo_misses->Increment();
      }
      Group group;
      group.first_index = i;
      group.indices.push_back(i);
      group.span_id = tracing ? obs::NextSpanId() : 0;
      memo_.emplace(key,
                    MemoSlot{group.promise.get_future().share(),
                             group.span_id});
      pending.emplace(std::move(key), groups.size());
      groups.push_back(std::move(group));
    }
  }

  if (!groups.empty()) {
    std::vector<Result<TupleRows>> group_results(
        groups.size(), Result<TupleRows>(Status::Internal("unresolved")));
    std::atomic<bool> cancelled{false};
    if (pool == nullptr) pool = &ThreadPool::Shared();
    pool->ParallelFor(groups.size(), [&](std::size_t g) {
      Group& group = groups[g];
      Result<TupleRows> result = Status::Unavailable(kCancelledMessage);
      if (cancel_on_error && cancelled.load(std::memory_order_relaxed)) {
        // Never dispatched: not counted as failed, only reported
        // cancelled.
      } else {
        const InvocationRequest& request = requests[group.first_index];
        result = [&] {
          obs::Span span("service.invoke", now, request.service_ref,
                         group.span_id);
          return InvokePhysical(prototype, request.service_ref,
                                request.input, now, instruments);
        }();
        if (!result.ok() && cancel_on_error) {
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      if (!result.ok()) {
        // Failures (and cancellations) are not memoized: drop the slot
        // before waking waiters so external callers retry physically
        // rather than inheriting this batch's policy.
        const InvocationRequest& request = requests[group.first_index];
        std::lock_guard<std::mutex> lock(memo_mu_);
        if (memo_instant_ == now) {
          memo_.erase(MemoKey{prototype.name(), request.service_ref,
                              request.input});
        }
      }
      group.promise.set_value(result);
      group_results[g] = std::move(result);
    });
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const std::size_t i : groups[g].indices) {
        results[i] = group_results[g];
      }
    }
  }

  // Resolve requests owned by other calls. The owners run on their own
  // threads (never queued behind this ParallelFor), so waiting here is
  // deadlock-free.
  for (Await& await : awaits) {
    Result<TupleRows> result = [&] {
      obs::Span span("invoke.wait", now,
                     requests[await.index].service_ref);
      span.set_link_span(await.slot.span_id);
      return await.slot.future.get();
    }();
    if (result.ok()) {
      stats_.memo_hits.fetch_add(1, std::memory_order_relaxed);
      if (instruments.memo_hits != nullptr) {
        instruments.memo_hits->Increment();
      }
      results[await.index] = std::move(result);
    } else {
      // The owner failed; retry physically (logical invocation already
      // counted above).
      const InvocationRequest& request = requests[await.index];
      results[await.index] = InvokeMemoized(
          prototype, request.service_ref, request.input, now, instruments);
    }
  }
  return results;
}

InvocationStats ServiceRegistry::stats() const {
  InvocationStats snapshot;
  snapshot.logical_invocations =
      stats_.logical_invocations.load(std::memory_order_relaxed);
  snapshot.physical_invocations =
      stats_.physical_invocations.load(std::memory_order_relaxed);
  snapshot.active_invocations =
      stats_.active_invocations.load(std::memory_order_relaxed);
  snapshot.output_tuples =
      stats_.output_tuples.load(std::memory_order_relaxed);
  snapshot.memo_hits = stats_.memo_hits.load(std::memory_order_relaxed);
  snapshot.failed_invocations =
      stats_.failed_invocations.load(std::memory_order_relaxed);
  return snapshot;
}

void ServiceRegistry::ResetStats() {
  stats_.logical_invocations.store(0, std::memory_order_relaxed);
  stats_.physical_invocations.store(0, std::memory_order_relaxed);
  stats_.active_invocations.store(0, std::memory_order_relaxed);
  stats_.output_tuples.store(0, std::memory_order_relaxed);
  stats_.memo_hits.store(0, std::memory_order_relaxed);
  stats_.failed_invocations.store(0, std::memory_order_relaxed);
}

std::size_t ServiceRegistry::AddListener(Listener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  const std::size_t token = next_listener_token_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void ServiceRegistry::RemoveListener(std::size_t token) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(token);
}

void ServiceRegistry::NotifyListeners(const std::string& service_ref,
                                      bool registered) {
  // Copy under the lock, call outside it: listeners may re-enter the
  // registry (discovery queries do).
  std::vector<Listener> to_notify;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    to_notify.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      to_notify.push_back(listener);
    }
  }
  for (const Listener& listener : to_notify) {
    listener(service_ref, registered);
  }
}

}  // namespace serena
