#include "service/service_registry.h"

#include <algorithm>

#include "common/hash.h"

namespace serena {

std::size_t ServiceRegistry::MemoKeyHasher::operator()(
    const MemoKey& key) const {
  std::size_t h = StableHash(key.prototype);
  h = HashCombine(h, StableHash(key.service_ref));
  h = HashCombine(h, key.input.Hash());
  return h;
}

Status ServiceRegistry::Register(ServicePtr service) {
  if (service == nullptr) {
    return Status::InvalidArgument("cannot register null service");
  }
  const std::string& ref = service->id();
  if (ref.empty()) {
    return Status::InvalidArgument("service reference must be non-empty");
  }
  if (!services_.emplace(ref, std::move(service)).second) {
    return Status::AlreadyExists("service '", ref, "' already registered");
  }
  NotifyListeners(ref, /*registered=*/true);
  return Status::OK();
}

Status ServiceRegistry::Unregister(const std::string& service_ref) {
  if (services_.erase(service_ref) == 0) {
    return Status::NotFound("service '", service_ref, "' is not registered");
  }
  NotifyListeners(service_ref, /*registered=*/false);
  return Status::OK();
}

Result<ServicePtr> ServiceRegistry::Lookup(
    const std::string& service_ref) const {
  const auto it = services_.find(service_ref);
  if (it == services_.end()) {
    return Status::NotFound("service '", service_ref, "' is not registered");
  }
  return it->second;
}

bool ServiceRegistry::Contains(const std::string& service_ref) const {
  return services_.count(service_ref) > 0;
}

std::vector<std::string> ServiceRegistry::ServiceRefs() const {
  std::vector<std::string> refs;
  refs.reserve(services_.size());
  for (const auto& [ref, service] : services_) refs.push_back(ref);
  return refs;
}

std::vector<std::string> ServiceRegistry::ServicesImplementing(
    std::string_view prototype_name) const {
  std::vector<std::string> refs;
  for (const auto& [ref, service] : services_) {
    if (service->Implements(prototype_name)) refs.push_back(ref);
  }
  return refs;
}

Result<std::vector<Tuple>> ServiceRegistry::Invoke(
    const Prototype& prototype, const std::string& service_ref,
    const Tuple& input, Timestamp now) {
  SERENA_RETURN_NOT_OK(prototype.input().ValidateTuple(input));

  // A new instant invalidates all memoized results: services may answer
  // differently now.
  if (now != memo_instant_) {
    memo_.clear();
    memo_instant_ = now;
  }

  ++stats_.logical_invocations;
  MemoKey key{prototype.name(), service_ref, input};
  const auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) {
    return memo_it->second;
  }

  SERENA_ASSIGN_OR_RETURN(ServicePtr service, Lookup(service_ref));
  if (!service->Implements(prototype.name())) {
    return Status::FailedPrecondition("service '", service_ref,
                                      "' does not implement prototype '",
                                      prototype.name(), "'");
  }

  SERENA_ASSIGN_OR_RETURN(std::vector<Tuple> outputs,
                          service->Invoke(prototype, input, now));
  for (const Tuple& out : outputs) {
    SERENA_RETURN_NOT_OK(prototype.output().ValidateTuple(out));
  }

  ++stats_.physical_invocations;
  if (prototype.active()) ++stats_.active_invocations;
  stats_.output_tuples += outputs.size();

  memo_.emplace(std::move(key), outputs);
  return outputs;
}

std::size_t ServiceRegistry::AddListener(Listener listener) {
  const std::size_t token = next_listener_token_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void ServiceRegistry::RemoveListener(std::size_t token) {
  listeners_.erase(token);
}

void ServiceRegistry::NotifyListeners(const std::string& service_ref,
                                      bool registered) {
  for (const auto& [token, listener] : listeners_) {
    listener(service_ref, registered);
  }
}

}  // namespace serena
