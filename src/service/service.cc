#include "service/service.h"

namespace serena {

bool Service::Implements(std::string_view prototype_name) const {
  for (const PrototypePtr& proto : prototypes()) {
    if (proto->name() == prototype_name) return true;
  }
  return false;
}

}  // namespace serena
