#ifndef SERENA_SERVICE_LAMBDA_SERVICE_H_
#define SERENA_SERVICE_LAMBDA_SERVICE_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "service/service.h"

namespace serena {

/// A service whose method bodies are std::functions — the quickest way to
/// wrap an arbitrary functionality as a Serena service (used pervasively
/// in tests; the simulated devices in src/env are full classes).
///
/// ```
/// auto svc = std::make_shared<LambdaService>("sensor42");
/// svc->AddMethod(get_temperature, [](const Tuple&, Timestamp now) {
///   return std::vector<Tuple>{Tuple{Value::Real(20.0 + now % 5)}};
/// });
/// ```
class LambdaService : public Service {
 public:
  using Handler = std::function<Result<std::vector<Tuple>>(const Tuple& input,
                                                           Timestamp now)>;

  explicit LambdaService(std::string id) : Service(std::move(id)) {}

  /// Registers `handler` as the implementation of `prototype`. Replaces
  /// any previous handler for the same prototype name.
  void AddMethod(PrototypePtr prototype, Handler handler) {
    const std::string name = prototype->name();
    methods_[name] = {std::move(prototype), std::move(handler)};
  }

  std::vector<PrototypePtr> prototypes() const override {
    std::vector<PrototypePtr> result;
    result.reserve(methods_.size());
    for (const auto& [name, method] : methods_) {
      result.push_back(method.first);
    }
    return result;
  }

  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override {
    const auto it = methods_.find(prototype.name());
    if (it == methods_.end()) {
      return Status::FailedPrecondition("service '", id(),
                                        "' has no method for prototype '",
                                        prototype.name(), "'");
    }
    return it->second.second(input, now);
  }

 private:
  std::map<std::string, std::pair<PrototypePtr, Handler>> methods_;
};

}  // namespace serena

#endif  // SERENA_SERVICE_LAMBDA_SERVICE_H_
