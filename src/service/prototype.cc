#include "service/prototype.h"

namespace serena {

Result<std::shared_ptr<const Prototype>> Prototype::Create(
    std::string name, RelationSchema input, RelationSchema output,
    bool active, bool streaming) {
  if (name.empty()) {
    return Status::InvalidArgument("prototype name must be non-empty");
  }
  if (output.empty()) {
    return Status::InvalidArgument("prototype '", name,
                                   "' must have a non-empty output schema");
  }
  for (const Attribute& in_attr : input.attributes()) {
    if (output.Contains(in_attr.name)) {
      return Status::InvalidArgument(
          "prototype '", name, "': attribute '", in_attr.name,
          "' appears in both input and output schemas");
    }
  }
  return std::shared_ptr<const Prototype>(
      new Prototype(std::move(name), std::move(input), std::move(output),
                    active, streaming));
}

std::string Prototype::ToString() const {
  std::string s = "PROTOTYPE " + name_;
  std::string in = input_.ToString();
  // RelationSchema::ToString already parenthesizes.
  s += in;
  s += " : ";
  s += output_.ToString();
  if (active_) s += " ACTIVE";
  if (streaming_) s += " STREAMING";
  return s;
}

}  // namespace serena
