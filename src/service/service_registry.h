#ifndef SERENA_SERVICE_SERVICE_REGISTRY_H_
#define SERENA_SERVICE_SERVICE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "service/prototype.h"
#include "service/service.h"
#include "types/tuple.h"

namespace serena {

/// Counters describing the invocation traffic a query (or a whole run)
/// generated. Exposed for the cost model and the benchmark harness.
struct InvocationStats {
  /// All invocations requested through the registry.
  std::uint64_t logical_invocations = 0;
  /// Invocations that actually reached a service (memoization misses).
  std::uint64_t physical_invocations = 0;
  /// Invocations of *active* prototypes (always physical; never memoized
  /// away across queries, but identical repeats within one instant are
  /// still served from the memo per the paper's instant determinism).
  std::uint64_t active_invocations = 0;
  /// Output tuples produced by all physical invocations.
  std::uint64_t output_tuples = 0;
  /// Invocations answered from the per-instant memo (§3.2 determinism).
  std::uint64_t memo_hits = 0;
  /// Invocations that failed (unknown service, prototype mismatch,
  /// service fault, schema violation).
  std::uint64_t failed_invocations = 0;
};

/// The service discovery and invocation mechanism (§2.1): tracks the set Ω
/// of currently available services and implements the invocation function
/// invoke_ψ(s, t) of Def. 1.
///
/// Instant determinism (§3.2): within one logical instant, invoking the
/// same prototype on the same service with the same input always yields
/// the same result. The registry enforces this by memoizing results per
/// instant; the memo is discarded whenever the instant advances.
class ServiceRegistry {
 public:
  ServiceRegistry() = default;

  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  /// Registers a service under id(ω). Fails with AlreadyExists on
  /// duplicate references.
  Status Register(ServicePtr service);

  /// Removes a service (e.g. a sensor disappeared). Fails with NotFound.
  Status Unregister(const std::string& service_ref);

  /// Looks up a service by reference.
  Result<ServicePtr> Lookup(const std::string& service_ref) const;

  bool Contains(const std::string& service_ref) const;

  /// All registered service references, sorted.
  std::vector<std::string> ServiceRefs() const;

  /// References of services implementing `prototype_name`, sorted. This is
  /// what the Query Processor's discovery queries materialize (§5.1).
  std::vector<std::string> ServicesImplementing(
      std::string_view prototype_name) const;

  std::size_t size() const { return services_.size(); }

  /// invoke_ψ(s, t) at instant `now` (Def. 1).
  ///
  /// Validates that the service exists and implements the prototype, that
  /// `input` conforms to Input_ψ, and that every returned tuple conforms
  /// to Output_ψ. Results are memoized for the duration of the instant.
  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const std::string& service_ref,
                                    const Tuple& input, Timestamp now);

  const InvocationStats& stats() const { return stats_; }
  void ResetStats() { stats_ = InvocationStats(); }

  /// Observers notified on registration / unregistration; drives the
  /// discovery-maintained XD-Relations of §5.1.
  using Listener = std::function<void(const std::string& service_ref,
                                      bool registered)>;
  /// Returns a token usable with `RemoveListener`.
  std::size_t AddListener(Listener listener);
  void RemoveListener(std::size_t token);

 private:
  struct MemoKey {
    std::string prototype;
    std::string service_ref;
    Tuple input;

    bool operator==(const MemoKey& other) const {
      return prototype == other.prototype &&
             service_ref == other.service_ref && input == other.input;
    }
  };
  struct MemoKeyHasher {
    std::size_t operator()(const MemoKey& key) const;
  };

  /// Telemetry instruments for one prototype, resolved once per
  /// prototype name and cached (the global registry lookup takes a lock;
  /// the invocation hot path must not).
  struct PrototypeInstruments {
    obs::Histogram* invoke_ns;
    obs::Counter* memo_hits;
    obs::Counter* memo_misses;
    obs::Counter* errors;
  };
  PrototypeInstruments& InstrumentsFor(const std::string& prototype);

  void NotifyListeners(const std::string& service_ref, bool registered);

  std::map<std::string, ServicePtr> services_;
  InvocationStats stats_;
  std::unordered_map<std::string, PrototypeInstruments> instruments_;

  Timestamp memo_instant_ = -1;
  std::unordered_map<MemoKey, std::vector<Tuple>, MemoKeyHasher> memo_;

  std::size_t next_listener_token_ = 0;
  std::map<std::size_t, Listener> listeners_;
};

}  // namespace serena

#endif  // SERENA_SERVICE_SERVICE_REGISTRY_H_
