#ifndef SERENA_SERVICE_SERVICE_REGISTRY_H_
#define SERENA_SERVICE_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "service/prototype.h"
#include "service/service.h"
#include "types/tuple.h"

namespace serena {

class ThreadPool;

/// Counters describing the invocation traffic a query (or a whole run)
/// generated. Exposed for the cost model and the benchmark harness.
struct InvocationStats {
  /// All invocations requested through the registry.
  std::uint64_t logical_invocations = 0;
  /// Invocations that actually reached a service (memoization misses).
  std::uint64_t physical_invocations = 0;
  /// Invocations of *active* prototypes (always physical; never memoized
  /// away across queries, but identical repeats within one instant are
  /// still served from the memo per the paper's instant determinism).
  std::uint64_t active_invocations = 0;
  /// Output tuples produced by *physical* invocations only. Memo-served
  /// repeats do not re-count their tuples: the counter measures service
  /// traffic, not result cardinality (which the caller can always sum
  /// itself).
  std::uint64_t output_tuples = 0;
  /// Invocations answered from the per-instant memo (§3.2 determinism).
  /// In a batch, duplicates of an identical in-flight request also count
  /// here (the serial loop would have served them from the memo).
  std::uint64_t memo_hits = 0;
  /// Invocations that failed (unknown service, prototype mismatch,
  /// service fault, schema violation).
  std::uint64_t failed_invocations = 0;
};

/// Reference-counted invocation result rows. §3.2 instant determinism
/// makes a memoized result immutable for the rest of the instant, so memo
/// hits hand out the same underlying vector instead of copying it.
using TupleRows = std::shared_ptr<const std::vector<Tuple>>;

/// One (service, input) pair of a batched invocation (`InvokeMany`).
struct InvocationRequest {
  std::string service_ref;
  Tuple input;
};

/// The service discovery and invocation mechanism (§2.1): tracks the set Ω
/// of currently available services and implements the invocation function
/// invoke_ψ(s, t) of Def. 1.
///
/// Instant determinism (§3.2): within one logical instant, invoking the
/// same prototype on the same service with the same input always yields
/// the same result. The registry enforces this by memoizing results per
/// instant; the memo is discarded whenever the instant advances.
///
/// Thread safety: all members are safe to call concurrently. The memo,
/// service map, instrument cache, and listener list are mutex-guarded;
/// statistics are atomic. Physical service calls run *outside* any
/// registry lock, so independent invocations overlap freely; `Service`
/// implementations invoked through the registry must therefore tolerate
/// concurrent `Invoke` calls (all bundled simulations do).
///
/// Single-flight memoization: the memo stores a future per key, inserted
/// *before* the physical call. Concurrent identical invocations within
/// one instant therefore never both reach the service — the first caller
/// owns the call, the rest await its result. This keeps active
/// invocations (Def. 8 side effects) at exactly one physical occurrence
/// per (service, input, instant) even across concurrently-stepped
/// queries, exactly as under serial evaluation. A failed call is removed
/// from the memo and awaiting callers retry physically (failures are
/// never memoized, matching the serial retry behavior).
class ServiceRegistry {
 public:
  ServiceRegistry() = default;

  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  /// Registers a service under id(ω). Fails with AlreadyExists on
  /// duplicate references.
  Status Register(ServicePtr service);

  /// Removes a service (e.g. a sensor disappeared). Fails with NotFound.
  Status Unregister(const std::string& service_ref);

  /// Looks up a service by reference.
  Result<ServicePtr> Lookup(const std::string& service_ref) const;

  bool Contains(const std::string& service_ref) const;

  /// All registered service references, sorted.
  std::vector<std::string> ServiceRefs() const;

  /// References of services implementing `prototype_name`, sorted. This is
  /// what the Query Processor's discovery queries materialize (§5.1).
  std::vector<std::string> ServicesImplementing(
      std::string_view prototype_name) const;

  std::size_t size() const;

  /// invoke_ψ(s, t) at instant `now` (Def. 1).
  ///
  /// Validates that the service exists and implements the prototype, that
  /// `input` conforms to Input_ψ, and that every returned tuple conforms
  /// to Output_ψ. Results are memoized for the duration of the instant;
  /// memo hits return the memoized rows without copying them.
  Result<TupleRows> Invoke(const Prototype& prototype,
                           const std::string& service_ref,
                           const Tuple& input, Timestamp now);

  /// Batched invoke_ψ: one result per request, in request order.
  ///
  /// Identical (service_ref, input) pairs are deduplicated before
  /// dispatch — the first occurrence pays the physical call; later ones
  /// share its rows and count as memo hits, exactly what the serial loop
  /// would have recorded. (Duplicates of a *failing* request share its
  /// failure; the serial loop would have retried them physically, so
  /// failure-path stats can differ from N sequential `Invoke` calls.)
  ///
  /// Residual physical calls are dispatched concurrently on `pool`
  /// (nullptr = `ThreadPool::Shared()`; a serial pool dispatches in
  /// request order). With `cancel_on_error`, the first physical failure
  /// stops not-yet-started physical calls; those return a status for
  /// which `IsCancelled()` is true.
  std::vector<Result<TupleRows>> InvokeMany(
      const Prototype& prototype,
      std::span<const InvocationRequest> requests, Timestamp now,
      ThreadPool* pool = nullptr, bool cancel_on_error = false);

  /// True for the status of a batch entry that was skipped because an
  /// earlier failure cancelled the rest of its batch.
  static bool IsCancelled(const Status& status);

  /// A consistent snapshot of the invocation counters.
  InvocationStats stats() const;
  void ResetStats();

  /// Observers notified on registration / unregistration; drives the
  /// discovery-maintained XD-Relations of §5.1.
  using Listener = std::function<void(const std::string& service_ref,
                                      bool registered)>;
  /// Returns a token usable with `RemoveListener`.
  std::size_t AddListener(Listener listener);
  void RemoveListener(std::size_t token);

 private:
  struct MemoKey {
    std::string prototype;
    std::string service_ref;
    Tuple input;

    bool operator==(const MemoKey& other) const {
      return prototype == other.prototype &&
             service_ref == other.service_ref && input == other.input;
    }
  };
  struct MemoKeyHasher {
    std::size_t operator()(const MemoKey& key) const;
  };

  /// Telemetry instruments for one prototype, resolved once per
  /// prototype name and cached (the global registry lookup takes a lock;
  /// the invocation hot path must not). All pointers are null when
  /// metrics are disabled.
  struct PrototypeInstruments {
    obs::Histogram* invoke_ns = nullptr;
    obs::Counter* memo_hits = nullptr;
    obs::Counter* memo_misses = nullptr;
    obs::Counter* errors = nullptr;
  };
  PrototypeInstruments InstrumentsFor(const std::string& prototype);

  /// Counts a failed invocation and returns its status.
  Result<TupleRows> Fail(Status status,
                         const PrototypeInstruments& instruments);

  /// The physical call path: lookup, prototype check, service call,
  /// output validation. No memo interaction; safe to run concurrently.
  Result<TupleRows> InvokePhysical(const Prototype& prototype,
                                   const std::string& service_ref,
                                   const Tuple& input, Timestamp now,
                                   const PrototypeInstruments& instruments);

  /// One memoized invocation with single-flight semantics (see class
  /// comment). Does NOT count the logical invocation — callers do.
  Result<TupleRows> InvokeMemoized(const Prototype& prototype,
                                   const std::string& service_ref,
                                   const Tuple& input, Timestamp now,
                                   const PrototypeInstruments& instruments);

  /// Drops the memo when the instant advanced. Caller holds `memo_mu_`.
  void RefreshInstantLocked(Timestamp now);

  void NotifyListeners(const std::string& service_ref, bool registered);

  struct AtomicInvocationStats {
    std::atomic<std::uint64_t> logical_invocations{0};
    std::atomic<std::uint64_t> physical_invocations{0};
    std::atomic<std::uint64_t> active_invocations{0};
    std::atomic<std::uint64_t> output_tuples{0};
    std::atomic<std::uint64_t> memo_hits{0};
    std::atomic<std::uint64_t> failed_invocations{0};
  };

  mutable std::mutex services_mu_;
  std::map<std::string, ServicePtr> services_;

  AtomicInvocationStats stats_;

  std::mutex instruments_mu_;
  std::unordered_map<std::string, PrototypeInstruments> instruments_;

  /// A memo slot: ready once the owning call completed. Only successful
  /// results stay in the map.
  using MemoFuture = std::shared_future<Result<TupleRows>>;

  /// The future plus the causal identity of the call that owns it:
  /// `span_id` is preallocated before the physical dispatch so waiters
  /// can link their wait spans to the winning invocation's span (0 when
  /// tracing is off).
  struct MemoSlot {
    MemoFuture future;
    std::uint64_t span_id = 0;
  };

  std::mutex memo_mu_;
  Timestamp memo_instant_ = -1;
  std::unordered_map<MemoKey, MemoSlot, MemoKeyHasher> memo_;

  mutable std::mutex listeners_mu_;
  std::size_t next_listener_token_ = 0;
  std::map<std::size_t, Listener> listeners_;
};

}  // namespace serena

#endif  // SERENA_SERVICE_SERVICE_REGISTRY_H_
