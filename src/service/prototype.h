#ifndef SERENA_SERVICE_PROTOTYPE_H_
#define SERENA_SERVICE_PROTOTYPE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "schema/relation_schema.h"

namespace serena {

/// The declaration of a distributed functionality (§2.1, §2.3.1).
///
/// A prototype ψ carries an input relation schema Input_ψ, a non-empty
/// output relation schema Output_ψ (disjoint from the input), and an
/// active/passive tag. Invoking ψ on a service takes one tuple over
/// Input_ψ and yields a relation (0..n tuples) over Output_ψ.
///
/// Active prototypes have a side effect on the physical environment that
/// cannot be neglected (e.g. sendMessage); passive prototypes do not (e.g.
/// getTemperature). The tag drives query-equivalence (Def. 9) and limits
/// rewriting (§3.3).
///
/// A *streaming* prototype implements the paper's §7 future-work notion of
/// streaming binding pattern: the service provides a stream, and each
/// invocation at instant τ yields the output tuples the service emits *at
/// τ*. Under continuous evaluation the invocation operator re-invokes a
/// streaming pattern every instant for every standing tuple (instead of
/// reusing previous outputs), so the service-provided stream flows
/// homogeneously through the algebra.
class Prototype {
 public:
  /// Validates the paper's restrictions: non-empty name, non-empty output
  /// schema, input/output attribute sets disjoint.
  static Result<std::shared_ptr<const Prototype>> Create(
      std::string name, RelationSchema input, RelationSchema output,
      bool active, bool streaming = false);

  const std::string& name() const { return name_; }
  const RelationSchema& input() const { return input_; }
  const RelationSchema& output() const { return output_; }
  /// active(ψ) predicate.
  bool active() const { return active_; }
  /// True if the prototype provides a stream (§7 extension).
  bool streaming() const { return streaming_; }

  /// Pseudo-DDL rendering matching Table 1, e.g.
  /// "PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE".
  std::string ToString() const;

 private:
  Prototype(std::string name, RelationSchema input, RelationSchema output,
            bool active, bool streaming)
      : name_(std::move(name)),
        input_(std::move(input)),
        output_(std::move(output)),
        active_(active),
        streaming_(streaming) {}

  std::string name_;
  RelationSchema input_;
  RelationSchema output_;
  bool active_;
  bool streaming_;
};

using PrototypePtr = std::shared_ptr<const Prototype>;

}  // namespace serena

#endif  // SERENA_SERVICE_PROTOTYPE_H_
