#ifndef SERENA_SERVICE_SERVICE_H_
#define SERENA_SERVICE_SERVICE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "service/prototype.h"
#include "types/tuple.h"

namespace serena {

/// A service ω ∈ Ω (§2.3.1): a distributed functionality implementation.
///
/// A service is identified by its service reference id(ω) — a plain data
/// value (we use strings, like "sensor01" or "email") — and implements a
/// finite set of prototypes. Method names remain implicit (§2.1): invoking
/// a prototype on a service transparently calls the corresponding method.
///
/// Implementations must be *deterministic within a logical instant*: two
/// invocations with the same (prototype, input, instant) must return the
/// same relation (§3.2). Across instants results may differ freely (a
/// sensor warms up, a camera sees a different scene).
class Service {
 public:
  explicit Service(std::string id) : id_(std::move(id)) {}
  virtual ~Service() = default;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// id(ω): the service reference.
  const std::string& id() const { return id_; }

  /// prototypes(ω): the prototypes this service implements.
  virtual std::vector<PrototypePtr> prototypes() const = 0;

  /// True if the service implements a prototype with this name.
  bool Implements(std::string_view prototype_name) const;

  /// Invokes `prototype` with `input` (a tuple over Input_ψ) at instant
  /// `now`, returning a relation over Output_ψ (0..n tuples).
  ///
  /// Callers must go through `ServiceRegistry::Invoke`, which validates
  /// schemas and enforces instant determinism by memoization.
  virtual Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                            const Tuple& input,
                                            Timestamp now) = 0;

 private:
  std::string id_;
};

using ServicePtr = std::shared_ptr<Service>;

}  // namespace serena

#endif  // SERENA_SERVICE_SERVICE_H_
