#include "io/csv.h"

#include <cctype>

#include "common/string_util.h"

namespace serena {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string ValueToCsvField(const Value& value) {
  switch (value.type()) {
    case DataType::kBool:
      return value.bool_value() ? "true" : "false";
    case DataType::kInt:
      return std::to_string(value.int_value());
    case DataType::kReal:
      return StringFormat("%.17g", value.real_value());
    case DataType::kBlob: {
      std::string hex;
      hex.reserve(value.blob_value().size() * 2);
      for (std::uint8_t byte : value.blob_value()) {
        hex += StringFormat("%02x", byte);
      }
      return hex;
    }
    default:
      return QuoteField(value.string_value());
  }
}

/// Splits one CSV line into raw fields, honoring quotes.
Result<std::vector<std::string>> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field in line: ",
                              std::string(line));
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> FieldToValue(const std::string& field, DataType type) {
  if (type == DataType::kBlob) {
    if (field.size() % 2 != 0) {
      return Status::ParseError("odd-length hex blob: ", field);
    }
    Blob blob;
    blob.reserve(field.size() / 2);
    for (std::size_t i = 0; i < field.size(); i += 2) {
      auto nibble = [&](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = nibble(field[i]);
      const int lo = nibble(field[i + 1]);
      if (hi < 0 || lo < 0) {
        return Status::ParseError("invalid hex blob: ", field);
      }
      blob.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return Value::BlobValue(std::move(blob));
  }
  if (type == DataType::kString || type == DataType::kService) {
    return Value::String(field);
  }
  return ParseValueLiteral(field, type);
}

}  // namespace

Result<std::string> ToCsv(const XRelation& relation) {
  const ExtendedSchema& schema = relation.schema();
  std::string csv;
  // Header: real attribute names in schema order.
  const std::vector<std::string> names = schema.RealNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) csv += ',';
    csv += QuoteField(names[i]);
  }
  csv += '\n';
  for (const Tuple& t : relation.Sorted()) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i > 0) csv += ',';
      csv += ValueToCsvField(t[i]);
    }
    csv += '\n';
  }
  return csv;
}

Result<XRelation> FromCsv(ExtendedSchemaPtr schema, std::string_view csv) {
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  XRelation relation(schema);

  // Collect the expected types in coordinate order.
  std::vector<DataType> types;
  for (const Attribute& attr : schema->attributes()) {
    if (attr.is_real()) types.push_back(attr.type);
  }

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t end = csv.find('\n', start);
    const std::string_view line =
        csv.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                        : end - start);
    start = end == std::string_view::npos ? csv.size() + 1 : end + 1;
    if (Trim(line).empty()) continue;
    SERENA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            SplitCsvLine(line));
    ++line_no;
    if (line_no == 1) {
      // Header must match the real schema exactly.
      const std::vector<std::string> expected = schema->RealNames();
      if (fields != expected) {
        return Status::ParseError("CSV header {", Join(fields, ","),
                                  "} does not match real schema {",
                                  Join(expected, ","), "}");
      }
      continue;
    }
    if (fields.size() != types.size()) {
      return Status::ParseError("CSV row ", line_no, " has ", fields.size(),
                                " field(s), expected ", types.size());
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      SERENA_ASSIGN_OR_RETURN(Value value, FieldToValue(fields[i], types[i]));
      values.push_back(std::move(value));
    }
    SERENA_RETURN_NOT_OK(relation.Insert(Tuple(std::move(values))).status());
  }
  return relation;
}

}  // namespace serena
