#ifndef SERENA_IO_CSV_H_
#define SERENA_IO_CSV_H_

#include <string>

#include "common/result.h"
#include "xrel/xrelation.h"

namespace serena {

/// CSV export/import for X-Relations (real attributes only — virtual
/// attributes have no value to serialize, Def. 3).
///
/// Format: RFC-4180-ish. Header row of real attribute names; strings are
/// quoted when they contain separators/quotes (quotes doubled); booleans
/// as true/false; blobs as lowercase hex. Rows are emitted in canonical
/// (sorted) order so exports are deterministic.
Result<std::string> ToCsv(const XRelation& relation);

/// Parses CSV produced by `ToCsv` (or hand-written data) into an
/// X-Relation over `schema`. The header row must name exactly the
/// schema's real attributes, in order. Values are typed by the schema.
Result<XRelation> FromCsv(ExtendedSchemaPtr schema, std::string_view csv);

}  // namespace serena

#endif  // SERENA_IO_CSV_H_
