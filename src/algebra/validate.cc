#include "algebra/validate.h"

#include <optional>
#include <set>

namespace serena {

namespace {

/// Operator label without children (mirrors the EXPLAIN rendering enough
/// for diagnostics; full fidelity is not required here).
std::string LabelOf(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode&>(node).relation();
    case PlanKind::kSelect: {
      return "select[" +
             static_cast<const SelectNode&>(node).formula()->ToString() + "]";
    }
    case PlanKind::kInvoke: {
      const auto& n = static_cast<const InvokeNode&>(node);
      return "invoke[" + n.prototype() + "]";
    }
    case PlanKind::kAssign: {
      return "assign[" + static_cast<const AssignNode&>(node).target() + "]";
    }
    case PlanKind::kWindow: {
      return "window(" + static_cast<const WindowNode&>(node).stream() + ")";
    }
    default:
      return PlanKindToString(node.kind());
  }
}

class Validator {
 public:
  Validator(const Environment& env, const StreamStore* streams)
      : env_(env), streams_(streams) {}

  std::vector<Diagnostic> Run(const PlanPtr& plan) {
    (void)Visit(plan);
    return std::move(diagnostics_);
  }

 private:
  void Error(const PlanNode& node, std::string message) {
    diagnostics_.push_back(Diagnostic{Diagnostic::Severity::kError,
                                      LabelOf(node), std::move(message)});
  }
  void Warn(const PlanNode& node, std::string message) {
    diagnostics_.push_back(Diagnostic{Diagnostic::Severity::kWarning,
                                      LabelOf(node), std::move(message)});
  }

  /// Validates the subtree; returns its schema when derivable.
  std::optional<ExtendedSchemaPtr> Visit(const PlanPtr& plan) {
    // Validate children first, collecting their schemas.
    std::vector<std::optional<ExtendedSchemaPtr>> child_schemas;
    for (const PlanPtr& child : plan->children()) {
      child_schemas.push_back(Visit(child));
    }
    for (const auto& schema : child_schemas) {
      if (!schema.has_value()) return std::nullopt;  // Already reported.
    }

    // Node-specific warnings that need child context.
    EmitWarnings(plan, child_schemas);

    // Reuse the operators' own schema derivation for error checking: it
    // implements Table 3 exactly. One error per node.
    auto schema = plan->InferSchema(env_, streams_);
    if (!schema.ok()) {
      Error(*plan, schema.status().message());
      return std::nullopt;
    }
    return *schema;
  }

  void EmitWarnings(
      const PlanPtr& plan,
      const std::vector<std::optional<ExtendedSchemaPtr>>& child_schemas) {
    switch (plan->kind()) {
      case PlanKind::kJoin: {
        if (child_schemas.size() != 2) return;
        const ExtendedSchema& left = **child_schemas[0];
        const ExtendedSchema& right = **child_schemas[1];
        bool shared_real = false;
        for (const std::string& name : left.RealNames()) {
          if (right.IsReal(name)) shared_real = true;
        }
        if (!shared_real) {
          Warn(*plan,
               "no attribute is real in both operands: the join degrades "
               "to a Cartesian product (Table 3 (d))");
        }
        break;
      }
      case PlanKind::kSelect: {
        const auto* select = static_cast<const SelectNode*>(plan.get());
        if (select->child()->kind() == PlanKind::kInvoke) {
          const auto* invoke =
              static_cast<const InvokeNode*>(select->child().get());
          if (invoke->IsActive(env_, streams_)) {
            Warn(*plan,
                 "selection above an ACTIVE invocation: the filter does "
                 "not reduce the action set (Example 6's Q1' pattern) — "
                 "filter before invoking if that is not intended");
          }
        }
        break;
      }
      case PlanKind::kProject: {
        if (child_schemas.empty() || !child_schemas[0].has_value()) return;
        const ExtendedSchema& child = **child_schemas[0];
        if (child.binding_patterns().empty()) return;
        auto derived = plan->InferSchema(env_, streams_);
        if (derived.ok() && (*derived)->binding_patterns().empty()) {
          Warn(*plan,
               "projection eliminates every binding pattern: no further "
               "realization is possible above this operator");
        }
        break;
      }
      case PlanKind::kStreaming: {
        Warn(*plan,
             "streaming operator requires continuous evaluation; one-shot "
             "execution of this plan will fail");
        break;
      }
      default:
        break;
    }
  }

  const Environment& env_;
  const StreamStore* streams_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::string s =
      severity == Severity::kError ? "error at " : "warning at ";
  s += node;
  s += ": ";
  s += message;
  return s;
}

Result<std::vector<Diagnostic>> ValidatePlan(const PlanPtr& plan,
                                             const Environment& env,
                                             const StreamStore* streams) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  Validator validator(env, streams);
  return validator.Run(plan);
}

bool IsValid(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity == Diagnostic::Severity::kError) return false;
  }
  return true;
}

}  // namespace serena
