#ifndef SERENA_ALGEBRA_AGGREGATE_H_
#define SERENA_ALGEBRA_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xrel/xrelation.h"

namespace serena {

/// Aggregate functions for the grouping operator.
///
/// The paper's motivating example (§1.2) needs "the mean temperature for
/// a given location"; γ is the standard grouping extension of the
/// relational algebra lifted to X-Relations. Grouping and aggregate input
/// attributes must be *real* (virtual attributes have no value, Def. 3).
enum class AggregateFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateFnToString(AggregateFn fn);
Result<AggregateFn> AggregateFnFromString(std::string_view name);

/// One aggregate column: `fn(input) -> output`. For kCount the input
/// attribute may be empty (count of tuples per group).
struct AggregateSpec {
  AggregateFn fn = AggregateFn::kCount;
  std::string input;   // Real attribute; empty allowed for kCount.
  std::string output;  // Result attribute name.

  /// "avg(temperature) -> mean_temp".
  std::string ToString() const;

  bool operator==(const AggregateSpec& other) const {
    return fn == other.fn && input == other.input && output == other.output;
  }
};

/// Output schema of γ: the group-by attributes (all real) followed by one
/// real attribute per aggregate. All binding patterns are dropped — the
/// aggregated relation no longer carries per-service rows.
Result<ExtendedSchemaPtr> AggregateSchema(
    const ExtendedSchemaPtr& schema, const std::vector<std::string>& group_by,
    const std::vector<AggregateSpec>& aggregates);

/// γ_{group_by; aggregates}(r). With an empty `group_by`, produces a
/// single row aggregating the whole relation (or zero rows for an empty
/// input, matching SQL's grouped semantics).
Result<XRelation> Aggregate(const XRelation& r,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggregateSpec>& aggregates);

}  // namespace serena

#endif  // SERENA_ALGEBRA_AGGREGATE_H_
