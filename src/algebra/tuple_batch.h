#ifndef SERENA_ALGEBRA_TUPLE_BATCH_H_
#define SERENA_ALGEBRA_TUPLE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "types/tuple.h"

namespace serena {
namespace vec {

/// One unit of vectorized dataflow (docs/VECTORIZATION.md): a bounded run
/// of tuples flowing through a fused operator pipeline. A batch is either
/// *borrowing* (a compacted vector of pointers into storage owned by a
/// producer further down the pipeline — the selection-vector
/// representation σ uses to drop rows without copying survivors) or
/// *owning* (materialized tuples, produced by operators that build new
/// rows: π, α, ⋈).
///
/// Lifetime contract: a batch's rows — and any pointers borrowed from
/// them — are valid until the producing cursor's next `Next()` call.
/// Batches are acquired from a `BatchPool` and reused across calls, so
/// the steady-state hot loop performs no allocations.
class TupleBatch {
 public:
  void Clear() {
    refs_.clear();
    hashes_.clear();
    owned_.clear();
  }

  /// Borrow `tuple` into the batch (no copy). The pointer must outlive
  /// the batch's current fill (see the lifetime contract above). `hash`
  /// is the tuple's content hash (`Tuple::Hash`) when the producer knows
  /// it — stream entries hash once at append time — or 0 for unknown;
  /// consumers re-hash on 0. Carrying the hash lets the terminal collect
  /// index its result relation without re-hashing any stream tuple.
  void AppendRef(const Tuple* tuple, std::uint64_t hash = 0) {
    refs_.push_back(tuple);
    hashes_.push_back(hash);
  }

  /// Materialize `tuple` into the batch's own storage.
  void AppendOwned(Tuple tuple) { owned_.push_back(std::move(tuple)); }

  /// Pre-sizes the owning storage (capacity is retained across Clear, so
  /// this is free after the first batch).
  void ReserveOwned(std::size_t n) {
    if (owned_.capacity() < n) owned_.reserve(n);
  }

  /// A batch is all-refs or all-owned; producers pick one representation
  /// per fill.
  std::size_t size() const {
    return owned_.empty() ? refs_.size() : owned_.size();
  }
  bool empty() const { return size() == 0; }

  const Tuple& at(std::size_t i) const {
    return owned_.empty() ? *refs_[i] : owned_[i];
  }

  /// The known content hash of row `i`, or 0 when the producer did not
  /// carry one (owned rows, catalog scans, opaque results).
  std::uint64_t hash_at(std::size_t i) const {
    return owned_.empty() && i < hashes_.size() ? hashes_[i] : 0;
  }

 private:
  std::vector<const Tuple*> refs_;
  std::vector<std::uint64_t> hashes_;  // Parallel to refs_; 0 = unknown.
  std::vector<Tuple> owned_;
};

/// Reusable batch storage for one evaluation context. Cursors acquire
/// batches at pipeline-build time; when a pipeline finishes it releases
/// back to the mark it started from (pipelines nest: an opaque operator
/// inside one pipeline may run an inner pipeline over the same pool).
/// The pool keeps every batch's capacity, so a continuous query's steady
/// state — the same plan evaluated every tick against a pool owned by
/// the query — runs its batch loop allocation-free.
///
/// Not thread-safe; each concurrently-stepped query owns its own pool.
class BatchPool {
 public:
  TupleBatch* Acquire() {
    if (in_use_ == batches_.size()) {
      batches_.push_back(std::make_unique<TupleBatch>());
    }
    TupleBatch* batch = batches_[in_use_++].get();
    batch->Clear();
    return batch;
  }

  /// Position to restore to once the pipeline holding batches above it
  /// completes.
  std::size_t Mark() const { return in_use_; }
  void ReleaseToMark(std::size_t mark) {
    if (mark < in_use_) in_use_ = mark;
  }

  /// Batches ever allocated (capacity telemetry).
  std::size_t allocated() const { return batches_.size(); }

 private:
  std::vector<std::unique_ptr<TupleBatch>> batches_;
  std::size_t in_use_ = 0;
};

}  // namespace vec
}  // namespace serena

#endif  // SERENA_ALGEBRA_TUPLE_BATCH_H_
