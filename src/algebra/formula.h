#ifndef SERENA_ALGEBRA_FORMULA_H_
#define SERENA_ALGEBRA_FORMULA_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/extended_schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace serena {

/// Comparison operators usable in selection formulas. `kContains` is a
/// string-containment predicate (used e.g. by the RSS keyword queries of
/// §5.2); the rest are the usual orderings.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

const char* CompareOpToString(CompareOp op);

/// One side of a comparison: a (real) attribute reference, a constant
/// from D, or a named parameter (`:name`) bound before execution —
/// prepared-statement style.
class Operand {
 public:
  enum class Kind { kAttribute, kConstant, kParameter };

  static Operand Attr(std::string name) {
    Operand op;
    op.kind_ = Kind::kAttribute;
    op.name_ = std::move(name);
    return op;
  }
  static Operand Const(Value value) {
    Operand op;
    op.kind_ = Kind::kConstant;
    op.value_ = std::move(value);
    return op;
  }
  static Operand Param(std::string name) {
    Operand op;
    op.kind_ = Kind::kParameter;
    op.name_ = std::move(name);
    return op;
  }

  Kind kind() const { return kind_; }
  bool is_attribute() const { return kind_ == Kind::kAttribute; }
  bool is_parameter() const { return kind_ == Kind::kParameter; }
  const std::string& attribute() const { return name_; }
  const std::string& parameter() const { return name_; }
  const Value& value() const { return value_; }

  std::string ToString() const {
    switch (kind_) {
      case Kind::kAttribute:
        return name_;
      case Kind::kParameter:
        return ":" + name_;
      default:
        return value_.ToString();
    }
  }
  bool operator==(const Operand& other) const {
    if (kind_ != other.kind_) return false;
    return kind_ == Kind::kConstant ? value_ == other.value_
                                    : name_ == other.name_;
  }

 private:
  Kind kind_ = Kind::kConstant;
  std::string name_;
  Value value_;
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// A formula compiled against one fixed schema: attribute references are
/// resolved to coordinates and constants captured, so evaluating a tuple
/// does no name lookups and copies no values. The vectorized pipeline
/// (docs/VECTORIZATION.md) compiles each selection formula once per
/// pipeline and amortizes the interpretation cost across every batch.
using TuplePredicate = std::function<Result<bool>(const Tuple&)>;

/// One side of a compiled comparison: either a tuple coordinate resolved
/// against the compile-time schema or a captured constant. `Get` returns
/// a reference — no Value copies on the per-tuple path.
struct CompiledOperand {
  std::size_t coord = 0;
  bool is_coord = false;
  Value constant;

  const Value& Get(const Tuple& tuple) const {
    return is_coord ? tuple[coord] : constant;
  }
};

/// A single compiled comparison — the unit of the flattened-conjunction
/// fast path (`Formula::FlattenConjunction`). A conjunction of these is
/// evaluated as a tight loop with direct calls, with none of the nested
/// `std::function` dispatch a compiled AND-tree would pay per tuple.
struct CompiledComparison {
  CompiledOperand lhs;
  CompareOp op;
  CompiledOperand rhs;

  /// lhs op rhs on `tuple` (which must conform to the compile schema).
  Result<bool> Eval(const Tuple& tuple) const;
};

/// A selection formula F over realSchema(R) (Table 3 (b)).
///
/// Formulas are immutable trees of comparisons combined with AND / OR /
/// NOT. Per the paper, a formula may only reference *real* attributes —
/// virtual attributes have no value; `Validate` enforces this, and the
/// selection operator refuses formulas that fail it.
class Formula {
 public:
  virtual ~Formula() = default;

  /// Checks that every referenced attribute is a real attribute of
  /// `schema` and that comparisons are type-sensible.
  virtual Status Validate(const ExtendedSchema& schema) const = 0;

  /// t ⊨ F (logical implication of [18], §3.1.2).
  virtual Result<bool> Evaluate(const ExtendedSchema& schema,
                                const Tuple& tuple) const = 0;

  /// Compiles the formula against `schema`: attribute names resolve to
  /// tuple coordinates once, here, instead of per evaluated tuple. Fails
  /// on unbound parameters or unresolvable attributes — exactly the
  /// inputs `Evaluate` would reject per tuple, so callers fall back to
  /// the interpreted path and reproduce its diagnostics. The returned
  /// predicate must only be applied to tuples of `schema`.
  virtual Result<TuplePredicate> Compile(
      const ExtendedSchema& schema) const = 0;

  /// If this formula is a pure conjunction of comparisons (a single
  /// comparison counts), appends each compiled conjunct to `out` in
  /// evaluation order and returns true. The appended sequence, evaluated
  /// left to right with a stop at the first false or first error, decides
  /// exactly like `Evaluate`/`Compile` on every tuple. Returns false —
  /// leaving `out` unspecified — for formulas containing OR/NOT or
  /// operands that don't compile (unbound parameters, missing
  /// attributes); callers then fall back to `Compile`.
  virtual bool FlattenConjunction(const ExtendedSchema& schema,
                                  std::vector<CompiledComparison>* out) const {
    (void)schema;
    (void)out;
    return false;
  }

  /// Adds every referenced attribute name to `out`. Rewrite rules use this
  /// for their side conditions (e.g. "A ∉ F", Table 5).
  virtual void CollectAttributes(std::set<std::string>* out) const = 0;

  virtual std::string ToString() const = 0;

  /// Structural equality (used to compare plans).
  virtual bool Equals(const Formula& other) const = 0;

  /// If this formula is a top-level conjunction F1 ∧ F2, exposes both
  /// sides and returns true. Lets the rewriter push individual conjuncts
  /// independently (σ_{F1∧F2} ≡ σ_F1 ∘ σ_F2).
  virtual bool AsConjunction(FormulaPtr* lhs, FormulaPtr* rhs) const {
    (void)lhs;
    (void)rhs;
    return false;
  }

  /// A copy of this formula with every reference to attribute `from`
  /// replaced by `to` (used when commuting σ with ρ).
  virtual FormulaPtr WithRenamedAttribute(std::string_view from,
                                          std::string_view to) const = 0;

  /// Adds every `:parameter` name referenced by the formula to `out`.
  virtual void CollectParameters(std::set<std::string>* out) const = 0;

  /// A copy with parameters substituted by their bound values; parameters
  /// absent from `bindings` are left in place (Validate/Evaluate then
  /// reject them as unbound).
  virtual FormulaPtr WithBoundParameters(
      const std::map<std::string, Value>& bindings) const = 0;

  // Factories.
  static FormulaPtr Compare(Operand lhs, CompareOp op, Operand rhs);
  static FormulaPtr And(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Or(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Not(FormulaPtr inner);
};

/// True if the formula references attribute `name`.
bool FormulaReferences(const Formula& formula, std::string_view name);

/// Recursively splits top-level conjunctions into their conjuncts
/// (a single non-conjunction formula yields itself).
std::vector<FormulaPtr> SplitConjuncts(const FormulaPtr& formula);

/// Conjoins formulas back together; returns nullptr for an empty list.
FormulaPtr CombineConjuncts(const std::vector<FormulaPtr>& conjuncts);

}  // namespace serena

#endif  // SERENA_ALGEBRA_FORMULA_H_
