#include "algebra/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace serena {

namespace {

bool IsServiceReferenceType(DataType type) {
  return type == DataType::kService || type == DataType::kString;
}

/// Filters `candidates` down to the patterns valid for `attributes`
/// (Def. 2), dropping duplicates.
std::vector<BindingPattern> FilterBindingPatterns(
    const std::vector<Attribute>& attributes,
    const std::vector<BindingPattern>& candidates) {
  std::vector<BindingPattern> kept;
  for (const BindingPattern& bp : candidates) {
    if (!BindingPatternValidFor(attributes, bp)) continue;
    if (std::find(kept.begin(), kept.end(), bp) != kept.end()) continue;
    kept.push_back(bp);
  }
  return kept;
}

const Attribute* FindAttr(const std::vector<Attribute>& attributes,
                          std::string_view name) {
  for (const Attribute& attr : attributes) {
    if (attr.name == name) return &attr;
  }
  return nullptr;
}

}  // namespace

bool BindingPatternValidFor(const std::vector<Attribute>& attributes,
                            const BindingPattern& bp) {
  const Attribute* service_attr = FindAttr(attributes, bp.service_attribute());
  if (service_attr == nullptr || !service_attr->is_real() ||
      !IsServiceReferenceType(service_attr->type)) {
    return false;
  }
  for (const Attribute& in_attr : bp.prototype().input().attributes()) {
    const Attribute* attr = FindAttr(attributes, in_attr.name);
    if (attr == nullptr || !IsAssignableTo(attr->type, in_attr.type)) {
      return false;
    }
  }
  for (const Attribute& out_attr : bp.prototype().output().attributes()) {
    const Attribute* attr = FindAttr(attributes, out_attr.name);
    if (attr == nullptr || !attr->is_virtual() ||
        !IsAssignableTo(out_attr.type, attr->type)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Set operators
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> SetOpSchema(const ExtendedSchemaPtr& s1,
                                      const ExtendedSchemaPtr& s2,
                                      const char* op_name) {
  if (!s1->SameAttributes(*s2)) {
    return Status::InvalidArgument(op_name,
                                   ": operand schemas differ ('", s1->name(),
                                   "' vs '", s2->name(), "')");
  }
  // The result carries the union of both operands' binding patterns; both
  // sets are valid for the shared attribute sequence.
  std::vector<BindingPattern> bps = s1->binding_patterns();
  bps.insert(bps.end(), s2->binding_patterns().begin(),
             s2->binding_patterns().end());
  return ExtendedSchema::Create(
      std::string(op_name) + "(" + s1->name() + "," + s2->name() + ")",
      s1->attributes(), FilterBindingPatterns(s1->attributes(), bps));
}

namespace {

using SetOpFn = void (*)(const XRelation&, const XRelation&, XRelation*);

Result<XRelation> EvaluateSetOp(const XRelation& r1, const XRelation& r2,
                                const char* op_name, SetOpFn fill) {
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr schema,
      SetOpSchema(r1.schema_ptr(), r2.schema_ptr(), op_name));
  XRelation result(std::move(schema));
  fill(r1, r2, &result);
  return result;
}

}  // namespace

Result<XRelation> Union(const XRelation& r1, const XRelation& r2) {
  return EvaluateSetOp(
      r1, r2, "union", +[](const XRelation& a, const XRelation& b,
                           XRelation* out) {
        out->Reserve(a.size() + b.size());
        for (const Tuple& t : a.tuples()) out->InsertUnchecked(t);
        for (const Tuple& t : b.tuples()) out->InsertUnchecked(t);
      });
}

Result<XRelation> Intersect(const XRelation& r1, const XRelation& r2) {
  return EvaluateSetOp(
      r1, r2, "intersect", +[](const XRelation& a, const XRelation& b,
                               XRelation* out) {
        for (const Tuple& t : a.tuples()) {
          if (b.Contains(t)) out->InsertUnchecked(t);
        }
      });
}

Result<XRelation> Difference(const XRelation& r1, const XRelation& r2) {
  return EvaluateSetOp(
      r1, r2, "difference", +[](const XRelation& a, const XRelation& b,
                                XRelation* out) {
        for (const Tuple& t : a.tuples()) {
          if (!b.Contains(t)) out->InsertUnchecked(t);
        }
      });
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> ProjectSchema(const ExtendedSchemaPtr& schema,
                                        const std::vector<std::string>& y) {
  std::unordered_set<std::string> requested;
  for (const std::string& name : y) {
    if (!schema->Contains(name)) {
      return Status::InvalidArgument("project: attribute '", name,
                                     "' is not in schema '", schema->name(),
                                     "'");
    }
    requested.insert(name);
  }
  std::vector<Attribute> attributes;
  for (const Attribute& attr : schema->attributes()) {
    if (requested.count(attr.name) > 0) attributes.push_back(attr);
  }
  return ExtendedSchema::Create(
      "project(" + schema->name() + ")", attributes,
      FilterBindingPatterns(attributes, schema->binding_patterns()));
}

Result<XRelation> Project(const XRelation& r,
                          const std::vector<std::string>& y) {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema,
                          ProjectSchema(r.schema_ptr(), y));
  // Source coordinate for each real attribute of the output, in output
  // coordinate order.
  std::vector<std::size_t> coords;
  for (const Attribute& attr : schema->attributes()) {
    if (attr.is_real()) {
      coords.push_back(*r.schema().CoordinateOf(attr.name));
    }
  }
  XRelation result(std::move(schema));
  result.Reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    result.InsertUnchecked(t.Project(coords));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> SelectSchema(const ExtendedSchemaPtr& schema,
                                       const FormulaPtr& formula) {
  if (formula == nullptr) {
    return Status::InvalidArgument("select: null formula");
  }
  SERENA_RETURN_NOT_OK(formula->Validate(*schema));
  return schema;
}

Result<XRelation> Select(const XRelation& r, const FormulaPtr& formula) {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema,
                          SelectSchema(r.schema_ptr(), formula));
  XRelation result(schema);
  result.Reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    SERENA_ASSIGN_OR_RETURN(bool keep, formula->Evaluate(*schema, t));
    if (keep) result.InsertUnchecked(t);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Renaming
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> RenameSchema(const ExtendedSchemaPtr& schema,
                                       const std::string& from,
                                       const std::string& to) {
  if (!schema->Contains(from)) {
    return Status::InvalidArgument("rename: attribute '", from,
                                   "' is not in schema '", schema->name(),
                                   "'");
  }
  if (schema->Contains(to)) {
    return Status::InvalidArgument("rename: attribute '", to,
                                   "' already exists in schema '",
                                   schema->name(), "'");
  }
  std::vector<Attribute> attributes = schema->attributes();
  for (Attribute& attr : attributes) {
    if (attr.name == from) attr.name = to;
  }
  // Table 3 (c): patterns keep their prototype; a pattern whose service
  // attribute was renamed follows the rename; patterns whose prototype
  // input/output attributes no longer appear are eliminated.
  std::vector<BindingPattern> candidates;
  candidates.reserve(schema->binding_patterns().size());
  for (const BindingPattern& bp : schema->binding_patterns()) {
    candidates.push_back(bp.service_attribute() == from
                             ? bp.WithServiceAttribute(to)
                             : bp);
  }
  return ExtendedSchema::Create("rename(" + schema->name() + ")", attributes,
                                FilterBindingPatterns(attributes, candidates));
}

Result<XRelation> Rename(const XRelation& r, const std::string& from,
                         const std::string& to) {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema,
                          RenameSchema(r.schema_ptr(), from, to));
  XRelation result(std::move(schema));
  result.Reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    result.InsertUnchecked(t);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Natural join
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> JoinSchema(const ExtendedSchemaPtr& s1,
                                     const ExtendedSchemaPtr& s2) {
  std::vector<Attribute> attributes;
  // R1's attributes first; a shared attribute is real if real in either
  // operand (implicit realization) and takes the widened type.
  for (const Attribute& a1 : s1->attributes()) {
    const Attribute* a2 = s2->FindAttribute(a1.name);
    if (a2 == nullptr) {
      attributes.push_back(a1);
      continue;
    }
    if (!IsAssignableTo(a1.type, a2->type) &&
        !IsAssignableTo(a2->type, a1.type)) {
      return Status::TypeMismatch("join: attribute '", a1.name,
                                  "' has incompatible types ",
                                  DataTypeToString(a1.type), " and ",
                                  DataTypeToString(a2->type));
    }
    Attribute merged = a1;
    merged.type = IsAssignableTo(a1.type, a2->type) ? a2->type : a1.type;
    merged.kind = (a1.is_real() || a2->is_real()) ? AttributeKind::kReal
                                                  : AttributeKind::kVirtual;
    attributes.push_back(merged);
  }
  // Then R2's attributes not present in R1.
  for (const Attribute& a2 : s2->attributes()) {
    if (!s1->Contains(a2.name)) attributes.push_back(a2);
  }
  std::vector<BindingPattern> candidates = s1->binding_patterns();
  candidates.insert(candidates.end(), s2->binding_patterns().begin(),
                    s2->binding_patterns().end());
  return ExtendedSchema::Create(
      "join(" + s1->name() + "," + s2->name() + ")", attributes,
      FilterBindingPatterns(attributes, candidates));
}

Result<JoinSpec> JoinSpec::Resolve(const ExtendedSchemaPtr& s1,
                                   const ExtendedSchemaPtr& s2) {
  JoinSpec spec;
  SERENA_ASSIGN_OR_RETURN(spec.schema, JoinSchema(s1, s2));

  // Join attributes: real in both operands (Table 3 (d) — virtual ones
  // impose no predicate).
  for (const Attribute& attr : spec.schema->attributes()) {
    const auto c1 = s1->CoordinateOf(attr.name);
    const auto c2 = s2->CoordinateOf(attr.name);
    if (c1.has_value() && c2.has_value()) {
      spec.key1.push_back(*c1);
      spec.key2.push_back(*c2);
    }
  }

  // Output construction plan: for each real output attribute, where to
  // fetch the value (side 1 wins for shared attributes).
  for (const Attribute& attr : spec.schema->attributes()) {
    if (!attr.is_real()) continue;
    const auto c1 = s1->CoordinateOf(attr.name);
    if (c1.has_value()) {
      spec.sources.push_back({true, *c1});
    } else {
      // Real in the result and not real in R1 => real in R2.
      spec.sources.push_back({false, *s2->CoordinateOf(attr.name)});
    }
  }
  return spec;
}

Tuple JoinSpec::Merge(const Tuple& t1, const Tuple& t2) const {
  std::vector<Value> values;
  values.reserve(sources.size());
  for (const Source& src : sources) {
    values.push_back(src.from_r1 ? t1[src.coord] : t2[src.coord]);
  }
  return Tuple(std::move(values));
}

Result<XRelation> NaturalJoin(const XRelation& r1, const XRelation& r2) {
  SERENA_ASSIGN_OR_RETURN(JoinSpec spec,
                          JoinSpec::Resolve(r1.schema_ptr(), r2.schema_ptr()));

  XRelation result(spec.schema);
  auto emit = [&](const Tuple& t1, const Tuple& t2) {
    result.InsertUnchecked(spec.Merge(t1, t2));
  };

  if (spec.key1.empty()) {
    // Cartesian product.
    result.Reserve(r1.size() * r2.size());
    for (const Tuple& t1 : r1.tuples()) {
      for (const Tuple& t2 : r2.tuples()) emit(t1, t2);
    }
    return result;
  }

  // Hash join on the common real attributes, building on the smaller
  // side. Each build entry keeps its projected key so hash-bucket
  // collisions compare against a materialized tuple instead of
  // re-projecting the build row per probe match.
  const bool build_r1 = r1.size() < r2.size();
  const XRelation& build = build_r1 ? r1 : r2;
  const XRelation& probe = build_r1 ? r2 : r1;
  const std::vector<std::size_t>& build_key =
      build_r1 ? spec.key1 : spec.key2;
  const std::vector<std::size_t>& probe_key =
      build_r1 ? spec.key2 : spec.key1;

  struct BuildEntry {
    Tuple key;
    const Tuple* tuple;
  };
  std::unordered_multimap<std::uint64_t, BuildEntry> built;
  built.reserve(build.size());
  for (const Tuple& t : build.tuples()) {
    Tuple key = t.Project(build_key);
    const std::uint64_t hash = key.Hash();
    built.emplace(hash, BuildEntry{std::move(key), &t});
  }
  result.Reserve(probe.size());
  for (const Tuple& t : probe.tuples()) {
    const Tuple k = t.Project(probe_key);
    const auto [begin, end] = built.equal_range(k.Hash());
    for (auto it = begin; it != end; ++it) {
      if (k == it->second.key) {
        // emit() takes (t1, t2) in operand order regardless of which side
        // we built on.
        if (build_r1) {
          emit(*it->second.tuple, t);
        } else {
          emit(t, *it->second.tuple);
        }
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Assignment
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> AssignSchema(const ExtendedSchemaPtr& schema,
                                       const std::string& target) {
  const Attribute* attr = schema->FindAttribute(target);
  if (attr == nullptr) {
    return Status::InvalidArgument("assign: attribute '", target,
                                   "' is not in schema '", schema->name(),
                                   "'");
  }
  if (!attr->is_virtual()) {
    return Status::InvalidArgument(
        "assign: attribute '", target,
        "' is already real (realization is one-way)");
  }
  std::vector<Attribute> attributes = schema->attributes();
  for (Attribute& a : attributes) {
    if (a.name == target) a.kind = AttributeKind::kReal;
  }
  return ExtendedSchema::Create(
      "assign(" + schema->name() + ")", attributes,
      FilterBindingPatterns(attributes, schema->binding_patterns()));
}

namespace {

/// Shared tuple-rebuilding logic for both assignment flavors: `make_value`
/// produces the realized value for each source tuple.
template <typename MakeValue>
Result<XRelation> AssignImpl(const XRelation& r, const std::string& target,
                             MakeValue make_value) {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema,
                          AssignSchema(r.schema_ptr(), target));
  const DataType declared = schema->FindAttribute(target)->type;
  // For each real output attribute: source coordinate in the input tuple,
  // or npos for the realized attribute.
  constexpr std::size_t kNew = static_cast<std::size_t>(-1);
  std::vector<std::size_t> plan;
  for (const Attribute& attr : schema->attributes()) {
    if (!attr.is_real()) continue;
    if (attr.name == target) {
      plan.push_back(kNew);
    } else {
      plan.push_back(*r.schema().CoordinateOf(attr.name));
    }
  }
  XRelation result(std::move(schema));
  result.Reserve(r.size());
  for (const Tuple& u : r.tuples()) {
    SERENA_ASSIGN_OR_RETURN(Value realized, make_value(u));
    if (!realized.ConformsTo(declared)) {
      return Status::TypeMismatch("assign: value ", realized.ToString(),
                                  " does not conform to '", target,
                                  "' of type ", DataTypeToString(declared));
    }
    std::vector<Value> values;
    values.reserve(plan.size());
    for (std::size_t coord : plan) {
      values.push_back(coord == kNew ? realized.CoerceTo(declared)
                                     : u[coord]);
    }
    result.InsertUnchecked(Tuple(std::move(values)));
  }
  return result;
}

}  // namespace

Result<XRelation> AssignFromAttribute(const XRelation& r,
                                      const std::string& target,
                                      const std::string& source) {
  const auto coord = r.schema().CoordinateOf(source);
  if (!coord.has_value()) {
    return Status::InvalidArgument(
        "assign: source attribute '", source,
        "' must be a real attribute of schema '", r.schema().name(), "'");
  }
  return AssignImpl(r, target,
                    [&](const Tuple& u) -> Result<Value> { return u[*coord]; });
}

Result<XRelation> AssignConstant(const XRelation& r, const std::string& target,
                                 const Value& constant) {
  return AssignImpl(
      r, target, [&](const Tuple&) -> Result<Value> { return constant; });
}

// ---------------------------------------------------------------------------
// Invocation
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> InvokeSchema(const ExtendedSchemaPtr& schema,
                                       const BindingPattern& bp) {
  // bp ∈ BP(R).
  const BindingPattern* found =
      schema->FindBindingPattern(bp.prototype().name(),
                                 bp.service_attribute());
  if (found == nullptr) {
    return Status::InvalidArgument(
        "invoke: binding pattern ", bp.ToString(),
        " is not associated with schema '", schema->name(), "'");
  }
  // schema(Input_ψ) ⊆ realSchema(R).
  for (const Attribute& in_attr : bp.prototype().input().attributes()) {
    if (!schema->IsReal(in_attr.name)) {
      return Status::FailedPrecondition(
          "invoke: input attribute '", in_attr.name, "' of prototype '",
          bp.prototype().name(),
          "' must be real before invocation (realize it with assignment "
          "first)");
    }
  }
  std::vector<Attribute> attributes = schema->attributes();
  for (Attribute& attr : attributes) {
    if (bp.prototype().output().Contains(attr.name)) {
      attr.kind = AttributeKind::kReal;
    }
  }
  return ExtendedSchema::Create(
      "invoke(" + schema->name() + ")", attributes,
      FilterBindingPatterns(attributes, schema->binding_patterns()));
}

Result<XRelation> Invoke(const XRelation& r, const BindingPattern& bp,
                         ServiceRegistry* registry,
                         const InvokeOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("invoke: null service registry");
  }
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema,
                          InvokeSchema(r.schema_ptr(), bp));
  const Prototype& proto = bp.prototype();

  // Input projection: coordinates of Input_ψ attributes in prototype
  // declaration order, plus target input types for coercion.
  std::vector<std::size_t> input_coords;
  std::vector<DataType> input_types;
  for (const Attribute& in_attr : proto.input().attributes()) {
    input_coords.push_back(*r.schema().CoordinateOf(in_attr.name));
    input_types.push_back(in_attr.type);
  }
  const std::size_t service_coord =
      *r.schema().CoordinateOf(bp.service_attribute());

  // Output construction plan: for each real output attribute, fetch from
  // the input tuple or from the invocation output.
  constexpr std::size_t kFromOutput = static_cast<std::size_t>(-1);
  struct Slot {
    std::size_t input_coord;   // kFromOutput if served by the invocation.
    std::size_t output_index;  // index into Output_ψ when kFromOutput.
  };
  std::vector<Slot> plan;
  for (const Attribute& attr : schema->attributes()) {
    if (!attr.is_real()) continue;
    const auto out_index = proto.output().IndexOf(attr.name);
    if (out_index.has_value()) {
      plan.push_back({kFromOutput, *out_index});
    } else {
      plan.push_back({*r.schema().CoordinateOf(attr.name), 0});
    }
  }

  // Phase 1 (serial): build one invocation request per input tuple.
  // Malformed service references are schema-level errors, reported before
  // any service is called (and regardless of the error policy).
  std::vector<InvocationRequest> requests;
  requests.reserve(r.size());
  for (const Tuple& u : r.tuples()) {
    const Value& service_value = u[service_coord];
    if (!service_value.is_string()) {
      return Status::TypeMismatch("invoke: service reference ",
                                  service_value.ToString(),
                                  " is not a string value");
    }
    // Build the invocation input, coercing ints feeding REAL parameters.
    std::vector<Value> input_values;
    input_values.reserve(input_coords.size());
    for (std::size_t i = 0; i < input_coords.size(); ++i) {
      input_values.push_back(u[input_coords[i]].CoerceTo(input_types[i]));
    }
    requests.push_back(InvocationRequest{service_value.string_value(),
                                         Tuple(std::move(input_values))});
  }

  // Phase 2 (parallel): deduplicated, concurrent physical calls. Under
  // kFail the first failure cancels not-yet-started calls — their results
  // are discarded below anyway.
  std::vector<Result<TupleRows>> invocations = registry->InvokeMany(
      proto, requests, options.instant, options.pool,
      /*cancel_on_error=*/options.error_policy ==
          InvocationErrorPolicy::kFail);

  // Phase 3 (serial): splice results in input-tuple order so the output
  // relation, `failed_tuples`, and action emission are deterministic and
  // identical to the serial loop.
  XRelation result(std::move(schema));
  result.Reserve(r.size());
  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const Tuple& u = r.tuples()[idx];
    const Result<TupleRows>& outputs = invocations[idx];
    if (!outputs.ok()) {
      if (options.error_policy == InvocationErrorPolicy::kSkipTuple) {
        if (options.failed_tuples != nullptr) {
          options.failed_tuples->push_back(u);
        }
        continue;
      }
      // Prefer a genuine failure over a "cancelled" marker: the marker
      // only says some *other* request failed first.
      if (ServiceRegistry::IsCancelled(outputs.status())) {
        for (std::size_t j = idx + 1; j < invocations.size(); ++j) {
          if (!invocations[j].ok() &&
              !ServiceRegistry::IsCancelled(invocations[j].status())) {
            return invocations[j].status();
          }
        }
      }
      return outputs.status();
    }

    if (proto.active() &&
        (options.actions != nullptr || options.action_sink)) {
      Action action{proto.name(), bp.service_attribute(),
                    requests[idx].service_ref, requests[idx].input};
      if (options.action_sink) options.action_sink(action);
      if (options.actions != nullptr) {
        options.actions->Add(std::move(action));
      }
    }

    for (const Tuple& out : **outputs) {
      std::vector<Value> values;
      values.reserve(plan.size());
      for (const Slot& slot : plan) {
        values.push_back(slot.input_coord == kFromOutput
                             ? out[slot.output_index]
                             : u[slot.input_coord]);
      }
      result.InsertUnchecked(Tuple(std::move(values)));
    }
  }
  return result;
}

}  // namespace serena
