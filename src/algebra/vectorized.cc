#include "algebra/vectorized.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/plan.h"
#include "algebra/tuple_batch.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace serena {
namespace vec {

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

namespace {

// -1 = no override; 0 = forced off; 1 = forced on.
std::atomic<int> g_enabled_override{-1};
// 0 = no override.
std::atomic<std::size_t> g_batch_size_override{0};

bool EnabledFromEnv() {
  const char* env = std::getenv("SERENA_VECTORIZE");
  if (env == nullptr) return true;
  const std::string value = ToLower(env);
  return !(value == "off" || value == "0" || value == "false" ||
           value == "no");
}

std::size_t BatchSizeFromEnv() {
  constexpr std::size_t kDefault = 1024;
  const char* env = std::getenv("SERENA_BATCH_SIZE");
  if (env == nullptr) return kDefault;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return kDefault;
  return parsed < 1 ? 1 : static_cast<std::size_t>(parsed);
}

}  // namespace

bool Enabled() {
  const int override = g_enabled_override.load(std::memory_order_relaxed);
  if (override >= 0) return override == 1;
  static const bool from_env = EnabledFromEnv();
  return from_env;
}

std::size_t BatchSize() {
  const std::size_t override =
      g_batch_size_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  static const std::size_t from_env = BatchSizeFromEnv();
  return from_env;
}

void SetEnabledForTesting(std::optional<bool> enabled) {
  g_enabled_override.store(enabled.has_value() ? (*enabled ? 1 : 0) : -1,
                           std::memory_order_relaxed);
}

void SetBatchSizeForTesting(std::optional<std::size_t> batch_size) {
  g_batch_size_override.store(
      batch_size.has_value() && *batch_size > 0 ? *batch_size : 0,
      std::memory_order_relaxed);
}

bool IsFusedRoot(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kRename:
    case PlanKind::kAssign:
    case PlanKind::kJoin:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Pipeline metrics
// ---------------------------------------------------------------------------

namespace {

struct VecInstruments {
  obs::Counter* pipelines;
  obs::Counter* fused_ops;
  obs::Counter* batches;
  obs::Counter* rows;
};

const VecInstruments& VectorizeInstruments() {
  static const VecInstruments* instruments = [] {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    return new VecInstruments{
        &metrics.GetCounter("serena.vectorize.pipelines"),
        &metrics.GetCounter("serena.vectorize.fused_ops"),
        &metrics.GetCounter("serena.vectorize.batches"),
        &metrics.GetCounter("serena.vectorize.rows")};
  }();
  return *instruments;
}

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

/// One stage of a fused pipeline. `Next` yields the stage's output one
/// TupleBatch at a time (nullptr = exhausted; a non-null batch is never
/// empty — stages loop internally over empty fills). A batch stays valid
/// until the producing cursor's next `Next` call.
///
/// Every cursor emits exactly the tuple sequence the scalar operator
/// would materialize (docs/VECTORIZATION.md: the per-cursor dedup
/// invariant — Window and Project deduplicate eagerly; σ/ρ/α/⋈ preserve
/// distinctness), so interior row counts match the scalar path and the
/// terminal collect's dedup is belt-and-braces.
class Cursor {
 public:
  Cursor(const PlanNode* node, ExtendedSchemaPtr schema, bool native)
      : node(node), schema(std::move(schema)), native(native) {}
  virtual ~Cursor() = default;

  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  Result<const TupleBatch*> Next(EvalContext& ctx) {
    started = true;
    Result<const TupleBatch*> batch = NextImpl(ctx);
    if (!batch.ok()) {
      failed = true;
    } else if (*batch != nullptr) {
      rows_out += (*batch)->size();
      ++batches_out;
    }
    return batch;
  }

  /// Full-output shortcut for consumers that need the whole relation at
  /// once (the join build/probe sides). A nullptr *value* means the stage
  /// has no materialized form — the consumer then drains `Next` instead.
  Result<const XRelation*> Materialize(EvalContext& ctx) {
    Result<const XRelation*> relation = MaterializeImpl(ctx);
    if (!relation.ok()) {
      started = true;
      failed = true;
    } else if (*relation != nullptr) {
      started = true;
      rows_out += (*relation)->size();
    }
    return relation;
  }

  const PlanNode* node;
  ExtendedSchemaPtr schema;
  /// True when this cursor *is* a fused plan node (the pipeline flushes
  /// its stats); false for opaque stages, whose own `Evaluate` wrapper
  /// already accounted for them.
  bool native;
  bool started = false;
  bool failed = false;
  std::uint64_t rows_out = 0;
  std::uint64_t batches_out = 0;

 protected:
  virtual Result<const TupleBatch*> NextImpl(EvalContext& ctx) = 0;
  virtual Result<const XRelation*> MaterializeImpl(EvalContext& /*ctx*/) {
    return {nullptr};
  }
};

/// Drains `cursor` into a fresh relation (used where a consumer needs a
/// stable, indexed whole — the join sides without a materialized form).
Result<XRelation> CollectToRelation(Cursor* cursor, EvalContext& ctx) {
  XRelation out(cursor->schema);
  for (;;) {
    SERENA_ASSIGN_OR_RETURN(const TupleBatch* batch, cursor->Next(ctx));
    if (batch == nullptr) break;
    out.Reserve(out.size() + batch->size());
    for (std::size_t i = 0; i < batch->size(); ++i) {
      // Rows that flowed from a stream entry carry its append-time hash;
      // inserting with it skips the only remaining per-row hash.
      if (const std::uint64_t hash = batch->hash_at(i); hash != 0) {
        out.InsertHashed(batch->at(i), hash);
      } else {
        out.InsertUnchecked(batch->at(i));
      }
    }
  }
  return out;
}

/// Source: serves an environment relation in borrowed batches. The
/// environment is stable for the duration of a query step, so no copy is
/// made until the pipeline's terminal collect.
class ScanCursor final : public Cursor {
 public:
  ScanCursor(const PlanNode* node, const XRelation* relation,
             TupleBatch* out, std::size_t batch_size)
      : Cursor(node, relation->schema_ptr(), /*native=*/true),
        relation_(relation),
        out_(out),
        batch_size_(batch_size) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& /*ctx*/) override {
    const std::vector<Tuple>& tuples = relation_->tuples();
    if (pos_ >= tuples.size()) return {nullptr};
    out_->Clear();
    const std::size_t n = std::min(batch_size_, tuples.size() - pos_);
    for (std::size_t i = 0; i < n; ++i) {
      out_->AppendRef(&tuples[pos_ + i]);
    }
    pos_ += n;
    return {out_};
  }

  Result<const XRelation*> MaterializeImpl(EvalContext& /*ctx*/) override {
    return {relation_};
  }

 private:
  const XRelation* relation_;
  TupleBatch* out_;
  std::size_t batch_size_;
  std::size_t pos_ = 0;
};

/// Source: the deduplicated window slice of a stream, as borrowed
/// pointers into the stream's entry deque (stable until the executor's
/// post-step pruning). Deduplicating here is what makes every downstream
/// cursor see exactly the scalar window's X-Relation sequence. Each ref
/// carries the entry's append-time content hash, so neither this dedup
/// nor the terminal collect re-hashes a stream tuple.
class WindowCursor final : public Cursor {
 public:
  WindowCursor(const PlanNode* node, ExtendedSchemaPtr schema,
               std::vector<HashedTupleRef> kept, TupleBatch* out,
               std::size_t batch_size)
      : Cursor(node, std::move(schema), /*native=*/true),
        kept_(std::move(kept)),
        out_(out),
        batch_size_(batch_size) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& /*ctx*/) override {
    if (pos_ >= kept_.size()) return {nullptr};
    out_->Clear();
    const std::size_t n = std::min(batch_size_, kept_.size() - pos_);
    for (std::size_t i = 0; i < n; ++i) {
      const HashedTupleRef& ref = kept_[pos_ + i];
      out_->AppendRef(ref.tuple, ref.hash);
    }
    pos_ += n;
    return {out_};
  }

 private:
  std::vector<HashedTupleRef> kept_;
  TupleBatch* out_;
  std::size_t batch_size_;
  std::size_t pos_ = 0;
};

/// Any non-fusable stage (set ops, β, γ, S, …): evaluated once through
/// the normal `Evaluate` wrapper — which records its stats and may itself
/// vectorize subtrees below it — then served in borrowed batches.
class OpaqueCursor final : public Cursor {
 public:
  OpaqueCursor(const PlanNode* node, ExtendedSchemaPtr schema,
               TupleBatch* out, std::size_t batch_size)
      : Cursor(node, std::move(schema), /*native=*/false),
        out_(out),
        batch_size_(batch_size) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& ctx) override {
    SERENA_RETURN_NOT_OK(EvaluateOnce(ctx));
    const std::vector<Tuple>& tuples = evaluated_->tuples();
    if (pos_ >= tuples.size()) return {nullptr};
    out_->Clear();
    const std::size_t n = std::min(batch_size_, tuples.size() - pos_);
    for (std::size_t i = 0; i < n; ++i) {
      out_->AppendRef(&tuples[pos_ + i]);
    }
    pos_ += n;
    return {out_};
  }

  Result<const XRelation*> MaterializeImpl(EvalContext& ctx) override {
    SERENA_RETURN_NOT_OK(EvaluateOnce(ctx));
    return {&*evaluated_};
  }

 private:
  Status EvaluateOnce(EvalContext& ctx) {
    if (evaluated_.has_value()) return Status::OK();
    SERENA_ASSIGN_OR_RETURN(XRelation relation, node->Evaluate(ctx));
    evaluated_ = std::move(relation);
    return Status::OK();
  }

  TupleBatch* out_;
  std::size_t batch_size_;
  std::optional<XRelation> evaluated_;
  std::size_t pos_ = 0;
};

/// σ_F: evaluates the formula per row and forwards survivors as a
/// selection vector (borrowed pointers) — no copies, no materialization.
/// The formula is compiled once at pipeline-build time (coordinates
/// resolved, constants captured), so the per-row cost is one comparison
/// on value references — the amortization that makes batching pay.
///
/// Formulas that are pure conjunctions of comparisons — the common shape
/// after the merge-selections rewrite folds a σ-chain into one σ — take
/// a further fast path: the conjuncts are flattened into a vector and
/// evaluated in a tight loop of direct calls, with none of the nested
/// `std::function` dispatch the general compiled tree pays per tuple.
class FilterCursor final : public Cursor {
 public:
  FilterCursor(const PlanNode* node, ExtendedSchemaPtr schema, Cursor* child,
               std::vector<CompiledComparison> conjuncts,
               TuplePredicate predicate, TupleBatch* out)
      : Cursor(node, std::move(schema), /*native=*/true),
        child_(child),
        conjuncts_(std::move(conjuncts)),
        predicate_(std::move(predicate)),
        out_(out) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& ctx) override {
    // One child batch per fill: survivor pointers borrow the child
    // batch's storage, which the child reuses on its next Next().
    for (;;) {
      SERENA_ASSIGN_OR_RETURN(const TupleBatch* in, child_->Next(ctx));
      if (in == nullptr) return {nullptr};
      out_->Clear();
      for (std::size_t i = 0; i < in->size(); ++i) {
        const Tuple& t = in->at(i);
        bool keep = true;
        if (!conjuncts_.empty()) {
          for (const CompiledComparison& conjunct : conjuncts_) {
            SERENA_ASSIGN_OR_RETURN(bool value, conjunct.Eval(t));
            if (!value) {
              keep = false;
              break;
            }
          }
        } else {
          SERENA_ASSIGN_OR_RETURN(keep, predicate_(t));
        }
        if (keep) out_->AppendRef(&t, in->hash_at(i));
      }
      if (!out_->empty()) return {out_};
    }
  }

 private:
  Cursor* child_;
  // Flattened-conjunction fast path; when empty, predicate_ decides.
  std::vector<CompiledComparison> conjuncts_;
  TuplePredicate predicate_;
  TupleBatch* out_;
};

/// π_Y: projects each row and deduplicates the output stream (projection
/// can collapse distinct inputs), emitting first occurrences in input
/// order — exactly the scalar operator's insertion sequence. The batch
/// borrows the dedup table's stored tuples, so each output row is
/// materialized once.
class ProjectCursor final : public Cursor {
 public:
  ProjectCursor(const PlanNode* node, ExtendedSchemaPtr schema, Cursor* child,
                std::vector<std::size_t> coords, TupleBatch* out)
      : Cursor(node, std::move(schema), /*native=*/true),
        child_(child),
        coords_(std::move(coords)),
        out_(out) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& ctx) override {
    for (;;) {
      SERENA_ASSIGN_OR_RETURN(const TupleBatch* in, child_->Next(ctx));
      if (in == nullptr) return {nullptr};
      out_->Clear();
      for (std::size_t i = 0; i < in->size(); ++i) {
        Tuple projected = in->at(i).Project(coords_);
        const std::uint64_t hash = projected.Hash();
        const auto [begin, end] = seen_.equal_range(hash);
        bool duplicate = false;
        for (auto it = begin; it != end && !duplicate; ++it) {
          duplicate = it->second == projected;
        }
        if (duplicate) continue;
        const auto it = seen_.emplace(hash, std::move(projected));
        out_->AppendRef(&it->second);
      }
      if (!out_->empty()) return {out_};
    }
  }

 private:
  Cursor* child_;
  std::vector<std::size_t> coords_;
  TupleBatch* out_;
  // Unordered-container references are stable, so batches may borrow.
  std::unordered_multimap<std::uint64_t, Tuple> seen_;
};

/// ρ_{A→B}: tuples are untouched — forwards the child's batches under the
/// renamed schema.
class RenameCursor final : public Cursor {
 public:
  RenameCursor(const PlanNode* node, ExtendedSchemaPtr schema, Cursor* child)
      : Cursor(node, std::move(schema), /*native=*/true), child_(child) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& ctx) override {
    return child_->Next(ctx);
  }

 private:
  Cursor* child_;
};

/// α_{A:=B} / α_{A:=a}: realizes the target attribute per row into owned
/// batches. Mirrors the scalar AssignImpl row construction (and its
/// TypeMismatch diagnostic) exactly.
class AssignCursor final : public Cursor {
 public:
  static constexpr std::size_t kNew = static_cast<std::size_t>(-1);

  AssignCursor(const PlanNode* node, ExtendedSchemaPtr schema, Cursor* child,
               std::string target, DataType declared,
               std::vector<std::size_t> plan,
               std::optional<std::size_t> source_coord,
               std::optional<Value> constant, TupleBatch* out)
      : Cursor(node, std::move(schema), /*native=*/true),
        child_(child),
        target_(std::move(target)),
        declared_(declared),
        plan_(std::move(plan)),
        source_coord_(source_coord),
        constant_(std::move(constant)),
        out_(out) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& ctx) override {
    SERENA_ASSIGN_OR_RETURN(const TupleBatch* in, child_->Next(ctx));
    if (in == nullptr) return {nullptr};
    out_->Clear();
    out_->ReserveOwned(in->size());
    for (std::size_t i = 0; i < in->size(); ++i) {
      const Tuple& u = in->at(i);
      const Value realized =
          source_coord_.has_value() ? u[*source_coord_] : *constant_;
      if (!realized.ConformsTo(declared_)) {
        return Status::TypeMismatch("assign: value ", realized.ToString(),
                                    " does not conform to '", target_,
                                    "' of type ",
                                    DataTypeToString(declared_));
      }
      std::vector<Value> values;
      values.reserve(plan_.size());
      for (std::size_t coord : plan_) {
        values.push_back(coord == kNew ? realized.CoerceTo(declared_)
                                       : u[coord]);
      }
      out_->AppendOwned(Tuple(std::move(values)));
    }
    // α emits one row per input row, so a non-null fill is never empty.
    return {out_};
  }

 private:
  Cursor* child_;
  std::string target_;
  DataType declared_;
  std::vector<std::size_t> plan_;
  std::optional<std::size_t> source_coord_;
  std::optional<Value> constant_;
  TupleBatch* out_;
};

/// ⋈: materializes both sides on first pull (operand order, like the
/// scalar node), builds the hash table once on the smaller side, then
/// probes batch-by-batch. Build/probe roles, hash-table construction and
/// probe order replicate the scalar NaturalJoin, so emission order — and
/// therefore the output relation — is identical.
class JoinCursor final : public Cursor {
 public:
  JoinCursor(const PlanNode* node, JoinSpec spec, Cursor* left, Cursor* right,
             TupleBatch* out, std::size_t batch_size)
      : Cursor(node, spec.schema, /*native=*/true),
        spec_(std::move(spec)),
        left_(left),
        right_(right),
        out_(out),
        batch_size_(batch_size) {}

 protected:
  Result<const TupleBatch*> NextImpl(EvalContext& ctx) override {
    if (!prepared_) {
      SERENA_RETURN_NOT_OK(Prepare(ctx));
      prepared_ = true;
    }
    out_->Clear();
    if (spec_.key1.empty()) return Cartesian();
    return Probe();
  }

 private:
  struct BuildEntry {
    Tuple key;
    const Tuple* tuple;
  };

  Status Prepare(EvalContext& ctx) {
    SERENA_ASSIGN_OR_RETURN(const XRelation* left_rel,
                            MaterializeSide(left_, &left_store_, ctx));
    SERENA_ASSIGN_OR_RETURN(const XRelation* right_rel,
                            MaterializeSide(right_, &right_store_, ctx));
    left_rel_ = left_rel;
    right_rel_ = right_rel;
    if (spec_.key1.empty()) return Status::OK();

    const bool build_r1 = left_rel_->size() < right_rel_->size();
    build_r1_ = build_r1;
    const XRelation& build = build_r1 ? *left_rel_ : *right_rel_;
    probe_ = build_r1 ? right_rel_ : left_rel_;
    probe_key_ = build_r1 ? &spec_.key2 : &spec_.key1;
    const std::vector<std::size_t>& build_key =
        build_r1 ? spec_.key1 : spec_.key2;
    built_.reserve(build.size());
    for (const Tuple& t : build.tuples()) {
      Tuple key = t.Project(build_key);
      const std::uint64_t hash = key.Hash();
      built_.emplace(hash, BuildEntry{std::move(key), &t});
    }
    out_->ReserveOwned(batch_size_);
    return Status::OK();
  }

  static Result<const XRelation*> MaterializeSide(
      Cursor* side, std::optional<XRelation>* store, EvalContext& ctx) {
    SERENA_ASSIGN_OR_RETURN(const XRelation* relation,
                            side->Materialize(ctx));
    if (relation != nullptr) return {relation};
    SERENA_ASSIGN_OR_RETURN(XRelation collected,
                            CollectToRelation(side, ctx));
    *store = std::move(collected);
    return {&**store};
  }

  Result<const TupleBatch*> Cartesian() {
    const std::vector<Tuple>& r1 = left_rel_->tuples();
    const std::vector<Tuple>& r2 = right_rel_->tuples();
    while (i1_ < r1.size()) {
      if (i2_ == r2.size()) {
        i2_ = 0;
        ++i1_;
        continue;
      }
      if (out_->size() >= batch_size_) return {out_};
      out_->AppendOwned(spec_.Merge(r1[i1_], r2[i2_]));
      ++i2_;
    }
    if (out_->empty()) return {nullptr};
    return {out_};
  }

  Result<const TupleBatch*> Probe() {
    const std::vector<Tuple>& tuples = probe_->tuples();
    if (built_.empty()) probe_idx_ = tuples.size();
    while (probe_idx_ < tuples.size() && out_->size() < batch_size_) {
      // Finish every match of one probe row before checking the size cap,
      // so resuming only needs the probe index (batches may overshoot).
      const Tuple& t = tuples[probe_idx_++];
      const Tuple k = t.Project(*probe_key_);
      const auto [begin, end] = built_.equal_range(k.Hash());
      for (auto it = begin; it != end; ++it) {
        if (k == it->second.key) {
          out_->AppendOwned(build_r1_ ? spec_.Merge(*it->second.tuple, t)
                                      : spec_.Merge(t, *it->second.tuple));
        }
      }
    }
    if (out_->empty()) return {nullptr};
    return {out_};
  }

  JoinSpec spec_;
  Cursor* left_;
  Cursor* right_;
  TupleBatch* out_;
  std::size_t batch_size_;

  bool prepared_ = false;
  std::optional<XRelation> left_store_;
  std::optional<XRelation> right_store_;
  const XRelation* left_rel_ = nullptr;
  const XRelation* right_rel_ = nullptr;

  bool build_r1_ = false;
  std::unordered_multimap<std::uint64_t, BuildEntry> built_;
  const XRelation* probe_ = nullptr;
  const std::vector<std::size_t>* probe_key_ = nullptr;
  std::size_t probe_idx_ = 0;

  std::size_t i1_ = 0;
  std::size_t i2_ = 0;
};

// ---------------------------------------------------------------------------
// Pipeline construction
// ---------------------------------------------------------------------------

struct Pipeline {
  std::vector<std::unique_ptr<Cursor>> cursors;
  Cursor* root = nullptr;
  BatchPool* pool = nullptr;
  std::size_t batch_size = 0;
};

template <typename CursorT, typename... Args>
CursorT* AddCursor(Pipeline* pipeline, Args&&... args) {
  pipeline->cursors.push_back(
      std::make_unique<CursorT>(std::forward<Args>(args)...));
  return static_cast<CursorT*>(pipeline->cursors.back().get());
}

/// Builds the cursor for `node` (recursively for fusable subtrees).
/// Returns nullptr when the pipeline cannot be built — any schema or
/// lookup failure — in which case the whole TryExecute falls back to the
/// scalar path, which reproduces the exact scalar diagnostics. Building
/// performs no evaluation (the one eager step, the window slice read, is
/// side-effect free), so a fallback re-runs from a clean slate.
Cursor* BuildCursor(const PlanNode& node, EvalContext& ctx,
                    Pipeline* pipeline) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      if (ctx.env == nullptr) return nullptr;
      const auto& scan = static_cast<const ScanNode&>(node);
      Result<const XRelation*> relation =
          ctx.env->GetRelation(scan.relation());
      if (!relation.ok()) return nullptr;
      return AddCursor<ScanCursor>(pipeline, &node, *relation,
                                   pipeline->pool->Acquire(),
                                   pipeline->batch_size);
    }
    case PlanKind::kWindow: {
      if (ctx.streams == nullptr) return nullptr;
      const auto& window = static_cast<const WindowNode&>(node);
      Result<XDRelation*> stream = ctx.streams->GetStream(window.stream());
      if (!stream.ok()) return nullptr;
      std::vector<HashedTupleRef> slice;
      if (window.mode() == WindowMode::kTime) {
        (*stream)->CollectInsertedDuring(ctx.instant - window.period(),
                                         ctx.instant, &slice);
      } else {
        (*stream)->CollectLastInserted(
            static_cast<std::size_t>(window.period()), ctx.instant, &slice);
      }
      // Set semantics: keep the first occurrence of each tuple, exactly
      // like the scalar window's insertions into its X-Relation. The
      // entries carry their append-time hashes, so no tuple is hashed
      // here; contents are only compared on a probe collision. Dedup
      // runs on an open-addressing table (linear probing, power-of-two
      // capacity at ≤50% load) instead of a node-based map: this loop
      // touches every window row of every registered query each tick,
      // and per-row node allocations would dominate the fused pipeline.
      std::vector<HashedTupleRef> kept;
      kept.reserve(slice.size());
      std::size_t capacity = 16;
      while (capacity < slice.size() * 2) capacity <<= 1;
      std::vector<const Tuple*> slots(capacity, nullptr);
      std::vector<std::uint64_t> slot_hashes(capacity, 0);
      for (const HashedTupleRef& ref : slice) {
        std::size_t slot = ref.hash & (capacity - 1);
        bool duplicate = false;
        while (slots[slot] != nullptr) {
          if (slot_hashes[slot] == ref.hash && *slots[slot] == *ref.tuple) {
            duplicate = true;
            break;
          }
          slot = (slot + 1) & (capacity - 1);
        }
        if (duplicate) continue;
        slots[slot] = ref.tuple;
        slot_hashes[slot] = ref.hash;
        kept.push_back(ref);
      }
      return AddCursor<WindowCursor>(pipeline, &node, (*stream)->schema_ptr(),
                                     std::move(kept),
                                     pipeline->pool->Acquire(),
                                     pipeline->batch_size);
    }
    case PlanKind::kSelect: {
      const auto& select = static_cast<const SelectNode&>(node);
      Cursor* child = BuildCursor(*select.child(), ctx, pipeline);
      if (child == nullptr) return nullptr;
      Result<ExtendedSchemaPtr> schema =
          SelectSchema(child->schema, select.formula());
      if (!schema.ok()) return nullptr;
      // Pure conjunctions of comparisons flatten into a direct-call loop;
      // anything else compiles to the general predicate tree. Compile
      // failures (unbound parameter, unresolvable attribute) are exactly
      // the per-tuple errors of the interpreted path — falling back to
      // scalar evaluation reproduces its diagnostics.
      std::vector<CompiledComparison> conjuncts;
      TuplePredicate predicate;
      if (!select.formula()->FlattenConjunction(*child->schema, &conjuncts)) {
        conjuncts.clear();
        Result<TuplePredicate> compiled =
            select.formula()->Compile(*child->schema);
        if (!compiled.ok()) return nullptr;
        predicate = std::move(*compiled);
      }
      return AddCursor<FilterCursor>(pipeline, &node, std::move(*schema),
                                     child, std::move(conjuncts),
                                     std::move(predicate),
                                     pipeline->pool->Acquire());
    }
    case PlanKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      Cursor* child = BuildCursor(*project.child(), ctx, pipeline);
      if (child == nullptr) return nullptr;
      Result<ExtendedSchemaPtr> schema =
          ProjectSchema(child->schema, project.attributes());
      if (!schema.ok()) return nullptr;
      std::vector<std::size_t> coords;
      for (const Attribute& attr : (*schema)->attributes()) {
        if (attr.is_real()) {
          coords.push_back(*child->schema->CoordinateOf(attr.name));
        }
      }
      return AddCursor<ProjectCursor>(pipeline, &node, std::move(*schema),
                                      child, std::move(coords),
                                      pipeline->pool->Acquire());
    }
    case PlanKind::kRename: {
      const auto& rename = static_cast<const RenameNode&>(node);
      Cursor* child = BuildCursor(*rename.child(), ctx, pipeline);
      if (child == nullptr) return nullptr;
      Result<ExtendedSchemaPtr> schema =
          RenameSchema(child->schema, rename.from(), rename.to());
      if (!schema.ok()) return nullptr;
      return AddCursor<RenameCursor>(pipeline, &node, std::move(*schema),
                                     child);
    }
    case PlanKind::kAssign: {
      const auto& assign = static_cast<const AssignNode&>(node);
      // Unbound parameters fail at runtime on the scalar path; let it.
      if (assign.from_parameter()) return nullptr;
      Cursor* child = BuildCursor(*assign.child(), ctx, pipeline);
      if (child == nullptr) return nullptr;
      std::optional<std::size_t> source_coord;
      std::optional<Value> constant;
      if (assign.from_attribute()) {
        source_coord = child->schema->CoordinateOf(assign.source_attribute());
        if (!source_coord.has_value()) return nullptr;
      } else {
        constant = assign.constant();
      }
      Result<ExtendedSchemaPtr> schema =
          AssignSchema(child->schema, assign.target());
      if (!schema.ok()) return nullptr;
      const DataType declared =
          (*schema)->FindAttribute(assign.target())->type;
      std::vector<std::size_t> plan;
      for (const Attribute& attr : (*schema)->attributes()) {
        if (!attr.is_real()) continue;
        if (attr.name == assign.target()) {
          plan.push_back(AssignCursor::kNew);
        } else {
          plan.push_back(*child->schema->CoordinateOf(attr.name));
        }
      }
      return AddCursor<AssignCursor>(
          pipeline, &node, std::move(*schema), child, assign.target(),
          declared, std::move(plan), source_coord, std::move(constant),
          pipeline->pool->Acquire());
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      Cursor* left = BuildCursor(*join.left(), ctx, pipeline);
      if (left == nullptr) return nullptr;
      Cursor* right = BuildCursor(*join.right(), ctx, pipeline);
      if (right == nullptr) return nullptr;
      Result<JoinSpec> spec = JoinSpec::Resolve(left->schema, right->schema);
      if (!spec.ok()) return nullptr;
      return AddCursor<JoinCursor>(pipeline, &node, std::move(*spec), left,
                                   right, pipeline->pool->Acquire(),
                                   pipeline->batch_size);
    }
    default: {
      // Opaque stage: needs its schema up front (parents resolve theirs
      // at build time); InferSchema derives exactly the schema the
      // runtime evaluation will produce.
      if (ctx.env == nullptr) return nullptr;
      Result<ExtendedSchemaPtr> schema =
          node.InferSchema(*ctx.env, ctx.streams);
      if (!schema.ok()) return nullptr;
      return AddCursor<OpaqueCursor>(pipeline, &node, std::move(*schema),
                                     pipeline->pool->Acquire(),
                                     pipeline->batch_size);
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline execution
// ---------------------------------------------------------------------------

Result<XRelation> RunPipeline(Pipeline& pipeline, EvalContext& ctx) {
  XRelation out(pipeline.root->schema);
  for (;;) {
    SERENA_ASSIGN_OR_RETURN(const TupleBatch* batch,
                            pipeline.root->Next(ctx));
    if (batch == nullptr) break;
    out.Reserve(out.size() + batch->size());
    for (std::size_t i = 0; i < batch->size(); ++i) {
      // Rows that flowed from a stream entry carry its append-time hash;
      // inserting with it skips the only remaining per-row hash.
      if (const std::uint64_t hash = batch->hash_at(i); hash != 0) {
        out.InsertHashed(batch->at(i), hash);
      } else {
        out.InsertUnchecked(batch->at(i));
      }
    }
  }
  return out;
}

/// Flushes the fused interior's statistics so EXPLAIN ANALYZE and the
/// per-operator metrics match the scalar path: each started native stage
/// counts one eval, its emitted rows, and the pipeline's (inclusive) wall
/// time. The root's eval/rows/wall/error are recorded by its `Evaluate`
/// wrapper — only its batch count comes from here. Stages never started
/// (the right join side after a left failure) stay unrecorded, exactly
/// like unevaluated scalar operands.
void FlushStats(const Pipeline& pipeline, const PlanNode& root_node,
                EvalContext& ctx, bool collect, bool meter,
                std::uint64_t elapsed_ns) {
  for (const auto& cursor : pipeline.cursors) {
    if (!cursor->native || !cursor->started) continue;
    if (cursor.get() == pipeline.root) {
      if (collect) {
        ctx.stats->StatsFor(&root_node).batches += cursor->batches_out;
      }
      continue;
    }
    if (collect) {
      NodeRuntimeStats& stats = ctx.stats->StatsFor(cursor->node);
      ++stats.evals;
      stats.rows_out += cursor->rows_out;
      stats.wall_ns += elapsed_ns;
      stats.batches += cursor->batches_out;
      if (cursor->failed) ++stats.errors;
    }
    if (meter) {
      internal::RecordOperatorMetrics(cursor->node->kind(), 1,
                                      cursor->rows_out, elapsed_ns);
    }
  }
  if (meter) {
    std::uint64_t fused = 0;
    for (const auto& cursor : pipeline.cursors) {
      if (cursor->native) ++fused;
    }
    const VecInstruments& instruments = VectorizeInstruments();
    instruments.pipelines->Increment();
    instruments.fused_ops->Increment(fused);
    instruments.batches->Increment(pipeline.root->batches_out);
    instruments.rows->Increment(pipeline.root->rows_out);
  }
}

}  // namespace

std::optional<Result<XRelation>> TryExecute(const PlanNode& node,
                                            EvalContext& ctx) {
  if (!IsFusedRoot(node.kind())) return std::nullopt;

  // The pool outlives the pipeline (cursors hold its batches). Marks let
  // pipelines nest: an opaque stage may run an inner pipeline over the
  // same pool.
  BatchPool local_pool;
  BatchPool* pool =
      ctx.batch_pool != nullptr ? ctx.batch_pool : &local_pool;
  const std::size_t mark = pool->Mark();

  Pipeline pipeline;
  pipeline.pool = pool;
  pipeline.batch_size = BatchSize();
  pipeline.root = BuildCursor(node, ctx, &pipeline);
  if (pipeline.root == nullptr) {
    pool->ReleaseToMark(mark);
    return std::nullopt;
  }

  const bool collect = ctx.stats != nullptr;
  const bool meter = obs::MetricsRegistry::Global().enabled();
  const std::uint64_t start_ns =
      (collect || meter) ? obs::MonotonicNowNs() : 0;

  Result<XRelation> result = RunPipeline(pipeline, ctx);

  if (collect || meter) {
    const std::uint64_t elapsed_ns = obs::MonotonicNowNs() - start_ns;
    FlushStats(pipeline, node, ctx, collect, meter, elapsed_ns);
  }
  pool->ReleaseToMark(mark);
  return result;
}

}  // namespace vec
}  // namespace serena
