#include "algebra/parameters.h"

namespace serena {

namespace {

void Collect(const PlanPtr& plan, std::set<std::string>* out) {
  if (plan == nullptr) return;
  if (plan->kind() == PlanKind::kSelect) {
    static_cast<const SelectNode*>(plan.get())
        ->formula()
        ->CollectParameters(out);
  } else if (plan->kind() == PlanKind::kAssign) {
    const auto* assign = static_cast<const AssignNode*>(plan.get());
    if (assign->from_parameter()) out->insert(assign->parameter());
  }
  for (const PlanPtr& child : plan->children()) Collect(child, out);
}

Result<PlanPtr> Bind(const PlanPtr& plan,
                     const std::map<std::string, Value>& bindings) {
  // Rebind children first.
  std::vector<PlanPtr> children = plan->children();
  bool child_changed = false;
  for (PlanPtr& child : children) {
    SERENA_ASSIGN_OR_RETURN(PlanPtr bound, Bind(child, bindings));
    if (bound != child) child_changed = true;
    child = std::move(bound);
  }

  switch (plan->kind()) {
    case PlanKind::kSelect: {
      const auto* select = static_cast<const SelectNode*>(plan.get());
      std::set<std::string> params;
      select->formula()->CollectParameters(&params);
      if (params.empty() && !child_changed) return plan;
      return Select(children[0],
                    select->formula()->WithBoundParameters(bindings));
    }
    case PlanKind::kAssign: {
      const auto* assign = static_cast<const AssignNode*>(plan.get());
      if (assign->from_parameter()) {
        const auto it = bindings.find(assign->parameter());
        if (it != bindings.end()) {
          return Assign(children[0], assign->target(), it->second);
        }
      }
      if (!child_changed) return plan;
      if (assign->from_parameter()) {
        return AssignParam(children[0], assign->target(),
                           assign->parameter());
      }
      return assign->from_attribute()
                 ? Assign(children[0], assign->target(),
                          assign->source_attribute())
                 : Assign(children[0], assign->target(),
                          assign->constant());
    }
    default:
      break;
  }
  if (!child_changed) return plan;

  // Rebuild other node kinds around the rebound children.
  switch (plan->kind()) {
    case PlanKind::kUnion:
      return UnionOf(children[0], children[1]);
    case PlanKind::kIntersect:
      return IntersectOf(children[0], children[1]);
    case PlanKind::kDifference:
      return DifferenceOf(children[0], children[1]);
    case PlanKind::kJoin:
      return Join(children[0], children[1]);
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      return Project(children[0], node->attributes());
    }
    case PlanKind::kRename: {
      const auto* node = static_cast<const RenameNode*>(plan.get());
      return Rename(children[0], node->from(), node->to());
    }
    case PlanKind::kInvoke: {
      const auto* node = static_cast<const InvokeNode*>(plan.get());
      return Invoke(children[0], node->prototype(),
                    node->service_attribute());
    }
    case PlanKind::kAggregate: {
      const auto* node = static_cast<const AggregateNode*>(plan.get());
      return Aggregate(children[0], node->group_by(), node->aggregates());
    }
    case PlanKind::kStreaming: {
      const auto* node = static_cast<const StreamingNode*>(plan.get());
      return Streaming(children[0], node->type());
    }
    default:
      return Status::Internal("unexpected plan kind while binding");
  }
}

}  // namespace

std::set<std::string> CollectParameters(const PlanPtr& plan) {
  std::set<std::string> params;
  Collect(plan, &params);
  return params;
}

Result<PlanPtr> BindParameters(
    const PlanPtr& plan, const std::map<std::string, Value>& bindings) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  const std::set<std::string> referenced = CollectParameters(plan);
  for (const auto& [name, value] : bindings) {
    if (referenced.count(name) == 0) {
      return Status::InvalidArgument("binding for unknown parameter :",
                                     name);
    }
  }
  for (const std::string& name : referenced) {
    if (bindings.count(name) == 0) {
      return Status::InvalidArgument("missing binding for parameter :",
                                     name);
    }
  }
  return Bind(plan, bindings);
}

}  // namespace serena
