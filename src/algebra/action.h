#ifndef SERENA_ALGEBRA_ACTION_H_
#define SERENA_ALGEBRA_ACTION_H_

#include <set>
#include <string>

#include "types/tuple.h"

namespace serena {

/// An action (Def. 8): a 3-tuple (bp, s, t) — one invocation of an *active*
/// binding pattern bp on the service referenced by s with input tuple t.
///
/// The binding pattern is identified by its prototype name and service
/// reference attribute. Actions capture the environmental impact of a
/// query (e.g. the set of messages a query sends).
struct Action {
  std::string prototype;          ///< prototype_bp's name.
  std::string service_attribute;  ///< service_bp: the reference attribute.
  std::string service_ref;        ///< s: the invoked service's reference.
  Tuple input;                    ///< t: the input tuple over Input_ψ.

  bool operator==(const Action& other) const {
    return prototype == other.prototype &&
           service_attribute == other.service_attribute &&
           service_ref == other.service_ref && input == other.input;
  }
  bool operator<(const Action& other) const {
    if (prototype != other.prototype) return prototype < other.prototype;
    if (service_attribute != other.service_attribute) {
      return service_attribute < other.service_attribute;
    }
    if (service_ref != other.service_ref) {
      return service_ref < other.service_ref;
    }
    return input < other.input;
  }

  /// "(sendMessage[messenger], email, ('nicolas@elysee.fr', 'Bonjour!'))".
  std::string ToString() const;
};

/// The action set Actions_p(q) of a query against an environment (Def. 8):
/// all active-binding-pattern invocations the query triggers. Definition 9
/// makes two queries equivalent only if their results *and* action sets
/// coincide.
class ActionSet {
 public:
  ActionSet() = default;

  void Add(Action action) { actions_.insert(std::move(action)); }

  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  const std::set<Action>& actions() const { return actions_; }

  bool operator==(const ActionSet& other) const {
    return actions_ == other.actions_;
  }
  bool operator!=(const ActionSet& other) const { return !(*this == other); }

  /// "{a1, a2, ...}" in canonical order.
  std::string ToString() const;

 private:
  std::set<Action> actions_;
};

}  // namespace serena

#endif  // SERENA_ALGEBRA_ACTION_H_
