#ifndef SERENA_ALGEBRA_OPERATORS_H_
#define SERENA_ALGEBRA_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "algebra/action.h"
#include "algebra/formula.h"
#include "common/clock.h"
#include "common/result.h"
#include "schema/extended_schema.h"
#include "service/service_registry.h"
#include "xrel/xrelation.h"

namespace serena {

class ThreadPool;

/// The Serena algebra operators of Table 3, as standalone evaluation
/// functions over X-Relations. Each operator also has a schema-only
/// counterpart (`*Schema`) used for static schema inference on query
/// plans; the data functions derive exactly the same output schema.
///
/// All Table 3 rules about binding-pattern propagation are implemented by
/// filtering the candidate patterns through Def. 2 validity on the output
/// schema: a pattern survives iff its service attribute is still a real
/// attribute and its prototype's input/output attributes are still
/// present/virtual respectively.

// ---------------------------------------------------------------------------
// Set operators (§3.1.1). Operands must have identical attribute sequences.
// ---------------------------------------------------------------------------

Result<XRelation> Union(const XRelation& r1, const XRelation& r2);
Result<XRelation> Intersect(const XRelation& r1, const XRelation& r2);
Result<XRelation> Difference(const XRelation& r1, const XRelation& r2);

Result<ExtendedSchemaPtr> SetOpSchema(const ExtendedSchemaPtr& s1,
                                      const ExtendedSchemaPtr& s2,
                                      const char* op_name);

// ---------------------------------------------------------------------------
// Projection π_Y (Table 3 (a)).
// ---------------------------------------------------------------------------

/// Output schema: attributes restricted to Y (preserving schema order);
/// binding patterns that reference dropped attributes are eliminated.
Result<ExtendedSchemaPtr> ProjectSchema(const ExtendedSchemaPtr& schema,
                                        const std::vector<std::string>& y);

/// s = { t[Y ∩ realSchema(R)] | t ∈ r }.
Result<XRelation> Project(const XRelation& r,
                          const std::vector<std::string>& y);

// ---------------------------------------------------------------------------
// Selection σ_F (Table 3 (b)).
// ---------------------------------------------------------------------------

/// Output schema = input schema; F must reference only real attributes.
Result<ExtendedSchemaPtr> SelectSchema(const ExtendedSchemaPtr& schema,
                                       const FormulaPtr& formula);

Result<XRelation> Select(const XRelation& r, const FormulaPtr& formula);

// ---------------------------------------------------------------------------
// Renaming ρ_{A→B} (Table 3 (c)).
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> RenameSchema(const ExtendedSchemaPtr& schema,
                                       const std::string& from,
                                       const std::string& to);

Result<XRelation> Rename(const XRelation& r, const std::string& from,
                         const std::string& to);

// ---------------------------------------------------------------------------
// Natural join ⋈ (Table 3 (d)).
// ---------------------------------------------------------------------------

/// schema(S) = schema(R1) ∪ schema(R2); an attribute is virtual in S only
/// if virtual in every operand containing it (join realizes virtuals met
/// by a real attribute on the other side). Binding patterns: union of both
/// operands' patterns, minus those whose outputs became real.
Result<ExtendedSchemaPtr> JoinSchema(const ExtendedSchemaPtr& s1,
                                     const ExtendedSchemaPtr& s2);

/// Join predicate: equality on attributes real in *both* operands; if none
/// exist the join degrades to a Cartesian product (Table 3 (d) note).
Result<XRelation> NaturalJoin(const XRelation& r1, const XRelation& r2);

/// The resolved execution plan of one natural join over operand schemas
/// (s1, s2): output schema, join-key coordinates on each side, and the
/// output-row construction plan. Shared by the scalar `NaturalJoin` and
/// the vectorized join cursor so both emit bit-identical rows.
struct JoinSpec {
  ExtendedSchemaPtr schema;
  /// Coordinates (in s1 / s2) of the attributes real in both operands —
  /// the equality predicate. Empty => Cartesian product.
  std::vector<std::size_t> key1;
  std::vector<std::size_t> key2;
  /// For each real output attribute: which side and coordinate supplies
  /// its value (side 1 wins for shared attributes).
  struct Source {
    bool from_r1;
    std::size_t coord;
  };
  std::vector<Source> sources;

  static Result<JoinSpec> Resolve(const ExtendedSchemaPtr& s1,
                                  const ExtendedSchemaPtr& s2);

  /// The output row for the matched pair (t1 ∈ r1, t2 ∈ r2).
  Tuple Merge(const Tuple& t1, const Tuple& t2) const;
};

// ---------------------------------------------------------------------------
// Assignment α_{A:=B} / α_{A:=a} (Table 3 (e)) — realization operator.
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> AssignSchema(const ExtendedSchemaPtr& schema,
                                       const std::string& target);

/// α_{A:=B}: realizes virtual attribute A with the value of real
/// attribute B on each tuple.
Result<XRelation> AssignFromAttribute(const XRelation& r,
                                      const std::string& target,
                                      const std::string& source);

/// α_{A:=a}: realizes virtual attribute A with constant a.
Result<XRelation> AssignConstant(const XRelation& r,
                                 const std::string& target,
                                 const Value& constant);

// ---------------------------------------------------------------------------
// Invocation β_bp (Table 3 (f)) — realization operator.
// ---------------------------------------------------------------------------

/// What to do when a per-tuple invocation fails (service unregistered,
/// fault, …). One-shot queries fail hard; the continuous executor skips
/// the tuple so a disappearing sensor cannot kill a standing query.
enum class InvocationErrorPolicy { kFail, kSkipTuple };

struct InvokeOptions {
  Timestamp instant = 0;
  InvocationErrorPolicy error_policy = InvocationErrorPolicy::kFail;
  /// If non-null, every *active* binding-pattern invocation is recorded
  /// here (Def. 8).
  ActionSet* actions = nullptr;
  /// Optional per-action callback, fired alongside `actions` — unlike the
  /// set, it observes every occurrence (audit logs with timestamps).
  std::function<void(const Action&)> action_sink;
  /// With kSkipTuple: if non-null, receives each input tuple whose
  /// invocation failed (so continuous evaluation can retry it next
  /// instant instead of treating it as realized).
  std::vector<Tuple>* failed_tuples = nullptr;
  /// Pool for the batched physical service calls (nullptr =
  /// `ThreadPool::Shared()`). Output order, `failed_tuples`, and action
  /// emission stay deterministic regardless of the pool: results are
  /// spliced serially in input-tuple order.
  ThreadPool* pool = nullptr;
};

Result<ExtendedSchemaPtr> InvokeSchema(const ExtendedSchemaPtr& schema,
                                       const BindingPattern& bp);

/// For each tuple u ∈ r: invokes bp's prototype on the service referenced
/// by u[service_bp] with input u[schema(Input_ψ)]; each output tuple
/// extends u with values for the (now real) output attributes.
/// Requires schema(Input_ψ) ⊆ realSchema(R).
Result<XRelation> Invoke(const XRelation& r, const BindingPattern& bp,
                         ServiceRegistry* registry,
                         const InvokeOptions& options);

// ---------------------------------------------------------------------------
// Shared helper.
// ---------------------------------------------------------------------------

/// Def. 2 validity of `bp` against an attribute sequence: service attribute
/// real and of reference type, inputs present with compatible types,
/// outputs virtual with compatible types.
bool BindingPatternValidFor(const std::vector<Attribute>& attributes,
                            const BindingPattern& bp);

}  // namespace serena

#endif  // SERENA_ALGEBRA_OPERATORS_H_
