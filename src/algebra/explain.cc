#include "algebra/explain.h"

#include "common/string_util.h"

namespace serena {

namespace {

/// The operator label without its children, e.g. "select[name != 'Carla']".
std::string NodeLabel(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode&>(node).relation();
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference:
    case PlanKind::kJoin:
      return PlanKindToString(node.kind());
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(node);
      return "project[" + Join(n.attributes(), ", ") + "]";
    }
    case PlanKind::kSelect: {
      const auto& n = static_cast<const SelectNode&>(node);
      return "select[" + n.formula()->ToString() + "]";
    }
    case PlanKind::kRename: {
      const auto& n = static_cast<const RenameNode&>(node);
      return "rename[" + n.from() + " -> " + n.to() + "]";
    }
    case PlanKind::kAssign: {
      const auto& n = static_cast<const AssignNode&>(node);
      return "assign[" + n.target() + " := " +
             (n.from_attribute() ? n.source_attribute()
                                 : n.constant().ToString()) +
             "]";
    }
    case PlanKind::kInvoke: {
      const auto& n = static_cast<const InvokeNode&>(node);
      std::string label = "invoke[" + n.prototype();
      if (!n.service_attribute().empty()) {
        label += "[" + n.service_attribute() + "]";
      }
      return label + "]";
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(node);
      std::string label = "aggregate[" + Join(n.group_by(), ", ") + "; ";
      for (std::size_t i = 0; i < n.aggregates().size(); ++i) {
        if (i > 0) label += ", ";
        label += n.aggregates()[i].ToString();
      }
      return label + "]";
    }
    case PlanKind::kWindow:
      // Leaf: the rendered form is already child-free.
      return node.ToString();
    case PlanKind::kStreaming: {
      const auto& n = static_cast<const StreamingNode&>(node);
      return std::string("stream[") + StreamingTypeToString(n.type()) + "]";
    }
  }
  return "?";
}

/// The `(actual ...)` clause of one analyzed node, or "(never executed)"
/// for nodes evaluation did not reach (e.g. below a failing sibling).
std::string AnalyzeAnnotation(const NodeRuntimeStats* stats) {
  if (stats == nullptr || stats->evals == 0) return "(never executed)";
  std::string s = StringFormat(
      "(actual rows=%llu time=%.3fms",
      static_cast<unsigned long long>(stats->rows_out),
      static_cast<double>(stats->wall_ns) / 1e6);
  if (stats->evals > 1) {
    s += StringFormat(" evals=%llu",
                      static_cast<unsigned long long>(stats->evals));
  }
  if (stats->invocations > 0) {
    s += StringFormat(" invocations=%llu",
                      static_cast<unsigned long long>(stats->invocations));
  }
  if (stats->errors > 0) {
    s += StringFormat(" errors=%llu",
                      static_cast<unsigned long long>(stats->errors));
  }
  return s + ")";
}

void ExplainNode(const PlanPtr& plan, const Environment& env,
                 const StreamStore* streams, const ExplainOptions& options,
                 const PlanStatsCollector* analyze, int depth,
                 std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(NodeLabel(*plan));

  std::string annotation;
  if (options.show_schemas || options.show_binding_patterns) {
    auto schema = plan->InferSchema(env, streams);
    if (schema.ok()) {
      if (options.show_binding_patterns &&
          plan->kind() == PlanKind::kInvoke) {
        const auto* node = static_cast<const InvokeNode*>(plan.get());
        annotation += node->IsActive(env, streams) ? "ACTIVE β; " : "passive β; ";
      }
      if (options.show_schemas) {
        annotation += "real: {" + Join((*schema)->RealNames(), ", ") + "}";
        const auto virtuals = (*schema)->VirtualNames();
        if (!virtuals.empty()) {
          annotation += ", virtual: {" + Join(virtuals, ", ") + "}";
        }
      }
    }
  }
  if (analyze != nullptr) {
    if (!annotation.empty()) annotation += " ";
    annotation += AnalyzeAnnotation(analyze->Find(plan.get()));
  }
  if (!annotation.empty()) {
    out->append("   -- ");
    out->append(annotation);
  }
  out->push_back('\n');
  for (const PlanPtr& child : plan->children()) {
    ExplainNode(child, env, streams, options, analyze, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const PlanPtr& plan, const Environment& env,
                        const StreamStore* streams,
                        const ExplainOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  std::string out;
  ExplainNode(plan, env, streams, options, /*analyze=*/nullptr, 0, &out);
  return out;
}

std::string RenderPlanWithStats(const PlanPtr& plan, const Environment& env,
                                const StreamStore* streams,
                                const PlanStatsCollector& stats,
                                const ExplainOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  std::string out;
  ExplainNode(plan, env, streams, options, &stats, 0, &out);
  return out;
}

std::string ExplainAnalyzePlan(const PlanPtr& plan, Environment* env,
                               StreamStore* streams,
                               const ExplainAnalyzeOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  if (env == nullptr) return "(no environment)\n";

  PlanStatsCollector collector;
  ActionSet actions;
  EvalContext ctx;
  ctx.env = env;
  ctx.streams = streams;
  ctx.instant = options.instant.value_or(env->clock().now());
  ctx.actions = &actions;
  ctx.error_policy = options.error_policy;
  ctx.stats = &collector;
  const Result<XRelation> result = plan->Evaluate(ctx);

  std::string out =
      RenderPlanWithStats(plan, *env, streams, collector, options.explain);
  out += StringFormat("instant: %lld; actions: %zu\n",
                      static_cast<long long>(ctx.instant), actions.size());
  if (!result.ok()) {
    out += "evaluation failed: " + result.status().ToString() + "\n";
  }
  return out;
}

}  // namespace serena
