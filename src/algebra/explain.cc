#include "algebra/explain.h"

#include "common/string_util.h"

namespace serena {

namespace {

/// The operator label without its children, e.g. "select[name != 'Carla']".
std::string NodeLabel(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode&>(node).relation();
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference:
    case PlanKind::kJoin:
      return PlanKindToString(node.kind());
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(node);
      return "project[" + Join(n.attributes(), ", ") + "]";
    }
    case PlanKind::kSelect: {
      const auto& n = static_cast<const SelectNode&>(node);
      return "select[" + n.formula()->ToString() + "]";
    }
    case PlanKind::kRename: {
      const auto& n = static_cast<const RenameNode&>(node);
      return "rename[" + n.from() + " -> " + n.to() + "]";
    }
    case PlanKind::kAssign: {
      const auto& n = static_cast<const AssignNode&>(node);
      return "assign[" + n.target() + " := " +
             (n.from_attribute() ? n.source_attribute()
                                 : n.constant().ToString()) +
             "]";
    }
    case PlanKind::kInvoke: {
      const auto& n = static_cast<const InvokeNode&>(node);
      std::string label = "invoke[" + n.prototype();
      if (!n.service_attribute().empty()) {
        label += "[" + n.service_attribute() + "]";
      }
      return label + "]";
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(node);
      std::string label = "aggregate[" + Join(n.group_by(), ", ") + "; ";
      for (std::size_t i = 0; i < n.aggregates().size(); ++i) {
        if (i > 0) label += ", ";
        label += n.aggregates()[i].ToString();
      }
      return label + "]";
    }
    case PlanKind::kWindow:
      // Leaf: the rendered form is already child-free.
      return node.ToString();
    case PlanKind::kStreaming: {
      const auto& n = static_cast<const StreamingNode&>(node);
      return std::string("stream[") + StreamingTypeToString(n.type()) + "]";
    }
  }
  return "?";
}

void ExplainNode(const PlanPtr& plan, const Environment& env,
                 const StreamStore* streams, const ExplainOptions& options,
                 int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(NodeLabel(*plan));

  std::string annotation;
  if (options.show_schemas || options.show_binding_patterns) {
    auto schema = plan->InferSchema(env, streams);
    if (schema.ok()) {
      if (options.show_binding_patterns &&
          plan->kind() == PlanKind::kInvoke) {
        const auto* node = static_cast<const InvokeNode*>(plan.get());
        annotation += node->IsActive(env, streams) ? "ACTIVE β; " : "passive β; ";
      }
      if (options.show_schemas) {
        annotation += "real: {" + Join((*schema)->RealNames(), ", ") + "}";
        const auto virtuals = (*schema)->VirtualNames();
        if (!virtuals.empty()) {
          annotation += ", virtual: {" + Join(virtuals, ", ") + "}";
        }
      }
    }
  }
  if (!annotation.empty()) {
    out->append("   -- ");
    out->append(annotation);
  }
  out->push_back('\n');
  for (const PlanPtr& child : plan->children()) {
    ExplainNode(child, env, streams, options, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const PlanPtr& plan, const Environment& env,
                        const StreamStore* streams,
                        const ExplainOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  std::string out;
  ExplainNode(plan, env, streams, options, 0, &out);
  return out;
}

}  // namespace serena
