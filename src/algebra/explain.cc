#include "algebra/explain.h"

#include "common/string_util.h"
#include "obs/stats.h"

namespace serena {

namespace {

/// The operator label without its children, e.g. "select[name != 'Carla']".
std::string NodeLabel(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode&>(node).relation();
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference:
    case PlanKind::kJoin:
      return PlanKindToString(node.kind());
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(node);
      return "project[" + Join(n.attributes(), ", ") + "]";
    }
    case PlanKind::kSelect: {
      const auto& n = static_cast<const SelectNode&>(node);
      return "select[" + n.formula()->ToString() + "]";
    }
    case PlanKind::kRename: {
      const auto& n = static_cast<const RenameNode&>(node);
      return "rename[" + n.from() + " -> " + n.to() + "]";
    }
    case PlanKind::kAssign: {
      const auto& n = static_cast<const AssignNode&>(node);
      return "assign[" + n.target() + " := " +
             (n.from_attribute() ? n.source_attribute()
                                 : n.constant().ToString()) +
             "]";
    }
    case PlanKind::kInvoke: {
      const auto& n = static_cast<const InvokeNode&>(node);
      std::string label = "invoke[" + n.prototype();
      if (!n.service_attribute().empty()) {
        label += "[" + n.service_attribute() + "]";
      }
      return label + "]";
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(node);
      std::string label = "aggregate[" + Join(n.group_by(), ", ") + "; ";
      for (std::size_t i = 0; i < n.aggregates().size(); ++i) {
        if (i > 0) label += ", ";
        label += n.aggregates()[i].ToString();
      }
      return label + "]";
    }
    case PlanKind::kWindow:
      // Leaf: the rendered form is already child-free.
      return node.ToString();
    case PlanKind::kStreaming: {
      const auto& n = static_cast<const StreamingNode&>(node);
      return std::string("stream[") + StreamingTypeToString(n.type()) + "]";
    }
  }
  return "?";
}

/// The `(actual ...)` clause of one analyzed node, or "(never executed)"
/// for nodes evaluation did not reach (e.g. below a failing sibling).
std::string AnalyzeAnnotation(const NodeRuntimeStats* stats) {
  if (stats == nullptr || stats->evals == 0) return "(never executed)";
  std::string s = StringFormat(
      "(actual rows=%llu time=%.3fms",
      static_cast<unsigned long long>(stats->rows_out),
      static_cast<double>(stats->wall_ns) / 1e6);
  if (stats->evals > 1) {
    s += StringFormat(" evals=%llu",
                      static_cast<unsigned long long>(stats->evals));
  }
  if (stats->invocations > 0) {
    s += StringFormat(" invocations=%llu",
                      static_cast<unsigned long long>(stats->invocations));
  }
  if (stats->memo_hits > 0) {
    s += StringFormat(" memo_hits=%llu",
                      static_cast<unsigned long long>(stats->memo_hits));
  }
  if (stats->errors > 0) {
    s += StringFormat(" errors=%llu",
                      static_cast<unsigned long long>(stats->errors));
  }
  if (stats->batches > 0) {
    // The signature of a fused vectorized pipeline having run here.
    s += StringFormat(" batches=%llu",
                      static_cast<unsigned long long>(stats->batches));
  }
  return s + ")";
}

/// The runtime-statistics-store clauses of one analyzed node: the
/// cross-run aggregates under the node's stable fingerprint ("observed:"),
/// and — when `SERENA_STATS_FILE` supplied a previous run — the last run's
/// per-eval figures with deltas against this evaluation ("last run:").
std::string StatsStoreAnnotation(const PlanNode& node,
                                 const NodeRuntimeStats* stats) {
  obs::StatsStore& store = obs::StatsStore::Global();
  std::string out;
  const std::string fingerprint = obs::OperatorFingerprint(node);
  if (const std::optional<obs::OperatorStats> observed =
          store.Find(fingerprint);
      observed.has_value() && observed->evals > 0) {
    out += StringFormat(
        " (observed: evals=%llu rows/eval=%.1f sel=%.3f time/eval=%.3fms",
        static_cast<unsigned long long>(observed->evals),
        observed->mean_rows_out(), observed->selectivity(),
        observed->mean_wall_ns() / 1e6);
    if (observed->invocations > 0) {
      out += StringFormat(" memo=%.0f%%", observed->memo_hit_rate() * 100.0);
    }
    out += ")";
  }
  if (const std::optional<obs::OperatorStats> baseline =
          store.FindBaseline(fingerprint);
      baseline.has_value() && baseline->evals > 0) {
    out += StringFormat(" (last run: rows/eval=%.1f time/eval=%.3fms",
                        baseline->mean_rows_out(),
                        baseline->mean_wall_ns() / 1e6);
    if (stats != nullptr && stats->evals > 0) {
      const double now_ns = static_cast<double>(stats->wall_ns) /
                            static_cast<double>(stats->evals);
      const double then_ns = baseline->mean_wall_ns();
      if (then_ns > 0) {
        out += StringFormat(", Δtime %+.1f%%",
                            (now_ns - then_ns) / then_ns * 100.0);
      }
      const double now_rows = static_cast<double>(stats->rows_out) /
                              static_cast<double>(stats->evals);
      const double then_rows = baseline->mean_rows_out();
      if (then_rows > 0) {
        out += StringFormat(", Δrows %+.1f%%",
                            (now_rows - then_rows) / then_rows * 100.0);
      }
    }
    out += ")";
  }
  return out;
}

void ExplainNode(const PlanPtr& plan, const Environment& env,
                 const StreamStore* streams, const ExplainOptions& options,
                 const PlanStatsCollector* analyze, int depth,
                 std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(NodeLabel(*plan));

  std::string annotation;
  if (options.show_schemas || options.show_binding_patterns) {
    auto schema = plan->InferSchema(env, streams);
    if (schema.ok()) {
      if (options.show_binding_patterns &&
          plan->kind() == PlanKind::kInvoke) {
        const auto* node = static_cast<const InvokeNode*>(plan.get());
        annotation += node->IsActive(env, streams) ? "ACTIVE β; " : "passive β; ";
      }
      if (options.show_schemas) {
        annotation += "real: {" + Join((*schema)->RealNames(), ", ") + "}";
        const auto virtuals = (*schema)->VirtualNames();
        if (!virtuals.empty()) {
          annotation += ", virtual: {" + Join(virtuals, ", ") + "}";
        }
      }
    }
  }
  if (analyze != nullptr) {
    if (!annotation.empty()) annotation += " ";
    const NodeRuntimeStats* node_stats = analyze->Find(plan.get());
    annotation += AnalyzeAnnotation(node_stats);
    annotation += StatsStoreAnnotation(*plan, node_stats);
  }
  if (!annotation.empty()) {
    out->append("   -- ");
    out->append(annotation);
  }
  out->push_back('\n');
  for (const PlanPtr& child : plan->children()) {
    ExplainNode(child, env, streams, options, analyze, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const PlanPtr& plan, const Environment& env,
                        const StreamStore* streams,
                        const ExplainOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  std::string out;
  ExplainNode(plan, env, streams, options, /*analyze=*/nullptr, 0, &out);
  return out;
}

std::string RenderPlanWithStats(const PlanPtr& plan, const Environment& env,
                                const StreamStore* streams,
                                const PlanStatsCollector& stats,
                                const ExplainOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  std::string out;
  ExplainNode(plan, env, streams, options, &stats, 0, &out);
  return out;
}

std::string ExplainAnalyzePlan(const PlanPtr& plan, Environment* env,
                               StreamStore* streams,
                               const ExplainAnalyzeOptions& options) {
  if (plan == nullptr) return "(null plan)\n";
  if (env == nullptr) return "(no environment)\n";

  PlanStatsCollector collector;
  ActionSet actions;
  EvalContext ctx;
  ctx.env = env;
  ctx.streams = streams;
  ctx.instant = options.instant.value_or(env->clock().now());
  ctx.actions = &actions;
  ctx.error_policy = options.error_policy;
  ctx.stats = &collector;
  const Result<XRelation> result = plan->Evaluate(ctx);
  // EXPLAIN ANALYZE is an explicit observation: its actuals always feed
  // the runtime statistics store. Flushed before rendering so the
  // "observed:" clause includes this very evaluation; "last run:" reads
  // the baseline map and cannot self-contaminate.
  obs::StatsStore::Global().RecordPlan(*plan, collector);

  std::string out =
      RenderPlanWithStats(plan, *env, streams, collector, options.explain);
  out += StringFormat("instant: %lld; actions: %zu\n",
                      static_cast<long long>(ctx.instant), actions.size());
  if (!result.ok()) {
    out += "evaluation failed: " + result.status().ToString() + "\n";
  }
  return out;
}

}  // namespace serena
