#ifndef SERENA_ALGEBRA_PARAMETERS_H_
#define SERENA_ALGEBRA_PARAMETERS_H_

#include <map>
#include <set>
#include <string>

#include "algebra/plan.h"

namespace serena {

/// Named parameters (`:name`) make Serena plans reusable templates — the
/// prepared-statement pattern:
///
///   auto plan = ParseAlgebra(
///       "invoke[sendMessage](assign[text := :msg]("
///       "select[name = :who](contacts)))").ValueOrDie();
///   SERENA_ASSIGN_OR_RETURN(
///       PlanPtr bound,
///       BindParameters(plan, {{"msg", Value::String("Hi!")},
///                             {"who", Value::String("Carla")}}));
///
/// Parameters may appear as comparison operands in selection formulas and
/// as assignment right-hand sides. Executing a plan with unbound
/// parameters fails with FailedPrecondition.

/// All parameter names the plan references.
std::set<std::string> CollectParameters(const PlanPtr& plan);

/// Returns a copy of `plan` with every parameter in `bindings`
/// substituted by its value. Fails if any referenced parameter remains
/// unbound or a binding names a parameter the plan does not use.
Result<PlanPtr> BindParameters(const PlanPtr& plan,
                               const std::map<std::string, Value>& bindings);

}  // namespace serena

#endif  // SERENA_ALGEBRA_PARAMETERS_H_
