#ifndef SERENA_ALGEBRA_EXPLAIN_H_
#define SERENA_ALGEBRA_EXPLAIN_H_

#include <string>

#include "algebra/plan.h"

namespace serena {

/// Options for `ExplainPlan`.
struct ExplainOptions {
  /// Annotate each node with its inferred output schema partition.
  bool show_schemas = true;
  /// Annotate invocation nodes with their binding pattern and tag.
  bool show_binding_patterns = true;
};

/// Renders a query plan as an indented operator tree, e.g.
///
/// ```
/// invoke[sendMessage]           {active β; real: ..., virtual: ...}
///   assign[text := 'Bonjour!']  {real: ..., virtual: ...}
///     select[name != 'Carla']
///       contacts
/// ```
///
/// Schema annotations require the environment (and stream store when the
/// plan reads streams); inference failures degrade to plain rendering of
/// the affected subtree, never to an error — EXPLAIN must always work.
std::string ExplainPlan(const PlanPtr& plan, const Environment& env,
                        const StreamStore* streams,
                        const ExplainOptions& options = {});

}  // namespace serena

#endif  // SERENA_ALGEBRA_EXPLAIN_H_
