#ifndef SERENA_ALGEBRA_EXPLAIN_H_
#define SERENA_ALGEBRA_EXPLAIN_H_

#include <optional>
#include <string>

#include "algebra/plan.h"

namespace serena {

/// Options for `ExplainPlan`.
struct ExplainOptions {
  /// Annotate each node with its inferred output schema partition.
  bool show_schemas = true;
  /// Annotate invocation nodes with their binding pattern and tag.
  bool show_binding_patterns = true;
};

/// Renders a query plan as an indented operator tree, e.g.
///
/// ```
/// invoke[sendMessage]           {active β; real: ..., virtual: ...}
///   assign[text := 'Bonjour!']  {real: ..., virtual: ...}
///     select[name != 'Carla']
///       contacts
/// ```
///
/// Schema annotations require the environment (and stream store when the
/// plan reads streams); inference failures degrade to plain rendering of
/// the affected subtree, never to an error — EXPLAIN must always work.
std::string ExplainPlan(const PlanPtr& plan, const Environment& env,
                        const StreamStore* streams,
                        const ExplainOptions& options = {});

/// Options for `ExplainAnalyzePlan`.
struct ExplainAnalyzeOptions {
  ExplainOptions explain;
  /// Evaluation instant; defaults to the environment's current instant.
  std::optional<Timestamp> instant;
  /// How per-tuple invocation failures are treated during the run.
  InvocationErrorPolicy error_policy = InvocationErrorPolicy::kFail;
};

/// EXPLAIN ANALYZE: *runs* the plan once (side effects of active
/// invocations included — exactly like executing the query) and renders
/// the operator tree with each node annotated with its actual output
/// rows, inclusive wall time, and the number of service invocations its
/// subtree issued, e.g.
///
/// ```
/// invoke[sendMessage]   -- ACTIVE β (actual rows=2 time=0.514ms invocations=2)
///   select[name != 'Carla']   -- (actual rows=2 time=0.004ms)
///     contacts   -- (actual rows=3 time=0.002ms)
/// ```
///
/// Like EXPLAIN, this never fails: if evaluation errors out, the tree is
/// rendered with whatever statistics were collected before the failure
/// and the error is appended on a trailing line.
std::string ExplainAnalyzePlan(const PlanPtr& plan, Environment* env,
                               StreamStore* streams,
                               const ExplainAnalyzeOptions& options = {});

/// Renders an already-collected stats set against a plan — the building
/// block `ExplainAnalyzePlan` uses, exposed so continuous queries can be
/// annotated with statistics accumulated over many steps.
std::string RenderPlanWithStats(const PlanPtr& plan, const Environment& env,
                                const StreamStore* streams,
                                const PlanStatsCollector& stats,
                                const ExplainOptions& options = {});

}  // namespace serena

#endif  // SERENA_ALGEBRA_EXPLAIN_H_
