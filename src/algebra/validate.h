#ifndef SERENA_ALGEBRA_VALIDATE_H_
#define SERENA_ALGEBRA_VALIDATE_H_

#include <string>
#include <vector>

#include "algebra/plan.h"

namespace serena {

/// One finding from `ValidatePlan`.
struct Diagnostic {
  enum class Severity { kError, kWarning };

  Severity severity = Severity::kError;
  /// The operator the finding anchors to (rendered label).
  std::string node;
  std::string message;

  /// "error at select[...]: ..." / "warning at join: ...".
  std::string ToString() const;
};

/// Statically checks a whole plan against an environment, collecting *all*
/// findings instead of failing at the first (what `InferSchema` does).
///
/// Errors (the plan cannot evaluate):
///  - scans of missing relations / windows over missing streams;
///  - selection formulas over virtual or missing attributes;
///  - projections/renames/assignments on missing attributes, assignment
///    to real attributes (realization is one-way);
///  - invocations of unknown/ambiguous binding patterns or with virtual
///    input attributes;
///  - set operations over mismatched schemas; incompatible join types.
///
/// Warnings (legal but suspicious):
///  - a natural join with no shared real attribute (Cartesian product);
///  - a selection directly above an ACTIVE invocation (the Q1' pattern:
///    filtering after the side effect, Example 6);
///  - a projection that eliminates every binding pattern;
///  - a streaming operator evaluated outside a continuous query can only
///    fail at run time.
///
/// Never returns an error status for plan content — diagnostics *are* the
/// result; only a null plan is an argument error.
Result<std::vector<Diagnostic>> ValidatePlan(const PlanPtr& plan,
                                             const Environment& env,
                                             const StreamStore* streams);

/// True if no kError diagnostics are present.
bool IsValid(const std::vector<Diagnostic>& diagnostics);

}  // namespace serena

#endif  // SERENA_ALGEBRA_VALIDATE_H_
