#include "algebra/plan.h"

#include <algorithm>
#include <array>
#include <optional>

#include "algebra/vectorized.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace serena {

namespace {

/// Cached per-operator-kind instruments so the evaluator never takes the
/// registry lock on the hot path. `wall_ns` is inclusive of children
/// (nested evaluations double-count by design; use EXPLAIN ANALYZE for a
/// per-node breakdown of one query).
struct OperatorInstruments {
  obs::Counter* evals;
  obs::Counter* rows_out;
  obs::Counter* wall_ns;
};

const OperatorInstruments& InstrumentsFor(PlanKind kind) {
  static constexpr int kKinds =
      static_cast<int>(PlanKind::kStreaming) + 1;
  static const std::array<OperatorInstruments, kKinds>* instruments = [] {
    auto* all = new std::array<OperatorInstruments, kKinds>();
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    for (int k = 0; k < kKinds; ++k) {
      const std::string prefix =
          std::string("serena.op.") +
          PlanKindToString(static_cast<PlanKind>(k));
      (*all)[static_cast<std::size_t>(k)] = OperatorInstruments{
          &metrics.GetCounter(prefix + ".evals"),
          &metrics.GetCounter(prefix + ".rows_out"),
          &metrics.GetCounter(prefix + ".wall_ns")};
    }
    return all;
  }();
  return (*instruments)[static_cast<std::size_t>(kind)];
}

}  // namespace

namespace internal {

void RecordOperatorMetrics(PlanKind kind, std::uint64_t evals,
                           std::uint64_t rows_out, std::uint64_t wall_ns) {
  const OperatorInstruments& instruments = InstrumentsFor(kind);
  instruments.evals->Increment(evals);
  instruments.rows_out->Increment(rows_out);
  instruments.wall_ns->Increment(wall_ns);
}

}  // namespace internal

Result<XRelation> PlanNode::EvaluateDispatch(EvalContext& ctx) const {
  // Tracing forces the scalar path: a fused pipeline would collapse the
  // interior operators into one span, breaking the per-operator causal
  // chain the trace exists to show.
  if (vec::Enabled() && vec::IsFusedRoot(kind()) &&
      !obs::TraceBuffer::Global().enabled()) {
    if (std::optional<Result<XRelation>> batched =
            vec::TryExecute(*this, ctx);
        batched.has_value()) {
      return std::move(*batched);
    }
  }
  return EvaluateImpl(ctx);
}

Result<XRelation> PlanNode::Evaluate(EvalContext& ctx) const {
  const bool collect = ctx.stats != nullptr;
  const bool meter = obs::MetricsRegistry::Global().enabled();
  const bool trace = obs::TraceBuffer::Global().enabled();
  if (!collect && !meter && !trace) return EvaluateDispatch(ctx);

  // Operator span: nests under the enclosing query-step span (and any
  // parent operator), completing the tick→step→operator causal chain.
  std::optional<obs::Span> span;
  if (trace) {
    span.emplace(std::string("op.") + PlanKindToString(kind()), ctx.instant);
  }

  std::uint64_t invocations_before = 0;
  std::uint64_t memo_hits_before = 0;
  if (collect && ctx.env != nullptr) {
    const InvocationStats before = ctx.env->registry().stats();
    invocations_before = before.logical_invocations;
    memo_hits_before = before.memo_hits;
  }
  const std::uint64_t start_ns = obs::MonotonicNowNs();
  Result<XRelation> result = EvaluateDispatch(ctx);
  const std::uint64_t elapsed_ns = obs::MonotonicNowNs() - start_ns;
  const std::uint64_t rows =
      result.ok() ? static_cast<std::uint64_t>(result->size()) : 0;

  if (meter) {
    const OperatorInstruments& instruments = InstrumentsFor(kind());
    instruments.evals->Increment();
    instruments.rows_out->Increment(rows);
    instruments.wall_ns->Increment(elapsed_ns);
  }
  if (collect) {
    NodeRuntimeStats& stats = ctx.stats->StatsFor(this);
    ++stats.evals;
    stats.rows_out += rows;
    stats.wall_ns += elapsed_ns;
    if (ctx.env != nullptr) {
      const InvocationStats after = ctx.env->registry().stats();
      stats.invocations += after.logical_invocations - invocations_before;
      stats.memo_hits += after.memo_hits - memo_hits_before;
    }
    if (!result.ok()) ++stats.errors;
  }
  return result;
}

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "scan";
    case PlanKind::kUnion:
      return "union";
    case PlanKind::kIntersect:
      return "intersect";
    case PlanKind::kDifference:
      return "difference";
    case PlanKind::kProject:
      return "project";
    case PlanKind::kSelect:
      return "select";
    case PlanKind::kRename:
      return "rename";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kAssign:
      return "assign";
    case PlanKind::kInvoke:
      return "invoke";
    case PlanKind::kAggregate:
      return "aggregate";
    case PlanKind::kWindow:
      return "window";
    case PlanKind::kStreaming:
      return "stream";
  }
  return "?";
}

const char* StreamingTypeToString(StreamingType type) {
  switch (type) {
    case StreamingType::kInsertion:
      return "insertion";
    case StreamingType::kDeletion:
      return "deletion";
    case StreamingType::kHeartbeat:
      return "heartbeat";
  }
  return "?";
}

Result<StreamingType> StreamingTypeFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "insertion") return StreamingType::kInsertion;
  if (lower == "deletion") return StreamingType::kDeletion;
  if (lower == "heartbeat") return StreamingType::kHeartbeat;
  return Status::ParseError("unknown streaming type: ", std::string(name));
}

// ---------------------------------------------------------------------------
// ScanNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> ScanNode::InferSchema(
    const Environment& env, const StreamStore* /*streams*/) const {
  SERENA_ASSIGN_OR_RETURN(const XRelation* relation,
                          env.GetRelation(relation_));
  return relation->schema_ptr();
}

Result<XRelation> ScanNode::EvaluateImpl(EvalContext& ctx) const {
  if (ctx.env == nullptr) {
    return Status::InvalidArgument("evaluation context has no environment");
  }
  SERENA_ASSIGN_OR_RETURN(const XRelation* relation,
                          ctx.env->GetRelation(relation_));
  return *relation;  // Copy: plans must not alias environment storage.
}

// ---------------------------------------------------------------------------
// SetOpNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> SetOpNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr left,
                          left_->InferSchema(env, streams));
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr right,
                          right_->InferSchema(env, streams));
  return SetOpSchema(left, right, PlanKindToString(kind()));
}

Result<XRelation> SetOpNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation left, left_->Evaluate(ctx));
  SERENA_ASSIGN_OR_RETURN(XRelation right, right_->Evaluate(ctx));
  switch (kind()) {
    case PlanKind::kUnion:
      return Union(left, right);
    case PlanKind::kIntersect:
      return Intersect(left, right);
    case PlanKind::kDifference:
      return Difference(left, right);
    default:
      return Status::Internal("SetOpNode with non-set kind");
  }
}

std::string SetOpNode::ToString() const {
  return std::string(PlanKindToString(kind())) + "(" + left_->ToString() +
         ", " + right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// ProjectNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> ProjectNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child,
                          child_->InferSchema(env, streams));
  return ProjectSchema(child, attributes_);
}

Result<XRelation> ProjectNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  return Project(child, attributes_);
}

std::string ProjectNode::ToString() const {
  return "project[" + Join(attributes_, ", ") + "](" + child_->ToString() +
         ")";
}

// ---------------------------------------------------------------------------
// SelectNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> SelectNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child,
                          child_->InferSchema(env, streams));
  return SelectSchema(child, formula_);
}

Result<XRelation> SelectNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  return Select(child, formula_);
}

std::string SelectNode::ToString() const {
  return "select[" + formula_->ToString() + "](" + child_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// RenameNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> RenameNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child,
                          child_->InferSchema(env, streams));
  return RenameSchema(child, from_, to_);
}

Result<XRelation> RenameNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  return Rename(child, from_, to_);
}

std::string RenameNode::ToString() const {
  return "rename[" + from_ + " -> " + to_ + "](" + child_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// JoinNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> JoinNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr left,
                          left_->InferSchema(env, streams));
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr right,
                          right_->InferSchema(env, streams));
  return JoinSchema(left, right);
}

Result<XRelation> JoinNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation left, left_->Evaluate(ctx));
  SERENA_ASSIGN_OR_RETURN(XRelation right, right_->Evaluate(ctx));
  return NaturalJoin(left, right);
}

std::string JoinNode::ToString() const {
  return "join(" + left_->ToString() + ", " + right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// AssignNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> AssignNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child,
                          child_->InferSchema(env, streams));
  // A parameter assignment types like a constant of the target's type.
  if (from_attribute() && !child->IsReal(source_attribute_)) {
    return Status::InvalidArgument("assign: source attribute '",
                                   source_attribute_,
                                   "' must be a real attribute");
  }
  return AssignSchema(child, target_);
}

Result<XRelation> AssignNode::EvaluateImpl(EvalContext& ctx) const {
  if (from_parameter()) {
    return Status::FailedPrecondition(
        "unbound parameter :", parameter_,
        " (use BindParameters before execution)");
  }
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  if (from_attribute()) {
    return AssignFromAttribute(child, target_, source_attribute_);
  }
  return AssignConstant(child, target_, *constant_);
}

std::string AssignNode::ToString() const {
  std::string rhs;
  if (from_parameter()) {
    rhs = ":" + parameter_;
  } else if (from_attribute()) {
    rhs = source_attribute_;
  } else {
    rhs = constant_->ToString();
  }
  return "assign[" + target_ + " := " + rhs + "](" + child_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// InvokeNode
// ---------------------------------------------------------------------------

Result<BindingPattern> InvokeNode::ResolveBindingPattern(
    const ExtendedSchema& child_schema) const {
  const BindingPattern* bp =
      child_schema.FindBindingPattern(prototype_, service_attribute_);
  if (bp == nullptr) {
    return Status::InvalidArgument(
        "invoke: no (unambiguous) binding pattern for prototype '",
        prototype_, "'",
        service_attribute_.empty()
            ? std::string()
            : " with service attribute '" + service_attribute_ + "'",
        " in schema '", child_schema.name(), "'");
  }
  return *bp;
}

bool InvokeNode::IsActive(const Environment& env,
                          const StreamStore* streams) const {
  auto schema = child_->InferSchema(env, streams);
  if (!schema.ok()) return true;  // Conservative.
  auto bp = ResolveBindingPattern(**schema);
  if (!bp.ok()) return true;  // Conservative.
  return bp->active();
}

Result<ExtendedSchemaPtr> InvokeNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child,
                          child_->InferSchema(env, streams));
  SERENA_ASSIGN_OR_RETURN(BindingPattern bp, ResolveBindingPattern(*child));
  return InvokeSchema(child, bp);
}

Result<XRelation> InvokeNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  SERENA_ASSIGN_OR_RETURN(BindingPattern bp,
                          ResolveBindingPattern(child.schema()));
  InvokeOptions options;
  options.instant = ctx.instant;
  options.error_policy = ctx.error_policy;
  options.actions = ctx.actions;
  options.action_sink = ctx.action_sink;
  options.pool = ctx.pool;

  // Streaming binding patterns (§7 extension): the service provides a
  // stream, so under continuous evaluation every standing tuple is
  // re-invoked each instant — the result is the per-instant slice of the
  // service's stream, never reused across instants.
  if (ctx.state == nullptr || bp.prototype().streaming()) {
    return Invoke(child, bp, &ctx.env->registry(), options);
  }

  // Continuous semantics (§4.2): invoke only for newly inserted tuples;
  // reuse previous outputs for standing tuples; drop outputs of deleted
  // tuples.
  NodeStateStore::NodeState& state = ctx.state->StateFor(this);

  XRelation fresh(child.schema_ptr());
  for (const Tuple& t : child.tuples()) {
    if (!state.prev_child.has_value() || !state.prev_child->Contains(t)) {
      fresh.InsertUnchecked(t);
    }
  }

  // Tuples whose invocation fails this instant (vanished service) must
  // not count as realized: exclude them from the remembered child so
  // they are retried as "fresh" once the service is back.
  std::vector<Tuple> failed;
  options.failed_tuples = &failed;
  SERENA_ASSIGN_OR_RETURN(XRelation fresh_output,
                          Invoke(fresh, bp, &ctx.env->registry(), options));

  if (state.prev_output.has_value() && !state.prev_output->empty()) {
    // Keep previous outputs whose source tuple still stands. The source
    // part of an output tuple is its projection onto the child's real
    // attributes.
    std::vector<std::size_t> source_coords;
    for (const std::string& name : child.schema().RealNames()) {
      source_coords.push_back(
          *state.prev_output->schema().CoordinateOf(name));
    }
    for (const Tuple& out : state.prev_output->tuples()) {
      Tuple source = out.Project(source_coords);
      if (child.Contains(source) && !fresh.Contains(source)) {
        fresh_output.InsertUnchecked(out);
      }
    }
  }

  for (const Tuple& t : failed) {
    child.Erase(t);
  }
  state.prev_child = std::move(child);
  state.prev_output = fresh_output;
  return fresh_output;
}

std::string InvokeNode::ToString() const {
  std::string s = "invoke[" + prototype_;
  if (!service_attribute_.empty()) s += "[" + service_attribute_ + "]";
  s += "](" + child_->ToString() + ")";
  return s;
}

// ---------------------------------------------------------------------------
// AggregateNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> AggregateNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child,
                          child_->InferSchema(env, streams));
  return AggregateSchema(child, group_by_, aggregates_);
}

Result<XRelation> AggregateNode::EvaluateImpl(EvalContext& ctx) const {
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  return serena::Aggregate(child, group_by_, aggregates_);
}

std::string AggregateNode::ToString() const {
  std::string s = "aggregate[" + Join(group_by_, ", ") + "; ";
  for (std::size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) s += ", ";
    s += aggregates_[i].ToString();
  }
  s += "](" + child_->ToString() + ")";
  return s;
}

// ---------------------------------------------------------------------------
// WindowNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> WindowNode::InferSchema(
    const Environment& /*env*/, const StreamStore* streams) const {
  if (streams == nullptr) {
    return Status::FailedPrecondition(
        "window: no stream store available for stream '", stream_, "'");
  }
  SERENA_ASSIGN_OR_RETURN(const XDRelation* stream,
                          streams->GetStream(stream_));
  return stream->schema_ptr();
}

Result<XRelation> WindowNode::EvaluateImpl(EvalContext& ctx) const {
  if (ctx.streams == nullptr) {
    return Status::FailedPrecondition(
        "window: no stream store available for stream '", stream_, "'");
  }
  SERENA_ASSIGN_OR_RETURN(const XDRelation* stream,
                          ctx.streams->GetStream(stream_));
  XRelation result(stream->schema_ptr());
  std::vector<Tuple> slice =
      mode_ == WindowMode::kTime
          ? stream->InsertedDuring(ctx.instant - period_, ctx.instant)
          : stream->LastInserted(static_cast<std::size_t>(period_),
                                 ctx.instant);
  result.Reserve(slice.size());
  for (Tuple& t : slice) {
    result.InsertUnchecked(std::move(t));
  }
  return result;
}

std::string WindowNode::ToString() const {
  const std::string spec = mode_ == WindowMode::kRows
                               ? "rows " + std::to_string(period_)
                               : std::to_string(period_);
  return "window[" + spec + "](" + stream_ + ")";
}

// ---------------------------------------------------------------------------
// StreamingNode
// ---------------------------------------------------------------------------

Result<ExtendedSchemaPtr> StreamingNode::InferSchema(
    const Environment& env, const StreamStore* streams) const {
  return child_->InferSchema(env, streams);
}

Result<XRelation> StreamingNode::EvaluateImpl(EvalContext& ctx) const {
  if (ctx.state == nullptr) {
    return Status::FailedPrecondition(
        "streaming operator requires continuous evaluation (register the "
        "query with the continuous executor)");
  }
  SERENA_ASSIGN_OR_RETURN(XRelation child, child_->Evaluate(ctx));
  NodeStateStore::NodeState& state = ctx.state->StateFor(this);

  XRelation result(child.schema_ptr());
  switch (type_) {
    case StreamingType::kInsertion:
      for (const Tuple& t : child.tuples()) {
        if (!state.prev_child.has_value() || !state.prev_child->Contains(t)) {
          result.InsertUnchecked(t);
        }
      }
      break;
    case StreamingType::kDeletion:
      if (state.prev_child.has_value()) {
        for (const Tuple& t : state.prev_child->tuples()) {
          if (!child.Contains(t)) result.InsertUnchecked(t);
        }
      }
      break;
    case StreamingType::kHeartbeat:
      for (const Tuple& t : child.tuples()) result.InsertUnchecked(t);
      break;
  }
  state.prev_child = std::move(child);
  return result;
}

std::string StreamingNode::ToString() const {
  return std::string("stream[") + StreamingTypeToString(type_) + "](" +
         child_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

PlanPtr Scan(std::string relation) {
  return std::make_shared<ScanNode>(std::move(relation));
}
PlanPtr UnionOf(PlanPtr left, PlanPtr right) {
  return std::make_shared<SetOpNode>(PlanKind::kUnion, std::move(left),
                                     std::move(right));
}
PlanPtr IntersectOf(PlanPtr left, PlanPtr right) {
  return std::make_shared<SetOpNode>(PlanKind::kIntersect, std::move(left),
                                     std::move(right));
}
PlanPtr DifferenceOf(PlanPtr left, PlanPtr right) {
  return std::make_shared<SetOpNode>(PlanKind::kDifference, std::move(left),
                                     std::move(right));
}
PlanPtr Project(PlanPtr child, std::vector<std::string> attributes) {
  return std::make_shared<ProjectNode>(std::move(child),
                                       std::move(attributes));
}
PlanPtr Select(PlanPtr child, FormulaPtr formula) {
  return std::make_shared<SelectNode>(std::move(child), std::move(formula));
}
PlanPtr Rename(PlanPtr child, std::string from, std::string to) {
  return std::make_shared<RenameNode>(std::move(child), std::move(from),
                                      std::move(to));
}
PlanPtr Join(PlanPtr left, PlanPtr right) {
  return std::make_shared<JoinNode>(std::move(left), std::move(right));
}
PlanPtr Assign(PlanPtr child, std::string target, std::string source) {
  return std::make_shared<AssignNode>(std::move(child), std::move(target),
                                      std::move(source));
}
PlanPtr Assign(PlanPtr child, std::string target, Value constant) {
  return std::make_shared<AssignNode>(std::move(child), std::move(target),
                                      std::move(constant));
}
PlanPtr AssignParam(PlanPtr child, std::string target,
                    std::string parameter) {
  return std::make_shared<AssignNode>(std::move(child), std::move(target),
                                      std::move(parameter),
                                      AssignNode::ParamTag{});
}
PlanPtr Invoke(PlanPtr child, std::string prototype,
               std::string service_attribute) {
  return std::make_shared<InvokeNode>(std::move(child), std::move(prototype),
                                      std::move(service_attribute));
}
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateSpec> aggregates) {
  return std::make_shared<AggregateNode>(
      std::move(child), std::move(group_by), std::move(aggregates));
}
PlanPtr Window(std::string stream, Timestamp period, WindowMode mode) {
  return std::make_shared<WindowNode>(std::move(stream), period, mode);
}
PlanPtr Streaming(PlanPtr child, StreamingType type) {
  return std::make_shared<StreamingNode>(std::move(child), type);
}

// ---------------------------------------------------------------------------
// Whole-query helpers
// ---------------------------------------------------------------------------

Result<QueryResult> Execute(const PlanPtr& plan, Environment* env,
                            StreamStore* streams,
                            std::optional<Timestamp> instant) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  if (env == nullptr) return Status::InvalidArgument("null environment");
  ActionSet actions;
  EvalContext ctx;
  ctx.env = env;
  ctx.streams = streams;
  ctx.instant = instant.value_or(env->clock().now());
  ctx.actions = &actions;
  // With metrics on, one-shot queries feed the runtime statistics store:
  // a scratch collector gathers this evaluation's per-node actuals and
  // flushes them (even on failure — error counts matter) keyed by the
  // operators' stable fingerprints.
  PlanStatsCollector scratch;
  const bool record_stats =
      ctx.stats == nullptr && obs::MetricsRegistry::Global().enabled();
  if (record_stats) ctx.stats = &scratch;
  Result<XRelation> relation = plan->Evaluate(ctx);
  if (record_stats) obs::StatsStore::Global().RecordPlan(*plan, scratch);
  if (!relation.ok()) return relation.status();
  return QueryResult{std::move(*relation), std::move(actions)};
}

Result<ActionSet> ComputeActionSet(const PlanPtr& plan, Environment* env,
                                   StreamStore* streams,
                                   std::optional<Timestamp> instant) {
  SERENA_ASSIGN_OR_RETURN(QueryResult result,
                          Execute(plan, env, streams, instant));
  return result.actions;
}

bool ContainsActiveInvoke(const PlanPtr& plan, const Environment& env,
                          const StreamStore* streams) {
  if (plan == nullptr) return false;
  if (plan->kind() == PlanKind::kInvoke) {
    const auto* node = static_cast<const InvokeNode*>(plan.get());
    if (node->IsActive(env, streams)) return true;
  }
  for (const PlanPtr& child : plan->children()) {
    if (ContainsActiveInvoke(child, env, streams)) return true;
  }
  return false;
}

Result<PlanPtr> ReplaceChildren(const PlanPtr& plan,
                                std::vector<PlanPtr> children) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  const std::vector<PlanPtr> old_children = plan->children();
  if (old_children.size() != children.size()) {
    return Status::InvalidArgument(
        "ReplaceChildren: operator takes ", old_children.size(),
        " operand(s), got ", children.size());
  }
  bool same = true;
  for (std::size_t i = 0; same && i < children.size(); ++i) {
    same = old_children[i] == children[i];
  }
  if (same) return plan;

  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kWindow:
      return plan;
    case PlanKind::kUnion:
      return UnionOf(children[0], children[1]);
    case PlanKind::kIntersect:
      return IntersectOf(children[0], children[1]);
    case PlanKind::kDifference:
      return DifferenceOf(children[0], children[1]);
    case PlanKind::kJoin:
      return Join(children[0], children[1]);
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      return Project(children[0], node->attributes());
    }
    case PlanKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(plan.get());
      return Select(children[0], node->formula());
    }
    case PlanKind::kRename: {
      const auto* node = static_cast<const RenameNode*>(plan.get());
      return Rename(children[0], node->from(), node->to());
    }
    case PlanKind::kAssign: {
      const auto* node = static_cast<const AssignNode*>(plan.get());
      if (node->from_parameter()) {
        return AssignParam(children[0], node->target(), node->parameter());
      }
      return node->from_attribute()
                 ? Assign(children[0], node->target(),
                          node->source_attribute())
                 : Assign(children[0], node->target(), node->constant());
    }
    case PlanKind::kInvoke: {
      const auto* node = static_cast<const InvokeNode*>(plan.get());
      return Invoke(children[0], node->prototype(),
                    node->service_attribute());
    }
    case PlanKind::kAggregate: {
      const auto* node = static_cast<const AggregateNode*>(plan.get());
      return Aggregate(children[0], node->group_by(), node->aggregates());
    }
    case PlanKind::kStreaming: {
      const auto* node = static_cast<const StreamingNode*>(plan.get());
      return Streaming(children[0], node->type());
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace serena
