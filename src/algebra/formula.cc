#include "algebra/formula.h"

namespace serena {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
  }
  return "?";
}

namespace {

/// Resolves an operand against a tuple.
Result<Value> Resolve(const Operand& operand, const ExtendedSchema& schema,
                      const Tuple& tuple) {
  if (operand.is_parameter()) {
    return Status::FailedPrecondition("unbound parameter :",
                                      operand.parameter(),
                                      " (bind it before execution)");
  }
  if (!operand.is_attribute()) return operand.value();
  const auto coord = schema.CoordinateOf(operand.attribute());
  if (!coord.has_value()) {
    return Status::InvalidArgument(
        "selection formula references virtual or missing attribute '",
        operand.attribute(), "'");
  }
  return tuple[*coord];
}

Result<CompiledOperand> CompileOperand(const Operand& operand,
                                       const ExtendedSchema& schema) {
  CompiledOperand compiled;
  if (operand.is_parameter()) {
    // Same status Resolve raises per tuple; surfacing it at compile time
    // sends the caller down the interpreted path, which reproduces it.
    return Status::FailedPrecondition("unbound parameter :",
                                      operand.parameter(),
                                      " (bind it before execution)");
  }
  if (!operand.is_attribute()) {
    compiled.constant = operand.value();
    return compiled;
  }
  const auto coord = schema.CoordinateOf(operand.attribute());
  if (!coord.has_value()) {
    return Status::InvalidArgument(
        "selection formula references virtual or missing attribute '",
        operand.attribute(), "'");
  }
  compiled.coord = *coord;
  compiled.is_coord = true;
  return compiled;
}

Status ValidateOperand(const Operand& operand, const ExtendedSchema& schema) {
  if (operand.is_parameter()) {
    return Status::FailedPrecondition("unbound parameter :",
                                      operand.parameter(),
                                      " (bind it before execution)");
  }
  if (!operand.is_attribute()) return Status::OK();
  const Attribute* attr = schema.FindAttribute(operand.attribute());
  if (attr == nullptr) {
    return Status::InvalidArgument("formula references missing attribute '",
                                   operand.attribute(), "'");
  }
  if (!attr->is_real()) {
    return Status::InvalidArgument(
        "formula references virtual attribute '", operand.attribute(),
        "' (selection formulas may only use real attributes)");
  }
  return Status::OK();
}

Result<bool> CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kContains:
      if (!lhs.is_string() || !rhs.is_string()) {
        return Status::TypeMismatch("'contains' requires string operands");
      }
      return lhs.string_value().find(rhs.string_value()) !=
             std::string::npos;
    default:
      break;
  }
  // Ordering comparisons require compatible types.
  const bool comparable = (lhs.is_numeric() && rhs.is_numeric()) ||
                          (lhs.is_string() && rhs.is_string()) ||
                          (lhs.is_bool() && rhs.is_bool());
  if (!comparable) {
    return Status::TypeMismatch("cannot order ", lhs.ToString(), " and ",
                                rhs.ToString());
  }
  const bool lt = lhs < rhs;
  const bool gt = rhs < lhs;
  switch (op) {
    case CompareOp::kLt:
      return lt;
    case CompareOp::kLe:
      return !gt;
    case CompareOp::kGt:
      return gt;
    case CompareOp::kGe:
      return !lt;
    default:
      return Status::Internal("unreachable comparison");
  }
}

class ComparisonFormula final : public Formula {
 public:
  ComparisonFormula(Operand lhs, CompareOp op, Operand rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}

  Status Validate(const ExtendedSchema& schema) const override {
    SERENA_RETURN_NOT_OK(ValidateOperand(lhs_, schema));
    return ValidateOperand(rhs_, schema);
  }

  Result<bool> Evaluate(const ExtendedSchema& schema,
                        const Tuple& tuple) const override {
    SERENA_ASSIGN_OR_RETURN(Value lhs, Resolve(lhs_, schema, tuple));
    SERENA_ASSIGN_OR_RETURN(Value rhs, Resolve(rhs_, schema, tuple));
    return CompareValues(lhs, op_, rhs);
  }

  Result<TuplePredicate> Compile(
      const ExtendedSchema& schema) const override {
    SERENA_ASSIGN_OR_RETURN(CompiledOperand lhs,
                            CompileOperand(lhs_, schema));
    SERENA_ASSIGN_OR_RETURN(CompiledOperand rhs,
                            CompileOperand(rhs_, schema));
    const CompareOp op = op_;
    return TuplePredicate(
        [lhs = std::move(lhs), rhs = std::move(rhs),
         op](const Tuple& tuple) -> Result<bool> {
          return CompareValues(lhs.Get(tuple), op, rhs.Get(tuple));
        });
  }

  bool FlattenConjunction(
      const ExtendedSchema& schema,
      std::vector<CompiledComparison>* out) const override {
    Result<CompiledOperand> lhs = CompileOperand(lhs_, schema);
    if (!lhs.ok()) return false;
    Result<CompiledOperand> rhs = CompileOperand(rhs_, schema);
    if (!rhs.ok()) return false;
    out->push_back(
        CompiledComparison{std::move(*lhs), op_, std::move(*rhs)});
    return true;
  }

  void CollectAttributes(std::set<std::string>* out) const override {
    if (lhs_.is_attribute()) out->insert(lhs_.attribute());
    if (rhs_.is_attribute()) out->insert(rhs_.attribute());
  }

  std::string ToString() const override {
    return lhs_.ToString() + " " + CompareOpToString(op_) + " " +
           rhs_.ToString();
  }

  bool Equals(const Formula& other) const override {
    const auto* o = dynamic_cast<const ComparisonFormula*>(&other);
    return o != nullptr && lhs_ == o->lhs_ && op_ == o->op_ && rhs_ == o->rhs_;
  }

  FormulaPtr WithRenamedAttribute(std::string_view from,
                                  std::string_view to) const override {
    auto rename = [&](const Operand& operand) {
      if (operand.is_attribute() && operand.attribute() == from) {
        return Operand::Attr(std::string(to));
      }
      return operand;
    };
    return Formula::Compare(rename(lhs_), op_, rename(rhs_));
  }

  void CollectParameters(std::set<std::string>* out) const override {
    if (lhs_.is_parameter()) out->insert(lhs_.parameter());
    if (rhs_.is_parameter()) out->insert(rhs_.parameter());
  }

  FormulaPtr WithBoundParameters(
      const std::map<std::string, Value>& bindings) const override {
    auto bind = [&](const Operand& operand) {
      if (operand.is_parameter()) {
        const auto it = bindings.find(operand.parameter());
        if (it != bindings.end()) return Operand::Const(it->second);
      }
      return operand;
    };
    return Formula::Compare(bind(lhs_), op_, bind(rhs_));
  }

 private:
  Operand lhs_;
  CompareOp op_;
  Operand rhs_;
};

enum class Connective { kAnd, kOr };

class BinaryFormula final : public Formula {
 public:
  BinaryFormula(Connective connective, FormulaPtr lhs, FormulaPtr rhs)
      : connective_(connective), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Validate(const ExtendedSchema& schema) const override {
    SERENA_RETURN_NOT_OK(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  Result<bool> Evaluate(const ExtendedSchema& schema,
                        const Tuple& tuple) const override {
    SERENA_ASSIGN_OR_RETURN(bool lhs, lhs_->Evaluate(schema, tuple));
    if (connective_ == Connective::kAnd && !lhs) return false;
    if (connective_ == Connective::kOr && lhs) return true;
    return rhs_->Evaluate(schema, tuple);
  }

  Result<TuplePredicate> Compile(
      const ExtendedSchema& schema) const override {
    SERENA_ASSIGN_OR_RETURN(TuplePredicate lhs, lhs_->Compile(schema));
    SERENA_ASSIGN_OR_RETURN(TuplePredicate rhs, rhs_->Compile(schema));
    // Short-circuits exactly like Evaluate: the right side is never
    // consulted (and can never error) when the left side decides.
    if (connective_ == Connective::kAnd) {
      return TuplePredicate([lhs = std::move(lhs), rhs = std::move(rhs)](
                                const Tuple& tuple) -> Result<bool> {
        SERENA_ASSIGN_OR_RETURN(bool left, lhs(tuple));
        return left ? rhs(tuple) : false;
      });
    }
    return TuplePredicate([lhs = std::move(lhs), rhs = std::move(rhs)](
                              const Tuple& tuple) -> Result<bool> {
      SERENA_ASSIGN_OR_RETURN(bool left, lhs(tuple));
      return left ? Result<bool>(true) : rhs(tuple);
    });
  }

  bool FlattenConjunction(
      const ExtendedSchema& schema,
      std::vector<CompiledComparison>* out) const override {
    // Left before right preserves the evaluation order, so the flattened
    // loop stops on the same conjunct — false or error — as the nested
    // short-circuit would.
    return connective_ == Connective::kAnd &&
           lhs_->FlattenConjunction(schema, out) &&
           rhs_->FlattenConjunction(schema, out);
  }

  void CollectAttributes(std::set<std::string>* out) const override {
    lhs_->CollectAttributes(out);
    rhs_->CollectAttributes(out);
  }

  std::string ToString() const override {
    const char* word = connective_ == Connective::kAnd ? " and " : " or ";
    return "(" + lhs_->ToString() + word + rhs_->ToString() + ")";
  }

  bool Equals(const Formula& other) const override {
    const auto* o = dynamic_cast<const BinaryFormula*>(&other);
    return o != nullptr && connective_ == o->connective_ &&
           lhs_->Equals(*o->lhs_) && rhs_->Equals(*o->rhs_);
  }

  bool AsConjunction(FormulaPtr* lhs, FormulaPtr* rhs) const override {
    if (connective_ != Connective::kAnd) return false;
    *lhs = lhs_;
    *rhs = rhs_;
    return true;
  }

  FormulaPtr WithRenamedAttribute(std::string_view from,
                                  std::string_view to) const override {
    FormulaPtr lhs = lhs_->WithRenamedAttribute(from, to);
    FormulaPtr rhs = rhs_->WithRenamedAttribute(from, to);
    return connective_ == Connective::kAnd
               ? Formula::And(std::move(lhs), std::move(rhs))
               : Formula::Or(std::move(lhs), std::move(rhs));
  }

  void CollectParameters(std::set<std::string>* out) const override {
    lhs_->CollectParameters(out);
    rhs_->CollectParameters(out);
  }

  FormulaPtr WithBoundParameters(
      const std::map<std::string, Value>& bindings) const override {
    FormulaPtr lhs = lhs_->WithBoundParameters(bindings);
    FormulaPtr rhs = rhs_->WithBoundParameters(bindings);
    return connective_ == Connective::kAnd
               ? Formula::And(std::move(lhs), std::move(rhs))
               : Formula::Or(std::move(lhs), std::move(rhs));
  }

 private:
  Connective connective_;
  FormulaPtr lhs_;
  FormulaPtr rhs_;
};

class NotFormula final : public Formula {
 public:
  explicit NotFormula(FormulaPtr inner) : inner_(std::move(inner)) {}

  Status Validate(const ExtendedSchema& schema) const override {
    return inner_->Validate(schema);
  }

  Result<bool> Evaluate(const ExtendedSchema& schema,
                        const Tuple& tuple) const override {
    SERENA_ASSIGN_OR_RETURN(bool inner, inner_->Evaluate(schema, tuple));
    return !inner;
  }

  Result<TuplePredicate> Compile(
      const ExtendedSchema& schema) const override {
    SERENA_ASSIGN_OR_RETURN(TuplePredicate inner, inner_->Compile(schema));
    return TuplePredicate(
        [inner = std::move(inner)](const Tuple& tuple) -> Result<bool> {
          SERENA_ASSIGN_OR_RETURN(bool value, inner(tuple));
          return !value;
        });
  }

  void CollectAttributes(std::set<std::string>* out) const override {
    inner_->CollectAttributes(out);
  }

  std::string ToString() const override {
    return "not (" + inner_->ToString() + ")";
  }

  bool Equals(const Formula& other) const override {
    const auto* o = dynamic_cast<const NotFormula*>(&other);
    return o != nullptr && inner_->Equals(*o->inner_);
  }

  FormulaPtr WithRenamedAttribute(std::string_view from,
                                  std::string_view to) const override {
    return Formula::Not(inner_->WithRenamedAttribute(from, to));
  }

  void CollectParameters(std::set<std::string>* out) const override {
    inner_->CollectParameters(out);
  }

  FormulaPtr WithBoundParameters(
      const std::map<std::string, Value>& bindings) const override {
    return Formula::Not(inner_->WithBoundParameters(bindings));
  }

 private:
  FormulaPtr inner_;
};

}  // namespace

Result<bool> CompiledComparison::Eval(const Tuple& tuple) const {
  return CompareValues(lhs.Get(tuple), op, rhs.Get(tuple));
}

FormulaPtr Formula::Compare(Operand lhs, CompareOp op, Operand rhs) {
  return std::make_shared<ComparisonFormula>(std::move(lhs), op,
                                             std::move(rhs));
}

FormulaPtr Formula::And(FormulaPtr lhs, FormulaPtr rhs) {
  return std::make_shared<BinaryFormula>(Connective::kAnd, std::move(lhs),
                                         std::move(rhs));
}

FormulaPtr Formula::Or(FormulaPtr lhs, FormulaPtr rhs) {
  return std::make_shared<BinaryFormula>(Connective::kOr, std::move(lhs),
                                         std::move(rhs));
}

FormulaPtr Formula::Not(FormulaPtr inner) {
  return std::make_shared<NotFormula>(std::move(inner));
}

bool FormulaReferences(const Formula& formula, std::string_view name) {
  std::set<std::string> attrs;
  formula.CollectAttributes(&attrs);
  return attrs.count(std::string(name)) > 0;
}

std::vector<FormulaPtr> SplitConjuncts(const FormulaPtr& formula) {
  std::vector<FormulaPtr> conjuncts;
  if (formula == nullptr) return conjuncts;
  FormulaPtr lhs;
  FormulaPtr rhs;
  if (formula->AsConjunction(&lhs, &rhs)) {
    for (const FormulaPtr& part : SplitConjuncts(lhs)) {
      conjuncts.push_back(part);
    }
    for (const FormulaPtr& part : SplitConjuncts(rhs)) {
      conjuncts.push_back(part);
    }
  } else {
    conjuncts.push_back(formula);
  }
  return conjuncts;
}

FormulaPtr CombineConjuncts(const std::vector<FormulaPtr>& conjuncts) {
  FormulaPtr combined;
  for (const FormulaPtr& conjunct : conjuncts) {
    combined = combined == nullptr ? conjunct
                                   : Formula::And(combined, conjunct);
  }
  return combined;
}

}  // namespace serena
