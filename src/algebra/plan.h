#ifndef SERENA_ALGEBRA_PLAN_H_
#define SERENA_ALGEBRA_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/action.h"
#include "algebra/aggregate.h"
#include "algebra/formula.h"
#include "algebra/operators.h"
#include "common/clock.h"
#include "common/result.h"
#include "stream/stream_store.h"
#include "xrel/environment.h"
#include "xrel/xrelation.h"

namespace serena {

namespace vec {
class BatchPool;
}  // namespace vec

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// The operator kinds of the (extended) Serena algebra.
enum class PlanKind {
  kScan,
  kUnion,
  kIntersect,
  kDifference,
  kProject,
  kSelect,
  kRename,
  kJoin,
  kAssign,
  kInvoke,
  kAggregate,
  kWindow,
  kStreaming,
};

const char* PlanKindToString(PlanKind kind);

/// S[type] streaming operator flavors (§4.2).
enum class StreamingType { kInsertion, kDeletion, kHeartbeat };

const char* StreamingTypeToString(StreamingType type);
Result<StreamingType> StreamingTypeFromString(std::string_view name);

/// Per-node evaluation state enabling continuous semantics: the Streaming
/// operator needs the previous instant's child relation, and the
/// continuous invocation operator (§4.2) invokes services only for newly
/// inserted tuples, reusing previous outputs for standing tuples.
///
/// Owned by whoever runs a plan repeatedly (the ContinuousQuery executor);
/// keyed by node identity, so a state store must only ever be used with
/// one plan instance.
class NodeStateStore {
 public:
  struct NodeState {
    std::optional<XRelation> prev_child;
    std::optional<XRelation> prev_output;
  };

  NodeState& StateFor(const PlanNode* node) { return states_[node]; }
  void Clear() { states_.clear(); }

 private:
  std::unordered_map<const PlanNode*, NodeState> states_;
};

/// Actual execution statistics of one plan node, accumulated across
/// evaluations (one-shot: one evaluation; continuous: one per step).
/// Wall time is inclusive of children, like EXPLAIN ANALYZE in classical
/// engines.
struct NodeRuntimeStats {
  std::uint64_t evals = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t wall_ns = 0;
  /// Logical service invocations issued while evaluating this subtree.
  std::uint64_t invocations = 0;
  /// Invocations answered from the per-instant memo (§3.2 determinism)
  /// while evaluating this subtree.
  std::uint64_t memo_hits = 0;
  std::uint64_t errors = 0;
  /// Tuple batches this operator emitted while running inside a fused
  /// vectorized pipeline (docs/VECTORIZATION.md). 0 for scalar
  /// evaluations — the EXPLAIN ANALYZE signal of which fusion ran.
  std::uint64_t batches = 0;
};

/// Collects per-node runtime statistics during evaluation — the substrate
/// of EXPLAIN ANALYZE. Keyed by node identity, so a collector must only
/// ever be used with one plan instance (same contract as NodeStateStore).
class PlanStatsCollector {
 public:
  NodeRuntimeStats& StatsFor(const PlanNode* node) { return stats_[node]; }
  const NodeRuntimeStats* Find(const PlanNode* node) const {
    const auto it = stats_.find(node);
    return it == stats_.end() ? nullptr : &it->second;
  }
  void Clear() { stats_.clear(); }

  /// Adds every per-node counter of `other` into this collector. Lets a
  /// continuous query evaluate each step into a scratch collector (whose
  /// deltas feed the global StatsStore) while still accumulating
  /// query-lifetime totals for RenderPlanWithStats.
  void MergeFrom(const PlanStatsCollector& other) {
    for (const auto& [node, stats] : other.stats_) {
      NodeRuntimeStats& dst = stats_[node];
      dst.evals += stats.evals;
      dst.rows_out += stats.rows_out;
      dst.wall_ns += stats.wall_ns;
      dst.invocations += stats.invocations;
      dst.memo_hits += stats.memo_hits;
      dst.errors += stats.errors;
      dst.batches += stats.batches;
    }
  }

 private:
  std::unordered_map<const PlanNode*, NodeRuntimeStats> stats_;
};

/// Everything a plan needs to evaluate at one instant τ.
struct EvalContext {
  Environment* env = nullptr;
  /// Optional: named infinite XD-Relations, required by Window nodes.
  StreamStore* streams = nullptr;
  /// The evaluation instant (§3.2: all invocations occur "at" τ).
  Timestamp instant = 0;
  /// Optional collector for the query's action set (Def. 8).
  ActionSet* actions = nullptr;
  /// Optional per-action callback (sees every occurrence; the set above
  /// deduplicates).
  std::function<void(const Action&)> action_sink;
  InvocationErrorPolicy error_policy = InvocationErrorPolicy::kFail;
  /// Optional: enables continuous (delta-aware) semantics.
  NodeStateStore* state = nullptr;
  /// Optional: per-node actual rows/time/invocations land here (EXPLAIN
  /// ANALYZE). Timing is only paid when set or when the global metrics
  /// registry is enabled.
  PlanStatsCollector* stats = nullptr;
  /// Pool used by Invoke nodes for concurrent physical service calls
  /// (nullptr = `ThreadPool::Shared()`). Evaluation results are
  /// deterministic regardless of the pool.
  ThreadPool* pool = nullptr;
  /// Optional: reusable batch storage for the vectorized execution core
  /// (nullptr = a per-pipeline scratch pool). A continuous query owns one
  /// so its steady-state batch loop is allocation-free across ticks.
  vec::BatchPool* batch_pool = nullptr;
};

/// A query over a relational pervasive environment (Def. 7): an immutable
/// tree of Serena algebra operators. Rewriting builds new trees; nodes are
/// shared via `PlanPtr`.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  PlanKind kind() const { return kind_; }

  /// Children in operand order (empty for leaves).
  virtual std::vector<PlanPtr> children() const = 0;

  /// Static schema inference: the schema of the X-Relation this node
  /// produces, per the output-schema rules of Table 3.
  virtual Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const = 0;

  /// Evaluates the subtree at ctx.instant. Non-virtual: wraps the
  /// per-kind `EvaluateImpl` with instrumentation — per-operator global
  /// metrics (rows out, wall time) and, when `ctx.stats` is set, per-node
  /// actuals for EXPLAIN ANALYZE. With metrics disabled and no collector
  /// the wrapper is a single relaxed atomic load plus the virtual call.
  Result<XRelation> Evaluate(EvalContext& ctx) const;

  /// The Serena Algebra Language rendering of this subtree; parseable by
  /// the algebra parser (round-trip).
  virtual std::string ToString() const = 0;

  /// Structural equality (by rendered form).
  bool Equals(const PlanNode& other) const {
    return ToString() == other.ToString();
  }

 protected:
  explicit PlanNode(PlanKind kind) : kind_(kind) {}

  /// The operator's evaluation logic; called only through `Evaluate`.
  virtual Result<XRelation> EvaluateImpl(EvalContext& ctx) const = 0;

 private:
  /// Routes the evaluation either through the vectorized batch core
  /// (fusable subtree, `SERENA_VECTORIZE` on) or the scalar
  /// `EvaluateImpl`. Both produce byte-identical relations.
  Result<XRelation> EvaluateDispatch(EvalContext& ctx) const;

  PlanKind kind_;
};

// ---------------------------------------------------------------------------
// Node classes. Construct through the factory functions below; they are
// exposed so the rewriter can inspect operator arguments.
// ---------------------------------------------------------------------------

/// Leaf: reads a named X-Relation from the environment.
class ScanNode final : public PlanNode {
 public:
  explicit ScanNode(std::string relation)
      : PlanNode(PlanKind::kScan), relation_(std::move(relation)) {}

  const std::string& relation() const { return relation_; }

  std::vector<PlanPtr> children() const override { return {}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override { return relation_; }

 private:
  std::string relation_;
};

/// union / intersect / difference.
class SetOpNode final : public PlanNode {
 public:
  SetOpNode(PlanKind kind, PlanPtr left, PlanPtr right)
      : PlanNode(kind), left_(std::move(left)), right_(std::move(right)) {}

  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }

  std::vector<PlanPtr> children() const override { return {left_, right_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
};

class ProjectNode final : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<std::string> attributes)
      : PlanNode(PlanKind::kProject),
        child_(std::move(child)),
        attributes_(std::move(attributes)) {}

  const PlanPtr& child() const { return child_; }
  const std::vector<std::string>& attributes() const { return attributes_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  std::vector<std::string> attributes_;
};

class SelectNode final : public PlanNode {
 public:
  SelectNode(PlanPtr child, FormulaPtr formula)
      : PlanNode(PlanKind::kSelect),
        child_(std::move(child)),
        formula_(std::move(formula)) {}

  const PlanPtr& child() const { return child_; }
  const FormulaPtr& formula() const { return formula_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  FormulaPtr formula_;
};

class RenameNode final : public PlanNode {
 public:
  RenameNode(PlanPtr child, std::string from, std::string to)
      : PlanNode(PlanKind::kRename),
        child_(std::move(child)),
        from_(std::move(from)),
        to_(std::move(to)) {}

  const PlanPtr& child() const { return child_; }
  const std::string& from() const { return from_; }
  const std::string& to() const { return to_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  std::string from_;
  std::string to_;
};

class JoinNode final : public PlanNode {
 public:
  JoinNode(PlanPtr left, PlanPtr right)
      : PlanNode(PlanKind::kJoin),
        left_(std::move(left)),
        right_(std::move(right)) {}

  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }

  std::vector<PlanPtr> children() const override { return {left_, right_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
};

/// α_{A:=B} (source attribute) or α_{A:=a} (constant).
class AssignNode final : public PlanNode {
 public:
  /// Assignment from a real attribute.
  AssignNode(PlanPtr child, std::string target, std::string source_attribute)
      : PlanNode(PlanKind::kAssign),
        child_(std::move(child)),
        target_(std::move(target)),
        source_attribute_(std::move(source_attribute)) {}

  /// Assignment of a constant.
  AssignNode(PlanPtr child, std::string target, Value constant)
      : PlanNode(PlanKind::kAssign),
        child_(std::move(child)),
        target_(std::move(target)),
        constant_(std::move(constant)) {}

  /// Tag type selecting the parameter-assignment constructor.
  struct ParamTag {};
  /// Assignment of a named parameter (`:name`), bound before execution.
  AssignNode(PlanPtr child, std::string target, std::string parameter,
             ParamTag)
      : PlanNode(PlanKind::kAssign),
        child_(std::move(child)),
        target_(std::move(target)),
        parameter_(std::move(parameter)) {}

  const PlanPtr& child() const { return child_; }
  const std::string& target() const { return target_; }
  bool from_parameter() const { return !parameter_.empty(); }
  bool from_attribute() const {
    return constant_ == std::nullopt && !from_parameter();
  }
  const std::string& source_attribute() const { return source_attribute_; }
  const std::string& parameter() const { return parameter_; }
  const Value& constant() const { return *constant_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  std::string target_;
  std::string source_attribute_;
  std::string parameter_;
  std::optional<Value> constant_;
};

/// β_bp: invokes the binding pattern identified by prototype name (and
/// optionally the service attribute, when a schema carries several
/// patterns for the same prototype).
class InvokeNode final : public PlanNode {
 public:
  InvokeNode(PlanPtr child, std::string prototype,
             std::string service_attribute = {})
      : PlanNode(PlanKind::kInvoke),
        child_(std::move(child)),
        prototype_(std::move(prototype)),
        service_attribute_(std::move(service_attribute)) {}

  const PlanPtr& child() const { return child_; }
  const std::string& prototype() const { return prototype_; }
  const std::string& service_attribute() const { return service_attribute_; }

  /// Resolves the binding pattern against the child's schema.
  Result<BindingPattern> ResolveBindingPattern(
      const ExtendedSchema& child_schema) const;

  /// True if the resolved pattern is active. Conservatively true when the
  /// schema cannot be inferred.
  bool IsActive(const Environment& env, const StreamStore* streams) const;

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  std::string prototype_;
  std::string service_attribute_;
};

/// γ_{group_by; aggregates}: grouping with aggregation (count/sum/avg/
/// min/max) — the extension the §1.2 "mean temperature" queries need.
class AggregateNode final : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<std::string> group_by,
                std::vector<AggregateSpec> aggregates)
      : PlanNode(PlanKind::kAggregate),
        child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {}

  const PlanPtr& child() const { return child_; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggregateSpec> aggregates_;
};

/// How a window bounds the stream history it exposes.
enum class WindowMode {
  kTime,  ///< W[p]: tuples inserted during the last `p` instants (§4.2).
  kRows,  ///< W[rows n]: the last `n` inserted tuples (CQL's ROWS n).
};

/// W[period] / W[rows n]: leaf over a named infinite XD-Relation,
/// re-entering the finite algebra with a bounded slice of the stream.
class WindowNode final : public PlanNode {
 public:
  WindowNode(std::string stream, Timestamp period,
             WindowMode mode = WindowMode::kTime)
      : PlanNode(PlanKind::kWindow),
        stream_(std::move(stream)),
        period_(period),
        mode_(mode) {}

  const std::string& stream() const { return stream_; }
  Timestamp period() const { return period_; }
  WindowMode mode() const { return mode_; }

  std::vector<PlanPtr> children() const override { return {}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  std::string stream_;
  Timestamp period_;
  WindowMode mode_;
};

/// S[insertion|deletion|heartbeat]: converts a finite XD-Relation into
/// stream deltas (§4.2). Requires continuous evaluation (a NodeStateStore).
class StreamingNode final : public PlanNode {
 public:
  StreamingNode(PlanPtr child, StreamingType type)
      : PlanNode(PlanKind::kStreaming),
        child_(std::move(child)),
        type_(type) {}

  const PlanPtr& child() const { return child_; }
  StreamingType type() const { return type_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  Result<ExtendedSchemaPtr> InferSchema(
      const Environment& env, const StreamStore* streams) const override;
  Result<XRelation> EvaluateImpl(EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  PlanPtr child_;
  StreamingType type_;
};

// ---------------------------------------------------------------------------
// Factory functions — the idiomatic way to build plans:
//   auto q = Invoke(Assign(Select(Scan("contacts"), f), "text", msg),
//                   "sendMessage");
// ---------------------------------------------------------------------------

PlanPtr Scan(std::string relation);
PlanPtr UnionOf(PlanPtr left, PlanPtr right);
PlanPtr IntersectOf(PlanPtr left, PlanPtr right);
PlanPtr DifferenceOf(PlanPtr left, PlanPtr right);
PlanPtr Project(PlanPtr child, std::vector<std::string> attributes);
PlanPtr Select(PlanPtr child, FormulaPtr formula);
PlanPtr Rename(PlanPtr child, std::string from, std::string to);
PlanPtr Join(PlanPtr left, PlanPtr right);
PlanPtr Assign(PlanPtr child, std::string target, std::string source);
PlanPtr Assign(PlanPtr child, std::string target, Value constant);
/// α_{A := :param}: assignment of a named parameter.
PlanPtr AssignParam(PlanPtr child, std::string target,
                    std::string parameter);
PlanPtr Invoke(PlanPtr child, std::string prototype,
               std::string service_attribute = {});
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateSpec> aggregates);
PlanPtr Window(std::string stream, Timestamp period,
               WindowMode mode = WindowMode::kTime);
PlanPtr Streaming(PlanPtr child, StreamingType type);

// ---------------------------------------------------------------------------
// Whole-query helpers.
// ---------------------------------------------------------------------------

/// The result of evaluating a query: its X-Relation plus its action set
/// (Def. 8).
struct QueryResult {
  XRelation relation;
  ActionSet actions;
};

/// One-shot evaluation of `plan` against `env` at the environment's
/// current instant (or `instant` when given), collecting the action set.
Result<QueryResult> Execute(const PlanPtr& plan, Environment* env,
                            StreamStore* streams = nullptr,
                            std::optional<Timestamp> instant = std::nullopt);

/// Actions_p(q) (Def. 8): evaluates the query and returns only the action
/// set it triggers.
Result<ActionSet> ComputeActionSet(const PlanPtr& plan, Environment* env,
                                   StreamStore* streams = nullptr,
                                   std::optional<Timestamp> instant =
                                       std::nullopt);

/// True if the subtree contains an invocation of an *active* binding
/// pattern (the rewrite barrier of §3.3).
bool ContainsActiveInvoke(const PlanPtr& plan, const Environment& env,
                          const StreamStore* streams);

/// Rebuilds `plan` with `children` substituted in operand order,
/// preserving every operator argument (identity — the same PlanPtr —
/// when all children are unchanged). The structural-rewrite primitive
/// shared by the classic rewriter and the semantic rewrite pass.
Result<PlanPtr> ReplaceChildren(const PlanPtr& plan,
                                std::vector<PlanPtr> children);

namespace internal {

/// Adds to the cached process-wide `serena.op.<kind>.*` counters — the
/// same instruments `PlanNode::Evaluate` feeds. The vectorized core uses
/// this to flush per-operator metrics for the interior of a fused
/// pipeline, where the per-node `Evaluate` wrapper never runs.
void RecordOperatorMetrics(PlanKind kind, std::uint64_t evals,
                           std::uint64_t rows_out, std::uint64_t wall_ns);

}  // namespace internal

}  // namespace serena

#endif  // SERENA_ALGEBRA_PLAN_H_
