#include "algebra/aggregate.h"

#include <map>
#include <unordered_map>

#include "common/string_util.h"

namespace serena {

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kAvg:
      return "avg";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
  }
  return "?";
}

Result<AggregateFn> AggregateFnFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "count") return AggregateFn::kCount;
  if (lower == "sum") return AggregateFn::kSum;
  if (lower == "avg" || lower == "mean") return AggregateFn::kAvg;
  if (lower == "min") return AggregateFn::kMin;
  if (lower == "max") return AggregateFn::kMax;
  return Status::ParseError("unknown aggregate function: ",
                            std::string(name));
}

std::string AggregateSpec::ToString() const {
  std::string s = AggregateFnToString(fn);
  s += '(';
  s += input;
  s += ") -> ";
  s += output;
  return s;
}

namespace {

/// Output type of an aggregate over an input of type `input_type`.
Result<DataType> AggregateOutputType(AggregateFn fn, DataType input_type,
                                     const std::string& input) {
  switch (fn) {
    case AggregateFn::kCount:
      return DataType::kInt;
    case AggregateFn::kSum:
    case AggregateFn::kAvg:
      if (input_type != DataType::kInt && input_type != DataType::kReal) {
        return Status::TypeMismatch("aggregate over non-numeric attribute '",
                                    input, "'");
      }
      return fn == AggregateFn::kAvg ? DataType::kReal : input_type;
    case AggregateFn::kMin:
    case AggregateFn::kMax:
      return input_type;
  }
  return Status::Internal("unknown aggregate");
}

/// Streaming accumulator for one (group, spec) cell.
struct Accumulator {
  std::int64_t count = 0;
  double sum = 0.0;
  std::int64_t isum = 0;
  bool all_int = true;
  Value min;
  Value max;

  void Add(const Value* v) {
    ++count;
    if (v == nullptr) return;
    if (v->is_int()) {
      isum += v->int_value();
      sum += static_cast<double>(v->int_value());
    } else if (v->is_real()) {
      all_int = false;
      sum += v->real_value();
    }
    if (count == 1) {
      min = *v;
      max = *v;
    } else {
      if (*v < min) min = *v;
      if (max < *v) max = *v;
    }
  }

  Result<Value> Finish(AggregateFn fn) const {
    switch (fn) {
      case AggregateFn::kCount:
        return Value::Int(count);
      case AggregateFn::kSum:
        return all_int ? Value::Int(isum) : Value::Real(sum);
      case AggregateFn::kAvg:
        if (count == 0) return Status::Internal("avg of empty group");
        return Value::Real(sum / static_cast<double>(count));
      case AggregateFn::kMin:
        return min;
      case AggregateFn::kMax:
        return max;
    }
    return Status::Internal("unknown aggregate");
  }
};

}  // namespace

Result<ExtendedSchemaPtr> AggregateSchema(
    const ExtendedSchemaPtr& schema, const std::vector<std::string>& group_by,
    const std::vector<AggregateSpec>& aggregates) {
  if (aggregates.empty()) {
    return Status::InvalidArgument("aggregate: no aggregate columns");
  }
  std::vector<Attribute> attributes;
  for (const std::string& name : group_by) {
    const Attribute* attr = schema->FindAttribute(name);
    if (attr == nullptr || !attr->is_real()) {
      return Status::InvalidArgument(
          "aggregate: group-by attribute '", name,
          "' must be a real attribute of schema '", schema->name(), "'");
    }
    attributes.push_back(*attr);
  }
  for (const AggregateSpec& spec : aggregates) {
    if (spec.output.empty()) {
      return Status::InvalidArgument("aggregate: empty output name");
    }
    DataType input_type = DataType::kInt;
    if (!spec.input.empty()) {
      const Attribute* attr = schema->FindAttribute(spec.input);
      if (attr == nullptr || !attr->is_real()) {
        return Status::InvalidArgument(
            "aggregate: input attribute '", spec.input,
            "' must be a real attribute of schema '", schema->name(), "'");
      }
      input_type = attr->type;
    } else if (spec.fn != AggregateFn::kCount) {
      return Status::InvalidArgument("aggregate: ",
                                     AggregateFnToString(spec.fn),
                                     " requires an input attribute");
    }
    SERENA_ASSIGN_OR_RETURN(
        DataType out_type,
        AggregateOutputType(spec.fn, input_type, spec.input));
    attributes.emplace_back(spec.output, out_type, AttributeKind::kReal);
  }
  return ExtendedSchema::Create("aggregate(" + schema->name() + ")",
                                std::move(attributes));
}

Result<XRelation> Aggregate(const XRelation& r,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggregateSpec>& aggregates) {
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr schema,
      AggregateSchema(r.schema_ptr(), group_by, aggregates));

  SERENA_ASSIGN_OR_RETURN(std::vector<std::size_t> key_coords,
                          r.schema().CoordinatesOf(group_by));
  std::vector<std::size_t> input_coords(aggregates.size(), 0);
  std::vector<bool> has_input(aggregates.size(), false);
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    if (!aggregates[i].input.empty()) {
      input_coords[i] = *r.schema().CoordinateOf(aggregates[i].input);
      has_input[i] = true;
    }
  }

  // Group via the canonical sorted order of key tuples (deterministic
  // output independent of insertion order).
  std::map<Tuple, std::vector<Accumulator>> groups;
  for (const Tuple& t : r.tuples()) {
    const Tuple key = t.Project(key_coords);
    auto [it, inserted] =
        groups.try_emplace(key, aggregates.size(), Accumulator());
    std::vector<Accumulator>& accs = it->second;
    for (std::size_t i = 0; i < aggregates.size(); ++i) {
      accs[i].Add(has_input[i] ? &t[input_coords[i]] : nullptr);
    }
  }

  XRelation result(std::move(schema));
  result.Reserve(groups.size());
  for (const auto& [key, accs] : groups) {
    std::vector<Value> values(key.values());
    for (std::size_t i = 0; i < aggregates.size(); ++i) {
      SERENA_ASSIGN_OR_RETURN(Value v, accs[i].Finish(aggregates[i].fn));
      values.push_back(std::move(v));
    }
    result.InsertUnchecked(Tuple(std::move(values)));
  }
  return result;
}

}  // namespace serena
