#ifndef SERENA_ALGEBRA_VECTORIZED_H_
#define SERENA_ALGEBRA_VECTORIZED_H_

#include <cstddef>
#include <optional>

#include "common/result.h"
#include "xrel/xrelation.h"

namespace serena {

struct EvalContext;
class PlanNode;
enum class PlanKind;

/// The vectorized batch execution core (docs/VECTORIZATION.md).
///
/// `PlanNode::Evaluate` dispatches fusable operator chains here: instead
/// of materializing one `XRelation` per operator, a pipeline of cursors
/// pushes `TupleBatch`es (SERENA_BATCH_SIZE rows, default 1024) through
/// fused σ/π/ρ/α/⋈ stages and materializes only the pipeline's final
/// output. Results are byte-identical to the scalar path, which stays
/// available behind `SERENA_VECTORIZE=off` as the differential-testing
/// oracle.
namespace vec {

/// Whether batch execution is enabled. Controlled by `SERENA_VECTORIZE`
/// ("off"/"0"/"false"/"no" disable it); defaults to on. The environment
/// variable is read once per process; tests toggle via
/// `SetEnabledForTesting`.
bool Enabled();

/// Rows per batch. Controlled by `SERENA_BATCH_SIZE` (clamped to >= 1);
/// defaults to 1024.
std::size_t BatchSize();

/// Test hooks: override (or, with nullopt, restore) the env-derived
/// configuration. Process-global; tests must reset what they set.
void SetEnabledForTesting(std::optional<bool> enabled);
void SetBatchSizeForTesting(std::optional<std::size_t> batch_size);

/// True for operator kinds that start a fused pipeline (σ, π, ρ, α, ⋈).
/// Leaves (scan, window) are batch *sources* inside a pipeline but gain
/// nothing as pipeline roots; everything else stays scalar and is
/// consumed through an opaque cursor.
bool IsFusedRoot(PlanKind kind);

/// Attempts batch execution of the pipeline rooted at `node`. Returns
/// nullopt when the pipeline cannot be built (parameter assignment,
/// missing relation/stream, schema error, ...) — the caller then falls
/// back to the scalar `EvaluateImpl`, which reproduces the exact scalar
/// diagnostics. A non-nullopt result (success or runtime error) is
/// final and byte-identical to what the scalar path would produce.
std::optional<Result<XRelation>> TryExecute(const PlanNode& node,
                                            EvalContext& ctx);

}  // namespace vec
}  // namespace serena

#endif  // SERENA_ALGEBRA_VECTORIZED_H_
