#include "algebra/action.h"

namespace serena {

std::string Action::ToString() const {
  std::string s = "(";
  s += prototype;
  s += '[';
  s += service_attribute;
  s += "], ";
  s += service_ref;
  s += ", ";
  s += input.ToString();
  s += ')';
  return s;
}

std::string ActionSet::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const Action& action : actions_) {
    if (!first) s += ", ";
    first = false;
    s += action.ToString();
  }
  s += '}';
  return s;
}

}  // namespace serena
