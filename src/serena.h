#ifndef SERENA_SERENA_H_
#define SERENA_SERENA_H_

/// \file
/// Umbrella header for the Serena library — a C++ implementation of
/// "A Simple (yet Powerful) Algebra for Pervasive Environments"
/// (Gripay, Laforest, Petit; EDBT 2010).
///
/// The library models a *relational pervasive environment*: a database
/// extended with data streams and distributed services. Relation schemas
/// carry *virtual attributes* (declared, valueless) and *binding
/// patterns* (which service prototype realizes them, through which
/// per-tuple service reference). The Serena algebra adds two realization
/// operators — assignment α and invocation β — to the classical ones,
/// with action sets capturing the side effects of active services and an
/// optimizer that never reorders across them.
///
/// Layers, bottom to top (each usable on its own):
///  - `common/`, `types/`: Status/Result, values, tuples, logical time.
///  - `schema/`, `xrel/`: extended schemas (Def. 2-4), X-Relations,
///    the environment.
///  - `service/`: prototypes (active/passive/streaming), services, the
///    registry with per-instant deterministic invocation (Def. 1, §3.2).
///  - `algebra/`: Table 3 operators, plans, action sets, aggregation,
///    EXPLAIN, parameters.
///  - `analysis/`: the multi-pass static analyzer — coded diagnostics
///    (SER0xx), plan verification, cross-query dependency linting, and
///    the offline script linter behind `serena_lint`
///    (see docs/ANALYSIS.md).
///  - `rewrite/`: Table 5 rules, cost model, optimizer, Def. 9
///    equivalence checking.
///  - `stream/`: XD-Relations, windows, streaming operators, the
///    continuous executor (§4).
///  - `ddl/`: the Serena DDL and Algebra Language.
///  - `obs/`: observability — metrics registry, latency histograms,
///    tick/step tracing, and the plumbing behind EXPLAIN ANALYZE
///    (see docs/OBSERVABILITY.md).
///  - `pems/`: the full Pervasive Environment Management System over a
///    simulated network (Figure 1).
///  - `env/`: simulated devices and the paper's experiment scenarios.
///
/// Most applications only need:
/// ```
/// #include "serena.h"
/// auto pems = serena::Pems::Create().MoveValueOrDie();
/// pems->tables().ExecuteDdl("...");
/// pems->queries().ExecuteOneShot("...");
/// ```

#include "algebra/aggregate.h"
#include "algebra/explain.h"
#include "algebra/parameters.h"
#include "algebra/plan.h"
#include "analysis/analyzer.h"
#include "analysis/lint_runner.h"
#include "analysis/query_set.h"
#include "ddl/algebra_parser.h"
#include "ddl/catalog.h"
#include "ddl/ddl_parser.h"
#include "ddl/dump.h"
#include "env/prototypes.h"
#include "env/scenario.h"
#include "env/sim_services.h"
#include "env/synthetic_service.h"
#include "io/csv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pems/monitor.h"
#include "pems/pems.h"
#include "rewrite/equivalence.h"
#include "rewrite/rewriter.h"
#include "service/lambda_service.h"
#include "stream/executor.h"

#endif  // SERENA_SERENA_H_
