#include "analysis/lint_runner.h"

#include <set>
#include <sstream>
#include <utility>

#include "analysis/analyzer.h"
#include "analysis/query_set.h"
#include "common/string_util.h"
#include "ddl/algebra_parser.h"
#include "pems/pems.h"

namespace serena {

namespace {

bool IsDdl(const std::string& text) {
  std::istringstream in(text);
  std::string head;
  in >> head;
  const std::string lower = ToLower(head);
  return lower == "prototype" || lower == "service" || lower == "extended" ||
         lower == "insert" || lower == "delete" || lower == "drop";
}

/// Collects everything one lint run accumulates.
class LintRun {
 public:
  explicit LintRun(Pems* pems) : pems_(pems) {}

  void Statement(int number, const std::string& statement) {
    if (statement[0] == '\\') {
      Directive(number, statement);
      return;
    }
    if (IsDdl(statement)) {
      const Status status = pems_->tables().ExecuteDdl(statement);
      if (!status.ok()) ScriptError(number, status.message());
      return;
    }
    std::string text = statement;
    if (!text.empty() && text.back() == ';') text.pop_back();
    auto plan = ParseAlgebra(text);
    if (!plan.ok()) {
      ScriptError(number, plan.status().message());
      return;
    }
    AnalyzerOptions options;
    options.context = AnalysisContext::kOneShot;
    Append(AnalyzePlan(*plan, pems_->env(), &pems_->streams(), options)
               .ValueOrDie(),
           /*query=*/{});
  }

  std::vector<Diagnostic> Finish() {
    QuerySetOptions options;
    options.source_fed_streams = {source_fed_.begin(), source_fed_.end()};
    auto set_diagnostics = AnalyzeQuerySet(queries_, options).ValueOrDie();
    diagnostics_.insert(diagnostics_.end(), set_diagnostics.begin(),
                        set_diagnostics.end());
    return std::move(diagnostics_);
  }

 private:
  void Directive(int number, const std::string& statement) {
    std::istringstream in(statement);
    std::string command;
    in >> command;
    if (command == "\\source") {
      std::string stream;
      while (in >> stream) source_fed_.insert(stream);
      return;
    }
    if (command != "\\register") return;  // Session directives: not lintable.

    std::string name;
    in >> name;
    std::string stream;
    std::streampos before_into = in.tellg();
    std::string maybe_into;
    if (in >> maybe_into) {
      if (maybe_into == "into") {
        in >> stream;
      } else {
        in.seekg(before_into);
      }
    } else {
      in.clear();
    }
    std::string expr;
    std::getline(in, expr);
    const std::string text(Trim(expr));
    if (name.empty() || text.empty()) {
      ScriptError(number,
                  "\\register needs a name and an algebra expression");
      return;
    }
    for (const QuerySetEntry& entry : queries_) {
      if (entry.name == name) {
        ScriptError(number, "continuous query '" + name +
                                "' is registered twice");
        return;
      }
    }
    auto plan = ParseAlgebra(text);
    if (!plan.ok()) {
      ScriptError(number, plan.status().message());
      return;
    }
    AnalyzerOptions options;
    options.context = AnalysisContext::kContinuous;
    auto diagnostics =
        AnalyzePlan(*plan, pems_->env(), &pems_->streams(), options)
            .ValueOrDie();
    const bool plan_ok = IsValid(diagnostics);
    Append(std::move(diagnostics), name);

    std::vector<std::string> feeds;
    if (!stream.empty()) {
      feeds.push_back(stream);
      // Mirror RegisterContinuousInto: the derived stream exists for
      // downstream windows once its first producer is registered.
      if (plan_ok) DeriveStream(number, name, *plan, stream);
    }
    queries_.push_back(QuerySetEntry{name, *plan, std::move(feeds)});
  }

  void DeriveStream(int number, const std::string& name, const PlanPtr& plan,
                    const std::string& stream) {
    auto schema = plan->InferSchema(pems_->env(), &pems_->streams());
    if (!schema.ok()) {
      ScriptError(number, schema.status().message());
      return;
    }
    std::vector<Attribute> real_attrs;
    for (const Attribute& attr : (*schema)->attributes()) {
      if (attr.is_real()) real_attrs.push_back(attr);
    }
    if (!pems_->streams().HasStream(stream)) {
      auto stream_schema = ExtendedSchema::Create(stream, real_attrs);
      if (stream_schema.ok()) {
        (void)pems_->streams().AddStream(*stream_schema);
      } else {
        ScriptError(number, stream_schema.status().message());
      }
      return;
    }
    const XDRelation* existing =
        pems_->streams().GetStream(stream).ValueOrDie();
    if (real_attrs != existing->schema().attributes()) {
      diagnostics_.push_back(Diagnostic{
          DiagCode::kSchemaMismatch, Diagnostic::Severity::kError,
          /*node=*/{},
          "derived stream '" + stream +
              "' has a schema incompatible with query '" + name + "'",
          /*hint=*/{}, name});
    }
  }

  void ScriptError(int number, const std::string& message) {
    diagnostics_.push_back(Diagnostic{
        DiagCode::kScriptStatement, Diagnostic::Severity::kError,
        "statement " + std::to_string(number), message, /*hint=*/{},
        /*query=*/{}});
  }

  void Append(std::vector<Diagnostic> diagnostics, const std::string& query) {
    for (Diagnostic& diagnostic : diagnostics) {
      if (diagnostic.query.empty()) diagnostic.query = query;
      diagnostics_.push_back(std::move(diagnostic));
    }
  }

  Pems* pems_;
  std::vector<Diagnostic> diagnostics_;
  std::vector<QuerySetEntry> queries_;
  std::set<std::string> source_fed_;
};

}  // namespace

std::vector<std::string> SplitScript(std::string_view script) {
  std::vector<std::string> statements;
  std::string buffer;
  std::istringstream lines{std::string(script)};
  std::string line;
  while (std::getline(lines, line)) {
    const std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#' ||
        trimmed.rfind("--", 0) == 0) {
      continue;
    }
    if (Trim(buffer).empty() && trimmed[0] == '\\') {
      statements.push_back(trimmed);
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Pull out every complete (';'-terminated) statement, tolerating ';'
    // inside single-quoted literals.
    std::size_t start = 0;
    bool in_quote = false;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i] == '\'') in_quote = !in_quote;
      if (buffer[i] == ';' && !in_quote) {
        const std::string statement(
            Trim(std::string_view(buffer).substr(start, i - start + 1)));
        if (!statement.empty()) statements.push_back(statement);
        start = i + 1;
      }
    }
    buffer.erase(0, start);
    // Don't let leftover whitespace (the newline after a ';') mask the
    // start of a fresh statement or directive.
    if (Trim(buffer).empty()) buffer.clear();
  }
  const std::string tail(Trim(buffer));
  if (!tail.empty()) statements.push_back(tail);
  return statements;
}

Result<LintResult> LintScript(std::string_view script) {
  SERENA_ASSIGN_OR_RETURN(std::unique_ptr<Pems> pems, Pems::Create());
  LintResult result;
  LintRun run(pems.get());
  int number = 0;
  for (const std::string& statement : SplitScript(script)) {
    ++number;
    run.Statement(number, statement);
  }
  result.statements = number;
  result.diagnostics = run.Finish();
  return result;
}

}  // namespace serena
