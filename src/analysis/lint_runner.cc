#include "analysis/lint_runner.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/session.h"
#include "common/string_util.h"
#include "ddl/algebra_parser.h"
#include "pems/pems.h"

namespace serena {

namespace {

bool IsDdl(const std::string& text) {
  std::istringstream in(text);
  std::string head;
  in >> head;
  const std::string lower = ToLower(head);
  return lower == "prototype" || lower == "service" || lower == "extended" ||
         lower == "insert" || lower == "delete" || lower == "drop";
}

/// Collects everything one lint run accumulates. Plan analysis and the
/// end-of-script cross-query lint go through the shared
/// `analysis::Session`, which also applies the severity configuration.
class LintRun {
 public:
  LintRun(Pems* pems, analysis::Session* session)
      : pems_(pems), session_(session) {}

  void Statement(int number, const std::string& statement) {
    if (statement[0] == '\\') {
      Directive(number, statement);
      return;
    }
    if (IsDdl(statement)) {
      const Status status = pems_->tables().ExecuteDdl(statement);
      if (!status.ok()) ScriptError(number, status.message());
      return;
    }
    std::string text = statement;
    if (!text.empty() && text.back() == ';') text.pop_back();
    auto plan = ParseAlgebra(text);
    if (!plan.ok()) {
      ScriptError(number, plan.status().message());
      return;
    }
    Append(session_->AnalyzePlan(*plan, AnalysisContext::kOneShot)
               .ValueOrDie(),
           /*query=*/{}, number);
  }

  std::vector<Diagnostic> Finish() {
    session_->mutable_options().source_fed_streams = {source_fed_.begin(),
                                                      source_fed_.end()};
    auto set_diagnostics = session_->LintQuerySet().ValueOrDie();
    diagnostics_.insert(diagnostics_.end(),
                        std::make_move_iterator(set_diagnostics.begin()),
                        std::make_move_iterator(set_diagnostics.end()));
    return std::move(diagnostics_);
  }

 private:
  void Directive(int number, const std::string& statement) {
    std::istringstream in(statement);
    std::string command;
    in >> command;
    if (command == "\\source") {
      // `\source STREAM [ROWS] ...` — all-digit tokens are pump rates
      // (rows per tick), not stream names.
      std::string token;
      while (in >> token) {
        const bool is_rate =
            !token.empty() &&
            std::all_of(token.begin(), token.end(),
                        [](unsigned char c) { return std::isdigit(c); });
        if (!is_rate) source_fed_.insert(token);
      }
      return;
    }
    if (command != "\\register") return;  // Session directives: not lintable.

    std::string name;
    in >> name;
    std::string stream;
    std::streampos before_into = in.tellg();
    std::string maybe_into;
    if (in >> maybe_into) {
      if (maybe_into == "into") {
        in >> stream;
      } else {
        in.seekg(before_into);
      }
    } else {
      in.clear();
    }
    std::string expr;
    std::getline(in, expr);
    const std::string text(Trim(expr));
    if (name.empty() || text.empty()) {
      ScriptError(number,
                  "\\register needs a name and an algebra expression");
      return;
    }
    for (const std::string& existing : session_->QueryNames()) {
      if (existing == name) {
        ScriptError(number, "continuous query '" + name +
                                "' is registered twice");
        return;
      }
    }
    auto plan = ParseAlgebra(text);
    if (!plan.ok()) {
      ScriptError(number, plan.status().message());
      return;
    }
    auto diagnostics =
        session_->AnalyzePlan(*plan, AnalysisContext::kContinuous)
            .ValueOrDie();
    const bool plan_ok = IsValid(diagnostics);
    Append(std::move(diagnostics), name, number);

    std::vector<std::string> feeds;
    if (!stream.empty()) {
      feeds.push_back(stream);
      // Mirror RegisterContinuousInto: the derived stream exists for
      // downstream windows once its first producer is registered.
      if (plan_ok) DeriveStream(number, name, *plan, stream);
    }
    session_->CommitQuery(name, *plan, std::move(feeds));
  }

  void DeriveStream(int number, const std::string& name, const PlanPtr& plan,
                    const std::string& stream) {
    auto schema = plan->InferSchema(pems_->env(), &pems_->streams());
    if (!schema.ok()) {
      ScriptError(number, schema.status().message());
      return;
    }
    std::vector<Attribute> real_attrs;
    for (const Attribute& attr : (*schema)->attributes()) {
      if (attr.is_real()) real_attrs.push_back(attr);
    }
    if (!pems_->streams().HasStream(stream)) {
      auto stream_schema = ExtendedSchema::Create(stream, real_attrs);
      if (stream_schema.ok()) {
        (void)pems_->streams().AddStream(*stream_schema);
      } else {
        ScriptError(number, stream_schema.status().message());
      }
      return;
    }
    const XDRelation* existing =
        pems_->streams().GetStream(stream).ValueOrDie();
    if (real_attrs != existing->schema().attributes()) {
      Diagnostic diagnostic{
          DiagCode::kSchemaMismatch, Diagnostic::Severity::kError,
          /*node=*/{},
          "derived stream '" + stream +
              "' has a schema incompatible with query '" + name + "'",
          /*hint=*/{}, name};
      diagnostic.statement = number;
      diagnostics_.push_back(std::move(diagnostic));
    }
  }

  void ScriptError(int number, const std::string& message) {
    Diagnostic diagnostic{
        DiagCode::kScriptStatement, Diagnostic::Severity::kError,
        "statement " + std::to_string(number), message, /*hint=*/{},
        /*query=*/{}};
    diagnostic.statement = number;
    diagnostics_.push_back(std::move(diagnostic));
  }

  void Append(std::vector<Diagnostic> diagnostics, const std::string& query,
              int number) {
    for (Diagnostic& diagnostic : diagnostics) {
      if (diagnostic.query.empty()) diagnostic.query = query;
      if (diagnostic.statement == 0) diagnostic.statement = number;
      diagnostics_.push_back(std::move(diagnostic));
    }
  }

  Pems* pems_;
  analysis::Session* session_;
  std::vector<Diagnostic> diagnostics_;
  std::set<std::string> source_fed_;
};

}  // namespace

std::vector<std::string> SplitScript(std::string_view script) {
  std::vector<std::string> statements;
  std::string buffer;
  std::istringstream lines{std::string(script)};
  std::string line;
  while (std::getline(lines, line)) {
    const std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#' ||
        trimmed.rfind("--", 0) == 0) {
      continue;
    }
    if (Trim(buffer).empty() && trimmed[0] == '\\') {
      statements.push_back(trimmed);
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Pull out every complete (';'-terminated) statement, tolerating ';'
    // inside single-quoted literals.
    std::size_t start = 0;
    bool in_quote = false;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i] == '\'') in_quote = !in_quote;
      if (buffer[i] == ';' && !in_quote) {
        const std::string statement(
            Trim(std::string_view(buffer).substr(start, i - start + 1)));
        if (!statement.empty()) statements.push_back(statement);
        start = i + 1;
      }
    }
    buffer.erase(0, start);
    // Don't let leftover whitespace (the newline after a ';') mask the
    // start of a fresh statement or directive.
    if (Trim(buffer).empty()) buffer.clear();
  }
  const std::string tail(Trim(buffer));
  if (!tail.empty()) statements.push_back(tail);
  return statements;
}

Result<LintResult> LintScript(std::string_view script) {
  return LintScript(script, analysis::SeverityConfig{});
}

Result<LintResult> LintScript(std::string_view script,
                              const analysis::SeverityConfig& severity) {
  SERENA_ASSIGN_OR_RETURN(std::unique_ptr<Pems> pems, Pems::Create());
  analysis::AnalyzeOptions options;
  options.severity = severity;
  analysis::Session session(&pems->env(), &pems->streams(), options);
  LintResult result;
  LintRun run(pems.get(), &session);
  int number = 0;
  for (const std::string& statement : SplitScript(script)) {
    ++number;
    run.Statement(number, statement);
  }
  result.statements = number;
  result.diagnostics = run.Finish();
  return result;
}

namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// First occurrence of `token` in `text` at or after `from` whose
/// neighbors are not identifier characters (so fixing `contact` leaves
/// `contacts` alone). npos when absent.
std::size_t FindToken(std::string_view text, std::string_view token,
                      std::size_t from) {
  if (token.empty()) return std::string_view::npos;
  while (from < text.size()) {
    const std::size_t pos = text.find(token, from);
    if (pos == std::string_view::npos) return pos;
    const std::size_t end = pos + token.size();
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// One lint-then-apply pass (the fixpoint loop in `FixScript` drives it).
Result<FixResult> FixOnce(std::string_view script,
                          const analysis::SeverityConfig& severity) {
  SERENA_ASSIGN_OR_RETURN(const LintResult lint, LintScript(script, severity));

  // Locate each statement's span in the original text. SplitScript trims
  // statements and drops comment lines, so a statement with an interior
  // comment is not a contiguous substring — its fixes are skipped.
  const std::vector<std::string> statements = SplitScript(script);
  const std::string text(script);
  constexpr std::size_t kNpos = std::string::npos;
  std::vector<std::pair<std::size_t, std::size_t>> spans(statements.size(),
                                                         {kNpos, 0});
  std::size_t offset = 0;
  for (std::size_t i = 0; i < statements.size(); ++i) {
    const std::size_t pos = text.find(statements[i], offset);
    if (pos == kNpos) continue;
    spans[i] = {pos, statements[i].size()};
    offset = pos + statements[i].size();
  }

  struct Edit {
    std::size_t pos;
    std::size_t len;
    std::string replacement;
  };
  std::vector<Edit> edits;
  const auto overlaps_existing = [&edits](std::size_t pos, std::size_t len) {
    for (const Edit& edit : edits) {
      if (pos < edit.pos + edit.len && edit.pos < pos + len) return true;
    }
    return false;
  };
  for (const Diagnostic& diagnostic : lint.diagnostics) {
    if (!diagnostic.has_fix() || diagnostic.statement <= 0 ||
        static_cast<std::size_t>(diagnostic.statement) > spans.size()) {
      continue;
    }
    const auto [span_pos, span_len] = spans[diagnostic.statement - 1];
    if (span_pos == kNpos) continue;
    const std::string_view statement =
        std::string_view(text).substr(span_pos, span_len);
    std::size_t from = 0;
    std::size_t pos;
    while ((pos = FindToken(statement, diagnostic.fix_original, from)) !=
           std::string_view::npos) {
      if (!overlaps_existing(span_pos + pos, diagnostic.fix_original.size())) {
        break;
      }
      from = pos + 1;
    }
    if (pos == std::string_view::npos) continue;
    edits.push_back(Edit{span_pos + pos, diagnostic.fix_original.size(),
                         diagnostic.fix_replacement});
  }

  // Back-to-front so earlier positions stay valid while replacing.
  std::sort(edits.begin(), edits.end(),
            [](const Edit& a, const Edit& b) { return a.pos > b.pos; });
  FixResult result;
  result.script = text;
  for (const Edit& edit : edits) {
    result.script.replace(edit.pos, edit.len, edit.replacement);
  }
  result.fixes_applied = static_cast<int>(edits.size());
  return result;
}

}  // namespace

Result<FixResult> FixScript(std::string_view script) {
  return FixScript(script, analysis::SeverityConfig{});
}

Result<FixResult> FixScript(std::string_view script,
                            const analysis::SeverityConfig& severity) {
  // Iterate to a fixpoint: applying one fix can reveal the next (a
  // realized attribute enabling a later statement's analysis, say), and
  // idempotency — FixScript of its own output applies nothing — is part
  // of the contract `serena_lint --fix` relies on. The pass cap bounds
  // pathological fix cycles; scripts hitting it keep the last text.
  constexpr int kMaxPasses = 8;
  FixResult total;
  total.script = std::string(script);
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    SERENA_ASSIGN_OR_RETURN(FixResult once, FixOnce(total.script, severity));
    total.script = std::move(once.script);
    if (once.fixes_applied == 0) break;
    total.fixes_applied += once.fixes_applied;
  }
  return total;
}

std::string UnifiedDiff(std::string_view original, std::string_view updated,
                        std::string_view from_name,
                        std::string_view to_name) {
  if (original == updated) return {};
  const std::vector<std::string> a = SplitLines(original);
  const std::vector<std::string> b = SplitLines(updated);
  const std::size_t n = a.size();
  const std::size_t m = b.size();

  // Longest-common-subsequence table; scripts are small, O(n·m) is fine.
  std::vector<std::vector<std::size_t>> lcs(n + 1,
                                            std::vector<std::size_t>(m + 1));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j]
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }

  struct Op {
    char tag;  // ' ' keep, '-' delete, '+' insert.
    const std::string* line;
  };
  std::vector<Op> ops;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      ops.push_back(Op{' ', &a[i++]});
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      ops.push_back(Op{'-', &a[i++]});
    } else {
      ops.push_back(Op{'+', &b[j++]});
    }
  }
  while (i < n) ops.push_back(Op{'-', &a[i++]});
  while (j < m) ops.push_back(Op{'+', &b[j++]});

  constexpr std::size_t kContext = 3;
  std::string out;
  out += "--- ";
  out += from_name;
  out += "\n+++ ";
  out += to_name;
  out += '\n';

  // Group changed ops into hunks, padding each side with kContext lines
  // of unchanged context and merging hunks whose gap fits within it.
  std::size_t k = 0;
  std::size_t a_line = 1;  // 1-based line numbers of ops[k].
  std::size_t b_line = 1;
  while (k < ops.size()) {
    if (ops[k].tag == ' ') {
      ++k;
      ++a_line;
      ++b_line;
      continue;
    }
    // Hunk op-range [start, end): expand end over changes separated by at
    // most 2·kContext unchanged lines.
    std::size_t start = k;
    std::size_t lead = 0;
    while (start > 0 && lead < kContext && ops[start - 1].tag == ' ') {
      --start;
      ++lead;
    }
    std::size_t end = k + 1;
    std::size_t gap = 0;
    for (std::size_t scan = k + 1; scan < ops.size(); ++scan) {
      if (ops[scan].tag == ' ') {
        ++gap;
        if (gap > 2 * kContext) break;
      } else {
        gap = 0;
        end = scan + 1;
      }
    }
    std::size_t trail = 0;
    while (end < ops.size() && trail < kContext && ops[end].tag == ' ') {
      ++end;
      ++trail;
    }

    const std::size_t a_start = a_line - lead;
    const std::size_t b_start = b_line - lead;
    std::size_t a_count = 0;
    std::size_t b_count = 0;
    for (std::size_t scan = start; scan < end; ++scan) {
      if (ops[scan].tag != '+') ++a_count;
      if (ops[scan].tag != '-') ++b_count;
    }
    out += "@@ -" + std::to_string(a_count == 0 ? a_start - 1 : a_start) +
           "," + std::to_string(a_count) + " +" +
           std::to_string(b_count == 0 ? b_start - 1 : b_start) + "," +
           std::to_string(b_count) + " @@\n";
    for (std::size_t scan = start; scan < end; ++scan) {
      out += ops[scan].tag;
      out += *ops[scan].line;
      out += '\n';
    }
    // Advance the running line numbers over everything just emitted
    // beyond ops[k] (the lead context before k was already counted).
    for (std::size_t scan = k; scan < end; ++scan) {
      if (ops[scan].tag != '+') ++a_line;
      if (ops[scan].tag != '-') ++b_line;
    }
    k = end;
  }
  return out;
}

}  // namespace serena
