#ifndef SERENA_ANALYSIS_DIAGNOSTICS_H_
#define SERENA_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace serena {

/// Stable diagnostic codes of the static analyzer (docs/ANALYSIS.md).
///
/// Numbering is grouped by pass:
///   SER00x  schema / operator well-formedness (Table 3, Def. 2)
///   SER02x  realization dataflow (Def. 4)
///   SER03x  side effects of active services (Def. 8, Example 6)
///   SER04x  cross-query dependency lints (§4.1 composition)
///   SER05x  cost / cardinality lints
///   SER06x  script-level failures (the offline lint runner)
///
/// Codes are part of the public contract: tests and downstream tooling
/// match on them, so existing codes must never be renumbered.
enum class DiagCode {
  kUnknownRelation = 1,       ///< SER001: scan of a missing relation.
  kUnknownStream = 2,         ///< SER002: window over a missing stream.
  kInvalidFormula = 3,        ///< SER003: bad selection formula.
  kInvalidOperatorArgs = 4,   ///< SER004: bad operator arguments.
  kAssignToReal = 5,          ///< SER005: α targets a real attribute.
  kUnknownBindingPattern = 6, ///< SER006: β's pattern absent/ambiguous.
  kUnrealizedInput = 7,       ///< SER007: β input attribute still virtual.
  kSchemaMismatch = 8,        ///< SER008: set op / join incompatibility.
  kStreamingContext = 9,      ///< SER009: S[...] outside continuous eval.
  kSchemaInference = 10,      ///< SER010: other schema-inference failure.
  kVirtualRead = 20,          ///< SER020: virtual attribute read (Def. 4).
  kDeadRealization = 21,      ///< SER021: invocation output never used.
  kActiveUnderFilter = 30,    ///< SER030: ACTIVE invoke under a filter.
  kActiveOnlyFiltering = 31,  ///< SER031: ACTIVE invoke feeds a filter only.
  kQueryCycle = 40,           ///< SER040: feeds/reads cycle across queries.
  kDanglingSource = 41,       ///< SER041: window over a producer-less stream.
  kWriterConflict = 42,       ///< SER042: two queries feed one stream.
  kCartesianJoin = 50,        ///< SER050: join degrades to Cartesian product.
  kUnboundedWindow = 51,      ///< SER051: empty or effectively unbounded W.
  kPatternlessProjection = 52,///< SER052: π eliminates all binding patterns.
  kScriptStatement = 60,      ///< SER060: script statement failed (lint).
};

/// "SER001", "SER020", ... — the stable rendering of a code.
const char* DiagCodeId(DiagCode code);

/// The inverse of `DiagCodeId`: parses "SER021" (case-insensitive) back
/// into its code. nullopt for unknown ids — severity configuration
/// rejects them with a proper error instead of silently ignoring typos.
std::optional<DiagCode> DiagCodeFromId(std::string_view id);

/// One finding from the static analyzer.
///
/// This is the single diagnostic type of the codebase: plan analysis,
/// cross-query linting and the offline script linter all produce it.
struct Diagnostic {
  enum class Severity { kError, kWarning };

  Diagnostic() = default;
  Diagnostic(DiagCode code, Severity severity, std::string node,
             std::string message, std::string hint = {},
             std::string query = {})
      : code(code),
        severity(severity),
        node(std::move(node)),
        message(std::move(message)),
        hint(std::move(hint)),
        query(std::move(query)) {}

  DiagCode code = DiagCode::kSchemaInference;
  Severity severity = Severity::kError;
  /// The operator the finding anchors to (rendered label), e.g.
  /// "select[temperature > 30]" — empty for query-set findings.
  std::string node;
  std::string message;
  /// Optional fix-it hint ("realize it with invoke[getTemperature]").
  std::string hint;
  /// Optional continuous-query name (cross-query findings).
  std::string query;
  /// Optional *structured* fix: replace the first token-boundary
  /// occurrence of `fix_original` in the offending statement with
  /// `fix_replacement` (the machine-applicable core of `hint`, applied
  /// by `FixScript` / `serena_lint --fix`).
  std::string fix_original;
  std::string fix_replacement;
  /// 1-based statement number within the linted script; 0 when the
  /// finding is not tied to one statement (plan analysis outside the
  /// lint runner, cross-query findings).
  int statement = 0;

  bool is_error() const { return severity == Severity::kError; }
  bool has_fix() const { return !fix_original.empty(); }

  /// "error[SER005] at assign[temp]: ... (hint: ...)".
  std::string ToString() const;
};

/// True if no kError diagnostics are present.
bool IsValid(const std::vector<Diagnostic>& diagnostics);

std::size_t CountErrors(const std::vector<Diagnostic>& diagnostics);
std::size_t CountWarnings(const std::vector<Diagnostic>& diagnostics);

/// Multi-line human rendering, one finding per line (empty string for no
/// findings).
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics);

/// Compact JSON array for the obs layer / `serena_lint --json`:
/// [{"code":"SER001","severity":"error","node":"...","message":"...",
///   "hint":"...","query":"...","statement":N,
///   "fix":{"original":"...","replacement":"..."}}, ...] — hint, query,
/// statement and fix keys only when set.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace serena

#endif  // SERENA_ANALYSIS_DIAGNOSTICS_H_
