#ifndef SERENA_ANALYSIS_QUERY_SET_H_
#define SERENA_ANALYSIS_QUERY_SET_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "analysis/diagnostics.h"

namespace serena {

/// One registered (or about-to-be-registered) continuous query, seen by
/// the cross-query lint: its name, plan, and the streams its sink feeds.
/// The streams it *reads* are derived from the plan's Window leaves.
struct QuerySetEntry {
  std::string name;
  PlanPtr plan;
  /// Streams this query's sink appends to (derived streams).
  std::vector<std::string> feeds;
};

struct QuerySetOptions {
  /// Streams fed by executor sources (sensor pumps, pollers) rather than
  /// by queries — these are legitimate producers, so windows over them
  /// are not dangling.
  std::vector<std::string> source_fed_streams;
  bool include_warnings = true;
};

/// The streams `plan` reads through Window leaves, sorted and deduplicated.
std::vector<std::string> CollectWindowReads(const PlanPtr& plan);

/// Lints the feeds/reads graph over a whole continuous-query set — the
/// checks that only make sense across queries (§4.1 composition):
///
///  - SER040 (error): a cycle in the dependency graph (query A feeds a
///    stream query B reads, ... back to A — including self-loops). The
///    per-tick barrier schedule has no valid order for such a set, and
///    results would depend on arbitrary tie-breaking.
///  - SER041 (warning): a window over a stream no query feeds and no
///    declared source feeds — the query can never produce anything.
///  - SER042 (error): two queries feed the same derived stream. Appends
///    from both writers interleave per tick, so readers observe a merge
///    whose content depends on scheduling.
///
/// Diagnostics carry the offending query in their `query` field.
Result<std::vector<Diagnostic>> AnalyzeQuerySet(
    const std::vector<QuerySetEntry>& queries,
    const QuerySetOptions& options = {});

}  // namespace serena

#endif  // SERENA_ANALYSIS_QUERY_SET_H_
