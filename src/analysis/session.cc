#include "analysis/session.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace serena {
namespace analysis {

namespace {

Status ParseCodeList(std::string_view list, std::set<DiagCode>* out,
                     bool* all) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string token(Trim(list.substr(start, comma - start)));
    start = comma + 1;
    if (token.empty()) continue;
    if (all != nullptr && (ToLower(token) == "all" || token == "*")) {
      *all = true;
      continue;
    }
    const std::optional<DiagCode> code = DiagCodeFromId(token);
    if (!code.has_value()) {
      return Status::InvalidArgument("unknown diagnostic code '", token,
                                     "' (expected SERxxx)");
    }
    out->insert(*code);
  }
  return Status::OK();
}

void CountQueries(const char* counter, std::size_t n) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled() && n > 0) metrics.GetCounter(counter).Increment(n);
}

}  // namespace

Result<SeverityConfig> SeverityConfig::Parse(std::string_view werror_list,
                                             std::string_view no_warn_list) {
  SeverityConfig config;
  SERENA_RETURN_NOT_OK(
      ParseCodeList(werror_list, &config.promote, &config.werror_all));
  SERENA_RETURN_NOT_OK(
      ParseCodeList(no_warn_list, &config.suppress, /*all=*/nullptr));
  return config;
}

SeverityConfig SeverityConfig::FromEnv() {
  const char* werror = std::getenv("SERENA_WERROR");
  const char* no_warn = std::getenv("SERENA_NO_WARN");
  auto config = Parse(werror == nullptr ? "" : werror,
                      no_warn == nullptr ? "" : no_warn);
  if (!config.ok()) {
    SERENA_LOG(Warning) << "ignoring SERENA_WERROR/SERENA_NO_WARN: "
                        << config.status();
    return {};
  }
  return *config;
}

void ApplySeverity(const SeverityConfig& config,
                   std::vector<Diagnostic>* diagnostics) {
  if (config.empty()) return;
  auto out = diagnostics->begin();
  for (Diagnostic& diagnostic : *diagnostics) {
    if (!diagnostic.is_error()) {
      if (config.suppress.count(diagnostic.code) > 0) continue;
      if (config.werror_all || config.promote.count(diagnostic.code) > 0) {
        diagnostic.severity = Diagnostic::Severity::kError;
      }
    }
    // Guard against self-move: when nothing has been suppressed yet,
    // `out` still aliases `diagnostic` and moving would clear it.
    if (&*out != &diagnostic) *out = std::move(diagnostic);
    ++out;
  }
  diagnostics->erase(out, diagnostics->end());
}

Session::Session(const Environment* env, const StreamStore* streams,
                 AnalyzeOptions options)
    : env_(env), streams_(streams), options_(std::move(options)) {}

std::vector<Diagnostic> Session::Finalize(
    std::vector<Diagnostic> diagnostics) const {
  ApplySeverity(options_.severity, &diagnostics);
  if (!options_.include_warnings) {
    diagnostics.erase(
        std::remove_if(diagnostics.begin(), diagnostics.end(),
                       [](const Diagnostic& d) { return !d.is_error(); }),
        diagnostics.end());
  }
  return diagnostics;
}

Result<std::vector<Diagnostic>> Session::AnalyzePlan(
    const PlanPtr& plan) const {
  return AnalyzePlan(plan, options_.context);
}

Result<std::vector<Diagnostic>> Session::AnalyzePlan(
    const PlanPtr& plan, AnalysisContext context) const {
  AnalyzerOptions analyzer_options;
  analyzer_options.context = context;
  // The analyzer must see warnings whenever severity config could
  // promote one — filtering happens in Finalize, after promotion.
  analyzer_options.include_warnings =
      options_.include_warnings || !options_.severity.empty();
  analyzer_options.unbounded_window_threshold =
      options_.unbounded_window_threshold;
  SERENA_ASSIGN_OR_RETURN(
      std::vector<Diagnostic> diagnostics,
      serena::AnalyzePlan(plan, *env_, streams_, analyzer_options));
  return Finalize(std::move(diagnostics));
}

const Session::QueryFacts* Session::Find(const std::string& name) const {
  for (const QueryFacts& facts : queries_) {
    if (facts.name == name) return &facts;
  }
  return nullptr;
}

void Session::CommitQuery(const std::string& name, const PlanPtr& plan,
                          std::vector<std::string> feeds) {
  RemoveQuery(name);
  QueryFacts facts;
  facts.name = name;
  facts.plan = plan;
  facts.feeds = std::move(feeds);
  facts.reads = CollectWindowReads(plan);
  const std::size_t index = queries_.size();
  queries_.push_back(std::move(facts));
  for (const std::string& stream : queries_[index].feeds) {
    producer_of_.emplace(stream, index);
  }
  for (const std::string& stream : queries_[index].reads) {
    readers_of_[stream].push_back(index);
  }
}

void Session::RemoveQuery(const std::string& name) {
  const auto it = std::find_if(
      queries_.begin(), queries_.end(),
      [&name](const QueryFacts& facts) { return facts.name == name; });
  if (it == queries_.end()) return;
  queries_.erase(it);
  ReindexStreams();
}

void Session::Clear() {
  queries_.clear();
  producer_of_.clear();
  readers_of_.clear();
}

void Session::ReindexStreams() {
  producer_of_.clear();
  readers_of_.clear();
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    for (const std::string& stream : queries_[i].feeds) {
      producer_of_.emplace(stream, i);
    }
    for (const std::string& stream : queries_[i].reads) {
      readers_of_[stream].push_back(i);
    }
  }
}

std::vector<std::string> Session::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const QueryFacts& facts : queries_) names.push_back(facts.name);
  return names;
}

Result<std::vector<Diagnostic>> Session::LintRegistration(
    const std::string& name, const PlanPtr& plan,
    const std::vector<std::string>& feeds) const {
  SERENA_ASSIGN_OR_RETURN(
      std::vector<Diagnostic> diagnostics,
      AnalyzePlan(plan, AnalysisContext::kContinuous));
  for (Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.query.empty()) diagnostic.query = name;
  }
  CountQueries("serena.analyze.registrations", 1);

  std::vector<Diagnostic> frontier;
  const std::vector<std::string> reads = CollectWindowReads(plan);
  const std::set<std::string> feed_set(feeds.begin(), feeds.end());

  // Writer/writer conflicts (SER042): only the candidate's feeds can
  // introduce one — the committed set is conflict-free by invariant.
  for (const std::string& stream : feeds) {
    const auto producer = producer_of_.find(stream);
    if (producer != producer_of_.end() &&
        queries_[producer->second].name != name) {
      frontier.push_back(Diagnostic{
          DiagCode::kWriterConflict, Diagnostic::Severity::kError,
          /*node=*/{},
          "queries '" + queries_[producer->second].name + "' and '" + name +
              "' both feed derived stream '" + stream +
              "': readers would observe a scheduling-dependent merge",
          "give each writer its own stream, or union the plans into one "
          "query",
          /*query=*/name});
    }
  }

  // Dangling sources (SER041): only the candidate's own reads need the
  // check — committed queries were checked at their registration, and a
  // new producer can only *cure* old warnings, never create one.
  const std::set<std::string> source_fed(options_.source_fed_streams.begin(),
                                         options_.source_fed_streams.end());
  for (const std::string& stream : reads) {
    if (producer_of_.count(stream) > 0 || feed_set.count(stream) > 0 ||
        source_fed.count(stream) > 0) {
      continue;
    }
    frontier.push_back(Diagnostic{
        DiagCode::kDanglingSource, Diagnostic::Severity::kWarning,
        "window(" + stream + ")",
        "no registered query or declared source feeds stream '" + stream +
            "': this window will stay empty",
        "register a producer first, or declare the source with "
        "AddSource(source, {\"" + stream + "\"})",
        /*query=*/name});
  }

  // Cycles (SER040): any new cycle must pass through the candidate, so
  // a DFS following producer -> reader edges from the candidate's feeds
  // suffices — it visits only the dependency frontier, not the whole
  // set. Self-loops (candidate reads what it feeds) fall out naturally.
  const std::set<std::string> read_set(reads.begin(), reads.end());
  std::vector<bool> visited(queries_.size(), false);
  std::vector<std::size_t> path;
  std::size_t frontier_visits = 0;
  std::string cycle;

  // Downstream of `streams_fed`: committed readers, plus the candidate
  // itself when it reads one of them (closing the cycle).
  auto visit = [&](auto&& self, const std::vector<std::string>& streams_fed)
      -> bool {
    for (const std::string& stream : streams_fed) {
      if (read_set.count(stream) > 0) {
        // Back at the candidate: render candidate -> path... -> candidate.
        cycle = name;
        for (const std::size_t node : path) {
          cycle += " -> " + queries_[node].name;
        }
        cycle += " -> " + name;
        return true;
      }
      const auto it = readers_of_.find(stream);
      if (it == readers_of_.end()) continue;
      for (const std::size_t reader : it->second) {
        if (visited[reader]) continue;
        visited[reader] = true;
        ++frontier_visits;
        path.push_back(reader);
        if (self(self, queries_[reader].feeds)) return true;
        path.pop_back();
      }
    }
    return false;
  };
  if (visit(visit, feeds)) {
    frontier.push_back(Diagnostic{
        DiagCode::kQueryCycle, Diagnostic::Severity::kError,
        /*node=*/{},
        "dependency cycle between continuous queries: " + cycle +
            " (each tick has no valid evaluation order)",
        "break the cycle by splitting the feedback path into its own "
        "stream fed by a source",
        /*query=*/name});
  }
  CountQueries("serena.analyze.frontier_queries", frontier_visits);

  frontier = Finalize(std::move(frontier));
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(frontier.begin()),
                     std::make_move_iterator(frontier.end()));
  return diagnostics;
}

Result<std::vector<Diagnostic>> Session::LintQuerySet() const {
  std::vector<QuerySetEntry> entries;
  entries.reserve(queries_.size());
  for (const QueryFacts& facts : queries_) {
    entries.push_back(QuerySetEntry{facts.name, facts.plan, facts.feeds});
  }
  QuerySetOptions set_options;
  set_options.source_fed_streams = options_.source_fed_streams;
  set_options.include_warnings =
      options_.include_warnings || !options_.severity.empty();
  SERENA_ASSIGN_OR_RETURN(std::vector<Diagnostic> diagnostics,
                          AnalyzeQuerySet(entries, set_options));
  return Finalize(std::move(diagnostics));
}

Result<std::vector<Diagnostic>> Session::CheckAll() const {
  std::vector<Diagnostic> all;
  for (const QueryFacts& facts : queries_) {
    SERENA_ASSIGN_OR_RETURN(
        std::vector<Diagnostic> diagnostics,
        AnalyzePlan(facts.plan, AnalysisContext::kContinuous));
    for (Diagnostic& diagnostic : diagnostics) {
      if (diagnostic.query.empty()) diagnostic.query = facts.name;
      all.push_back(std::move(diagnostic));
    }
  }
  SERENA_ASSIGN_OR_RETURN(std::vector<Diagnostic> set_diagnostics,
                          LintQuerySet());
  all.insert(all.end(), std::make_move_iterator(set_diagnostics.begin()),
             std::make_move_iterator(set_diagnostics.end()));
  return all;
}

}  // namespace analysis
}  // namespace serena
