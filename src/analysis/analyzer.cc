#include "analysis/analyzer.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace serena {

namespace {

/// Operator label without children (mirrors the EXPLAIN rendering enough
/// for diagnostics; full fidelity is not required here).
std::string LabelOf(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode&>(node).relation();
    case PlanKind::kSelect: {
      return "select[" +
             static_cast<const SelectNode&>(node).formula()->ToString() + "]";
    }
    case PlanKind::kInvoke: {
      const auto& n = static_cast<const InvokeNode&>(node);
      return "invoke[" + n.prototype() + "]";
    }
    case PlanKind::kAssign: {
      return "assign[" + static_cast<const AssignNode&>(node).target() + "]";
    }
    case PlanKind::kWindow: {
      return "window(" + static_cast<const WindowNode&>(node).stream() + ")";
    }
    default:
      return PlanKindToString(node.kind());
  }
}

/// Classic two-row Levenshtein distance, used only for "did you mean"
/// hints on small catalog names.
std::size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The candidate within edit distance 2 of `name` (ties broken towards
/// the lexicographically first), or empty.
std::string ClosestName(const std::string& name,
                        const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = 3;  // Only distances 0..2 are suggestions.
  for (const std::string& candidate : candidates) {
    const std::size_t distance = EditDistance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

class Analyzer {
 public:
  Analyzer(const Environment& env, const StreamStore* streams,
           const AnalyzerOptions& options)
      : env_(env), streams_(streams), options_(options) {}

  std::vector<Diagnostic> Run(const PlanPtr& plan) {
    (void)Resolve(plan);
    // The later passes interpret resolved schemas, so they only make
    // sense on plans that passed the well-formedness pass.
    if (CountErrors(diagnostics_) == 0) {
      const ExtendedSchemaPtr& root = schemas_[plan.get()];
      const std::vector<std::string> names = root->AllNames();
      const std::set<std::string> needed(names.begin(), names.end());
      Dataflow(plan, needed);
      SideEffects(plan, /*under_filter=*/false, /*only_filter=*/false);
    }
    return std::move(diagnostics_);
  }

 private:
  /// A machine-applicable replacement carried alongside the prose hint.
  struct FixIt {
    std::string original;
    std::string replacement;
  };

  void Report(DiagCode code, Diagnostic::Severity severity,
              const PlanNode& node, std::string message,
              std::string hint = {}, FixIt fix = {}) {
    if (severity == Diagnostic::Severity::kWarning &&
        !options_.include_warnings) {
      return;
    }
    Diagnostic diagnostic{code,     severity,        LabelOf(node),
                          std::move(message), std::move(hint),
                          /*query=*/{}};
    diagnostic.fix_original = std::move(fix.original);
    diagnostic.fix_replacement = std::move(fix.replacement);
    diagnostics_.push_back(std::move(diagnostic));
  }
  void Error(DiagCode code, const PlanNode& node, std::string message,
             std::string hint = {}, FixIt fix = {}) {
    Report(code, Diagnostic::Severity::kError, node, std::move(message),
           std::move(hint), std::move(fix));
  }
  void Warn(DiagCode code, const PlanNode& node, std::string message,
            std::string hint = {}) {
    Report(code, Diagnostic::Severity::kWarning, node, std::move(message),
           std::move(hint));
  }

  // -------------------------------------------------------------------
  // Pass 1: per-operator schema derivation (Table 3) with coded errors.
  // Children are always visited, so one broken subtree does not hide
  // findings in its siblings. One error per broken node.
  // -------------------------------------------------------------------

  std::optional<ExtendedSchemaPtr> Resolve(const PlanPtr& plan) {
    std::vector<std::optional<ExtendedSchemaPtr>> children;
    for (const PlanPtr& child : plan->children()) {
      children.push_back(Resolve(child));
    }
    for (const auto& child : children) {
      if (!child.has_value()) return std::nullopt;  // Already reported.
    }

    std::optional<ExtendedSchemaPtr> schema;
    switch (plan->kind()) {
      case PlanKind::kScan:
        schema = ResolveScan(static_cast<const ScanNode&>(*plan));
        break;
      case PlanKind::kWindow:
        schema = ResolveWindow(static_cast<const WindowNode&>(*plan));
        break;
      case PlanKind::kUnion:
      case PlanKind::kIntersect:
      case PlanKind::kDifference:
        schema = ResolveSetOp(*plan, *children[0], *children[1]);
        break;
      case PlanKind::kJoin:
        schema = ResolveJoin(*plan, *children[0], *children[1]);
        break;
      case PlanKind::kProject:
        schema = ResolveProject(static_cast<const ProjectNode&>(*plan),
                                *children[0]);
        break;
      case PlanKind::kSelect:
        schema = ResolveSelect(static_cast<const SelectNode&>(*plan),
                               *children[0]);
        break;
      case PlanKind::kRename:
        schema = ResolveRename(static_cast<const RenameNode&>(*plan),
                               *children[0]);
        break;
      case PlanKind::kAssign:
        schema = ResolveAssign(static_cast<const AssignNode&>(*plan),
                               *children[0]);
        break;
      case PlanKind::kInvoke:
        schema = ResolveInvoke(static_cast<const InvokeNode&>(*plan),
                               *children[0]);
        break;
      case PlanKind::kAggregate:
        schema = ResolveAggregate(static_cast<const AggregateNode&>(*plan),
                                  *children[0]);
        break;
      case PlanKind::kStreaming:
        // S[...] passes its child schema through (§4.2) but only
        // evaluates under a continuous executor.
        if (options_.context == AnalysisContext::kOneShot) {
          Error(DiagCode::kStreamingContext, *plan,
                "streaming operator requires continuous evaluation; "
                "one-shot execution of this plan will fail",
                "register the query with the continuous executor");
        } else if (options_.context == AnalysisContext::kNeutral) {
          Warn(DiagCode::kStreamingContext, *plan,
               "streaming operator requires continuous evaluation; "
               "one-shot execution of this plan will fail");
        }
        schema = *children[0];
        break;
    }
    if (schema.has_value()) schemas_[plan.get()] = *schema;
    return schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveScan(const ScanNode& node) {
    auto relation = env_.GetRelation(node.relation());
    if (!relation.ok()) {
      std::string hint;
      FixIt fix;
      if (streams_ != nullptr && streams_->HasStream(node.relation())) {
        hint = "'" + node.relation() +
               "' is a stream — read it through a window, e.g. window[10](" +
               node.relation() + ")";
        fix = FixIt{node.relation(), "window[10](" + node.relation() + ")"};
      } else {
        const std::string closest =
            ClosestName(node.relation(), env_.RelationNames());
        if (!closest.empty()) {
          hint = "did you mean '" + closest + "'?";
          fix = FixIt{node.relation(), closest};
        }
      }
      Error(DiagCode::kUnknownRelation, node,
            "unknown relation '" + node.relation() + "'", std::move(hint),
            std::move(fix));
      return std::nullopt;
    }
    return (*relation)->schema_ptr();
  }

  std::optional<ExtendedSchemaPtr> ResolveWindow(const WindowNode& node) {
    if (streams_ == nullptr || !streams_->HasStream(node.stream())) {
      std::string hint;
      FixIt fix;
      if (env_.HasRelation(node.stream())) {
        hint = "'" + node.stream() +
               "' is a finite relation — scan it directly";
      } else if (streams_ != nullptr) {
        const std::string closest =
            ClosestName(node.stream(), streams_->StreamNames());
        if (!closest.empty()) {
          hint = "did you mean '" + closest + "'?";
          fix = FixIt{node.stream(), closest};
        }
      }
      Error(DiagCode::kUnknownStream, node,
            "unknown stream '" + node.stream() + "'", std::move(hint),
            std::move(fix));
      return std::nullopt;
    }
    if (node.period() <= 0) {
      Warn(DiagCode::kUnboundedWindow, node,
           node.mode() == WindowMode::kTime
               ? "time window of width 0 never sees any tuple"
               : "row window of size 0 never sees any tuple");
    } else if (node.mode() == WindowMode::kTime &&
               node.period() >= options_.unbounded_window_threshold) {
      Warn(DiagCode::kUnboundedWindow, node,
           "window spans " + std::to_string(node.period()) +
               " instants — effectively unbounded; stream history must be "
               "retained for the whole span");
    }
    return (*streams_->GetStream(node.stream()))->schema_ptr();
  }

  std::optional<ExtendedSchemaPtr> ResolveSetOp(
      const PlanNode& node, const ExtendedSchemaPtr& left,
      const ExtendedSchemaPtr& right) {
    auto schema = SetOpSchema(left, right, PlanKindToString(node.kind()));
    if (!schema.ok()) {
      Error(DiagCode::kSchemaMismatch, node, schema.status().message());
      return std::nullopt;
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveJoin(
      const PlanNode& node, const ExtendedSchemaPtr& left,
      const ExtendedSchemaPtr& right) {
    auto schema = JoinSchema(left, right);
    if (!schema.ok()) {
      Error(DiagCode::kSchemaMismatch, node, schema.status().message());
      return std::nullopt;
    }
    bool shared_real = false;
    for (const std::string& name : left->RealNames()) {
      if (right->IsReal(name)) shared_real = true;
    }
    if (!shared_real) {
      Warn(DiagCode::kCartesianJoin, node,
           "no attribute is real in both operands: the join degrades to a "
           "Cartesian product (Table 3 (d))");
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveProject(
      const ProjectNode& node, const ExtendedSchemaPtr& child) {
    auto schema = ProjectSchema(child, node.attributes());
    if (!schema.ok()) {
      Error(DiagCode::kInvalidOperatorArgs, node, schema.status().message());
      return std::nullopt;
    }
    if (!child->binding_patterns().empty() &&
        (*schema)->binding_patterns().empty()) {
      Warn(DiagCode::kPatternlessProjection, node,
           "projection eliminates every binding pattern: no further "
           "realization is possible above this operator");
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveSelect(
      const SelectNode& node, const ExtendedSchemaPtr& child) {
    auto schema = SelectSchema(child, node.formula());
    if (!schema.ok()) {
      // status() returns by value: take a copy, not a dangling reference.
      const std::string message = schema.status().message();
      if (Contains(message, "virtual attribute")) {
        Error(DiagCode::kVirtualRead, node, message,
              RealizationHintFor(*child, message));
      } else if (Contains(message, "unbound parameter")) {
        Error(DiagCode::kInvalidFormula, node, message,
              "bind parameters with BindParameters (or the shell's \\exec) "
              "before analysis");
      } else {
        Error(DiagCode::kInvalidFormula, node, message);
      }
      return std::nullopt;
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveRename(
      const RenameNode& node, const ExtendedSchemaPtr& child) {
    auto schema = RenameSchema(child, node.from(), node.to());
    if (!schema.ok()) {
      Error(DiagCode::kInvalidOperatorArgs, node, schema.status().message());
      return std::nullopt;
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveAssign(
      const AssignNode& node, const ExtendedSchemaPtr& child) {
    const Attribute* target = child->FindAttribute(node.target());
    if (target == nullptr) {
      Error(DiagCode::kInvalidOperatorArgs, node,
            "assign: attribute '" + node.target() + "' is not in schema '" +
                child->name() + "'");
      return std::nullopt;
    }
    if (target->is_real()) {
      Error(DiagCode::kAssignToReal, node,
            "assign: attribute '" + node.target() +
                "' is already real (realization is one-way, Table 3 (e))");
      return std::nullopt;
    }
    if (node.from_attribute()) {
      const Attribute* source = child->FindAttribute(node.source_attribute());
      if (source == nullptr) {
        Error(DiagCode::kInvalidOperatorArgs, node,
              "assign: source attribute '" + node.source_attribute() +
                  "' is not in schema '" + child->name() + "'");
        return std::nullopt;
      }
      if (!source->is_real()) {
        Error(DiagCode::kVirtualRead, node,
              "assign reads virtual attribute '" + node.source_attribute() +
                  "' (virtual attributes carry no value, Def. 3)",
              RealizationHintFor(*child, node.source_attribute()));
        return std::nullopt;
      }
    }
    auto schema = AssignSchema(child, node.target());
    if (!schema.ok()) {
      Error(DiagCode::kSchemaInference, node, schema.status().message());
      return std::nullopt;
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveInvoke(
      const InvokeNode& node, const ExtendedSchemaPtr& child) {
    auto bp = node.ResolveBindingPattern(*child);
    if (!bp.ok()) {
      std::string hint;
      if (child->binding_patterns().empty()) {
        hint = "schema '" + child->name() + "' declares no binding patterns";
      } else {
        hint = "available patterns:";
        for (const BindingPattern& candidate : child->binding_patterns()) {
          hint += " " + candidate.ToString();
        }
      }
      Error(DiagCode::kUnknownBindingPattern, node, bp.status().message(),
            std::move(hint));
      return std::nullopt;
    }
    bool inputs_ok = true;
    for (const Attribute& input : bp->prototype().input().attributes()) {
      if (!child->IsReal(input.name)) {
        inputs_ok = false;
        Error(DiagCode::kUnrealizedInput, node,
              "invoke: input attribute '" + input.name + "' of prototype '" +
                  bp->prototype().name() +
                  "' must be real before invocation (Def. 2)",
              "realize '" + input.name +
                  "' with an assignment (or a prior invocation) first");
      }
    }
    if (!inputs_ok) return std::nullopt;
    auto schema = InvokeSchema(child, *bp);
    if (!schema.ok()) {
      Error(DiagCode::kSchemaInference, node, schema.status().message());
      return std::nullopt;
    }
    return *schema;
  }

  std::optional<ExtendedSchemaPtr> ResolveAggregate(
      const AggregateNode& node, const ExtendedSchemaPtr& child) {
    // Check the attribute inputs ourselves so missing vs. virtual get
    // distinct codes; AggregateSchema handles the rest (types, names).
    std::vector<std::string> reads = node.group_by();
    for (const AggregateSpec& spec : node.aggregates()) {
      if (!spec.input.empty()) reads.push_back(spec.input);
    }
    bool reads_ok = true;
    for (const std::string& name : reads) {
      const Attribute* attr = child->FindAttribute(name);
      if (attr == nullptr) {
        reads_ok = false;
        Error(DiagCode::kInvalidOperatorArgs, node,
              "aggregate: attribute '" + name + "' is not in schema '" +
                  child->name() + "'");
      } else if (!attr->is_real()) {
        reads_ok = false;
        Error(DiagCode::kVirtualRead, node,
              "aggregate reads virtual attribute '" + name +
                  "' (virtual attributes carry no value, Def. 3)",
              RealizationHintFor(*child, name));
      }
    }
    if (!reads_ok) return std::nullopt;
    // Residual failures (aggregate typing, duplicate output names, ...)
    // carry the generic schema-inference code.
    auto schema = AggregateSchema(child, node.group_by(), node.aggregates());
    if (!schema.ok()) {
      Error(DiagCode::kSchemaInference, node, schema.status().message());
      return std::nullopt;
    }
    return *schema;
  }

  /// "realize it with invoke[getTemperature]" when some binding pattern of
  /// `schema` outputs `attribute` (or an attribute mentioned inside a
  /// formula error message).
  static std::string RealizationHintFor(const ExtendedSchema& schema,
                                        const std::string& attribute) {
    for (const BindingPattern& bp : schema.binding_patterns()) {
      for (const Attribute& out : bp.prototype().output().attributes()) {
        if (!attribute.empty() &&
            (attribute == out.name ||
             Contains(attribute, "'" + out.name + "'"))) {
          return "realize it first with invoke[" + bp.prototype().name() +
                 "]";
        }
      }
    }
    return {};
  }

  // -------------------------------------------------------------------
  // Pass 2: realization dataflow, top-down (Def. 4). `needed` is the set
  // of attribute names whose values the operators above can still
  // observe; a passive invocation whose outputs are all dropped is dead
  // weight (every physical call it makes is wasted).
  // -------------------------------------------------------------------

  void Dataflow(const PlanPtr& plan, const std::set<std::string>& needed) {
    switch (plan->kind()) {
      case PlanKind::kProject: {
        const auto& node = static_cast<const ProjectNode&>(*plan);
        Dataflow(node.child(), std::set<std::string>(
                                   node.attributes().begin(),
                                   node.attributes().end()));
        return;
      }
      case PlanKind::kSelect: {
        const auto& node = static_cast<const SelectNode&>(*plan);
        std::set<std::string> child_needed = needed;
        node.formula()->CollectAttributes(&child_needed);
        Dataflow(node.child(), child_needed);
        return;
      }
      case PlanKind::kRename: {
        const auto& node = static_cast<const RenameNode&>(*plan);
        std::set<std::string> child_needed = needed;
        if (child_needed.erase(node.to()) > 0) {
          child_needed.insert(node.from());
        }
        Dataflow(node.child(), child_needed);
        return;
      }
      case PlanKind::kAssign: {
        const auto& node = static_cast<const AssignNode&>(*plan);
        std::set<std::string> child_needed = needed;
        child_needed.erase(node.target());
        if (node.from_attribute()) {
          child_needed.insert(node.source_attribute());
        }
        Dataflow(node.child(), child_needed);
        return;
      }
      case PlanKind::kInvoke: {
        const auto& node = static_cast<const InvokeNode&>(*plan);
        const auto schema_it = schemas_.find(node.child().get());
        if (schema_it == schemas_.end()) return;
        auto bp = node.ResolveBindingPattern(*schema_it->second);
        if (!bp.ok()) return;  // Pass 1 would have reported this.
        std::set<std::string> child_needed = needed;
        bool output_used = false;
        for (const Attribute& out : bp->prototype().output().attributes()) {
          if (needed.count(out.name) > 0) output_used = true;
          child_needed.erase(out.name);
        }
        // An active invocation is *for* its side effect (Def. 8); only a
        // passive one with unobservable results is dead.
        if (!output_used && !bp->active()) {
          Warn(DiagCode::kDeadRealization, node,
               "results of this invocation are never used: every output "
               "attribute of prototype '" +
                   bp->prototype().name() +
                   "' is dropped by the operators above",
               "keep the output attributes in enclosing projections, or "
               "drop the invocation");
        }
        for (const Attribute& in : bp->prototype().input().attributes()) {
          child_needed.insert(in.name);
        }
        child_needed.insert(bp->service_attribute());
        Dataflow(node.child(), child_needed);
        return;
      }
      case PlanKind::kAggregate: {
        const auto& node = static_cast<const AggregateNode&>(*plan);
        std::set<std::string> child_needed(node.group_by().begin(),
                                           node.group_by().end());
        for (const AggregateSpec& spec : node.aggregates()) {
          if (!spec.input.empty()) child_needed.insert(spec.input);
        }
        Dataflow(node.child(), child_needed);
        return;
      }
      default:
        // Set operators, joins, streaming: attribute identity passes
        // through unchanged; leaves end the walk.
        for (const PlanPtr& child : plan->children()) {
          Dataflow(child, needed);
        }
        return;
    }
  }

  // -------------------------------------------------------------------
  // Pass 3: side effects (Def. 8). ACTIVE invocations fire for every
  // tuple reaching them; any filtering operator *above* them therefore
  // discards rows whose side effect already happened (Example 6, Q1').
  // -------------------------------------------------------------------

  void SideEffects(const PlanPtr& plan, bool under_filter, bool only_filter) {
    if (plan->kind() == PlanKind::kInvoke) {
      const auto& node = static_cast<const InvokeNode&>(*plan);
      const auto schema_it = schemas_.find(node.child().get());
      if (schema_it != schemas_.end()) {
        auto bp = node.ResolveBindingPattern(*schema_it->second);
        if (bp.ok() && bp->active()) {
          if (only_filter) {
            Warn(DiagCode::kActiveOnlyFiltering, node,
                 "ACTIVE invocation on the discarded side of a set "
                 "operator: its results are used only to filter, but its "
                 "side effects still happen for every tuple",
                 "invoke a passive prototype here, or restructure so the "
                 "active invocation is on the surviving side");
          } else if (under_filter) {
            Warn(DiagCode::kActiveUnderFilter, node,
                 "ACTIVE invocation under a filtering operator: the filter "
                 "does not reduce the action set (Example 6's Q1' "
                 "pattern)",
                 "filter before invoking if that is not intended");
          }
        }
      }
    }
    switch (plan->kind()) {
      case PlanKind::kSelect:
        SideEffects(static_cast<const SelectNode&>(*plan).child(),
                    /*under_filter=*/true, only_filter);
        return;
      case PlanKind::kIntersect: {
        const auto& node = static_cast<const SetOpNode&>(*plan);
        SideEffects(node.left(), /*under_filter=*/true, only_filter);
        SideEffects(node.right(), /*under_filter=*/true, only_filter);
        return;
      }
      case PlanKind::kDifference: {
        const auto& node = static_cast<const SetOpNode&>(*plan);
        SideEffects(node.left(), /*under_filter=*/true, only_filter);
        SideEffects(node.right(), under_filter, /*only_filter=*/true);
        return;
      }
      default:
        for (const PlanPtr& child : plan->children()) {
          SideEffects(child, under_filter, only_filter);
        }
        return;
    }
  }

  const Environment& env_;
  const StreamStore* streams_;
  const AnalyzerOptions& options_;
  std::vector<Diagnostic> diagnostics_;
  /// Resolved schema per node; complete on error-free plans.
  std::unordered_map<const PlanNode*, ExtendedSchemaPtr> schemas_;
};

void CountIntoMetrics(const std::vector<Diagnostic>& diagnostics) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (!metrics.enabled()) return;
  // One increment per analyzed plan — the scaling smoke asserts this
  // stays O(registrations), not O(registrations²), once registration
  // linting is incremental.
  metrics.GetCounter("serena.analyze.plans").Increment();
  const std::size_t errors = CountErrors(diagnostics);
  const std::size_t warnings = diagnostics.size() - errors;
  if (errors > 0) {
    metrics.GetCounter("serena.analyze.errors").Increment(errors);
  }
  if (warnings > 0) {
    metrics.GetCounter("serena.analyze.warnings").Increment(warnings);
  }
}

}  // namespace

Result<std::vector<Diagnostic>> AnalyzePlan(const PlanPtr& plan,
                                            const Environment& env,
                                            const StreamStore* streams,
                                            const AnalyzerOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  Analyzer analyzer(env, streams, options);
  std::vector<Diagnostic> diagnostics = analyzer.Run(plan);
  CountIntoMetrics(diagnostics);
  return diagnostics;
}

Result<std::vector<Diagnostic>> ValidatePlan(const PlanPtr& plan,
                                             const Environment& env,
                                             const StreamStore* streams) {
  return AnalyzePlan(plan, env, streams, AnalyzerOptions{});
}

}  // namespace serena
