#ifndef SERENA_ANALYSIS_SESSION_H_
#define SERENA_ANALYSIS_SESSION_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "analysis/query_set.h"

namespace serena {
namespace analysis {

/// Per-code severity overrides (ROADMAP's `-Werror=SER030` item):
/// warnings can be promoted to errors or suppressed entirely. Errors are
/// never demoted — the analyzer's errors describe plans that cannot
/// evaluate, and no configuration makes them evaluable.
struct SeverityConfig {
  /// Promote *every* warning (the classic bare `--werror`).
  bool werror_all = false;
  /// Warnings with these codes become errors.
  std::set<DiagCode> promote;
  /// Warnings with these codes are dropped.
  std::set<DiagCode> suppress;

  bool empty() const {
    return !werror_all && promote.empty() && suppress.empty();
  }

  /// Parses comma-separated code lists ("SER030,SER052"; case-insensitive;
  /// empty strings allowed). `werror_list` may also be "all" / "*" for
  /// blanket promotion. Unknown codes are an InvalidArgument error so
  /// typos in CI configs fail loudly.
  static Result<SeverityConfig> Parse(std::string_view werror_list,
                                      std::string_view no_warn_list);

  /// Reads `SERENA_WERROR` / `SERENA_NO_WARN` (same syntax as `Parse`).
  /// Malformed values are ignored with their error logged — the analyzer
  /// must never become unusable through a bad environment variable.
  static SeverityConfig FromEnv();
};

/// Applies `config` to `diagnostics` in place: suppressed warnings are
/// removed, promoted ones flip to errors. Errors pass through untouched.
void ApplySeverity(const SeverityConfig& config,
                   std::vector<Diagnostic>* diagnostics);

/// The single options struct every analyzer caller configures. One
/// instance describes everything the three former entry points (the
/// QueryProcessor gate, the shell's \check/\validate, serena_lint's
/// runner) used to wire up separately.
struct AnalyzeOptions {
  /// Default destination for plans analyzed through this session;
  /// `Session::AnalyzePlan(plan, context)` overrides per call.
  AnalysisContext context = AnalysisContext::kNeutral;
  /// With false, warnings are filtered from the output *after* severity
  /// promotion — a promoted warning still surfaces as an error (the
  /// gate's configuration).
  bool include_warnings = true;
  /// Forwarded to the analyzer's SER051 check.
  Timestamp unbounded_window_threshold = 1'000'000;
  /// Streams fed by executor sources rather than queries (suppresses
  /// SER041 for them).
  std::vector<std::string> source_fed_streams;
  SeverityConfig severity;
};

/// The unified analysis facade: one object owning the analyzer
/// configuration *and* the per-query facts cache that makes cross-query
/// linting incremental.
///
/// Single-plan analysis (`AnalyzePlan`) is stateless — a thin wrapper
/// applying the session's options and severity config so every caller
/// produces identically ordered diagnostics.
///
/// Cross-query analysis is stateful: `CommitQuery` caches each
/// registered query's facts (plan, fed streams, window reads), and
/// `LintRegistration` checks a *candidate* against the committed set by
/// touching only the candidate plus its feeds/reads frontier — writer
/// conflicts via the producer index, dangling sources via the
/// candidate's own reads, and cycles via a DFS that only explores paths
/// through the candidate (the committed set is cycle-free by
/// invariant). Registration therefore stays O(new query) at thousands
/// of standing queries where the old gate re-linted everything.
///
/// Metrics (when the registry is enabled):
///   serena.analyze.plans            plans analyzed (one per AnalyzePlan)
///   serena.analyze.registrations    LintRegistration calls
///   serena.analyze.frontier_queries committed queries visited by the
///                                   incremental lint (the O(new query)
///                                   claim is this counter staying flat
///                                   as the set grows)
class Session {
 public:
  Session(const Environment* env, const StreamStore* streams,
          AnalyzeOptions options = {});

  const AnalyzeOptions& options() const { return options_; }
  AnalyzeOptions& mutable_options() { return options_; }

  /// Analyzes one plan with the session options (severity applied,
  /// warnings filtered per `include_warnings`).
  Result<std::vector<Diagnostic>> AnalyzePlan(const PlanPtr& plan) const;
  Result<std::vector<Diagnostic>> AnalyzePlan(const PlanPtr& plan,
                                              AnalysisContext context) const;

  /// Full registration check for a candidate continuous query: plan
  /// analysis (continuous context) plus the incremental frontier lint
  /// against the committed set. Does *not* commit — call `CommitQuery`
  /// once the registration actually succeeded.
  Result<std::vector<Diagnostic>> LintRegistration(
      const std::string& name, const PlanPtr& plan,
      const std::vector<std::string>& feeds) const;

  /// Caches the facts of a successfully registered query. Replaces any
  /// previous entry under the same name.
  void CommitQuery(const std::string& name, const PlanPtr& plan,
                   std::vector<std::string> feeds);
  void RemoveQuery(const std::string& name);
  void Clear();

  std::size_t query_count() const { return queries_.size(); }
  /// Committed query names, in registration order.
  std::vector<std::string> QueryNames() const;

  /// The non-incremental cross-query lint over every committed query
  /// (SER040/SER041/SER042) — what the shell's \check and the script
  /// linter's end-of-script pass run. Severity config applies.
  Result<std::vector<Diagnostic>> LintQuerySet() const;

  /// Re-analyzes every committed plan (continuous context) and appends
  /// the full set lint — the shell's \check. Diagnostics carry the
  /// query name; ordering is registration order, set findings last.
  Result<std::vector<Diagnostic>> CheckAll() const;

 private:
  struct QueryFacts {
    std::string name;
    PlanPtr plan;
    std::vector<std::string> feeds;
    /// Streams the plan reads through Window leaves (cached — computing
    /// them is the per-query work the incremental lint avoids).
    std::vector<std::string> reads;
  };

  /// Severity + warning filtering shared by all public entry points.
  std::vector<Diagnostic> Finalize(std::vector<Diagnostic> diagnostics) const;

  const QueryFacts* Find(const std::string& name) const;
  void ReindexStreams();

  const Environment* env_;
  const StreamStore* streams_;
  AnalyzeOptions options_;

  /// Committed facts in registration order (diagnostics ordering of the
  /// full lint must match the executor's registration order).
  std::vector<QueryFacts> queries_;
  /// stream -> index into queries_ of its (unique) feeding query.
  std::map<std::string, std::size_t> producer_of_;
  /// stream -> indices of queries windowing over it.
  std::map<std::string, std::vector<std::size_t>> readers_of_;
};

}  // namespace analysis
}  // namespace serena

#endif  // SERENA_ANALYSIS_SESSION_H_
