#include "analysis/query_set.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace serena {

namespace {

void CollectWindowReadsInto(const PlanPtr& plan,
                            std::set<std::string>* reads) {
  if (plan == nullptr) return;
  if (plan->kind() == PlanKind::kWindow) {
    reads->insert(static_cast<const WindowNode&>(*plan).stream());
  }
  for (const PlanPtr& child : plan->children()) {
    CollectWindowReadsInto(child, reads);
  }
}

/// DFS cycle search over the query dependency graph. Colors: 0 white,
/// 1 on the current path, 2 done. On finding a back edge, renders the
/// cycle through the current path.
class CycleFinder {
 public:
  CycleFinder(const std::vector<QuerySetEntry>& queries,
              const std::vector<std::vector<std::size_t>>& edges)
      : queries_(queries), edges_(edges), color_(queries.size(), 0) {}

  /// One rendered cycle per distinct back edge found from unvisited
  /// roots ("a -> b -> a"), with the query index it anchors to.
  std::vector<std::pair<std::size_t, std::string>> Find() {
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      if (color_[i] == 0) Visit(i);
    }
    return std::move(cycles_);
  }

 private:
  void Visit(std::size_t node) {
    color_[node] = 1;
    path_.push_back(node);
    for (const std::size_t next : edges_[node]) {
      if (color_[next] == 1) {
        RecordCycle(next);
      } else if (color_[next] == 0) {
        Visit(next);
      }
    }
    path_.pop_back();
    color_[node] = 2;
  }

  void RecordCycle(std::size_t entry) {
    const auto start = std::find(path_.begin(), path_.end(), entry);
    std::string rendered;
    for (auto it = start; it != path_.end(); ++it) {
      if (!rendered.empty()) rendered += " -> ";
      rendered += queries_[*it].name;
    }
    rendered += " -> " + queries_[entry].name;
    cycles_.emplace_back(entry, std::move(rendered));
  }

  const std::vector<QuerySetEntry>& queries_;
  const std::vector<std::vector<std::size_t>>& edges_;
  std::vector<int> color_;
  std::vector<std::size_t> path_;
  std::vector<std::pair<std::size_t, std::string>> cycles_;
};

}  // namespace

std::vector<std::string> CollectWindowReads(const PlanPtr& plan) {
  std::set<std::string> reads;
  CollectWindowReadsInto(plan, &reads);
  return {reads.begin(), reads.end()};
}

Result<std::vector<Diagnostic>> AnalyzeQuerySet(
    const std::vector<QuerySetEntry>& queries,
    const QuerySetOptions& options) {
  std::vector<Diagnostic> diagnostics;

  // Producers: stream -> feeding query index (first writer wins; later
  // writers are the conflict).
  std::map<std::string, std::size_t> producer_of;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    for (const std::string& stream : queries[i].feeds) {
      const auto [it, inserted] = producer_of.emplace(stream, i);
      if (!inserted && queries[it->second].name != queries[i].name) {
        diagnostics.push_back(Diagnostic{
            DiagCode::kWriterConflict, Diagnostic::Severity::kError,
            /*node=*/{},
            "queries '" + queries[it->second].name + "' and '" +
                queries[i].name + "' both feed derived stream '" + stream +
                "': readers would observe a scheduling-dependent merge",
            "give each writer its own stream, or union the plans into one "
            "query",
            /*query=*/queries[i].name});
      }
    }
  }

  const std::set<std::string> source_fed(options.source_fed_streams.begin(),
                                         options.source_fed_streams.end());

  // Reads, dangling sources, and the dependency edges producer -> reader.
  std::vector<std::vector<std::size_t>> edges(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    for (const std::string& stream : CollectWindowReads(queries[i].plan)) {
      const auto producer = producer_of.find(stream);
      if (producer != producer_of.end()) {
        edges[producer->second].push_back(i);
      } else if (options.include_warnings && source_fed.count(stream) == 0) {
        diagnostics.push_back(Diagnostic{
            DiagCode::kDanglingSource, Diagnostic::Severity::kWarning,
            "window(" + stream + ")",
            "no registered query or declared source feeds stream '" +
                stream + "': this window will stay empty",
            "register a producer first, or declare the source with "
            "AddSource(source, {\"" + stream + "\"})",
            /*query=*/queries[i].name});
      }
    }
  }

  for (auto& [index, cycle] : CycleFinder(queries, edges).Find()) {
    diagnostics.push_back(Diagnostic{
        DiagCode::kQueryCycle, Diagnostic::Severity::kError,
        /*node=*/{},
        "dependency cycle between continuous queries: " + cycle +
            " (each tick has no valid evaluation order)",
        "break the cycle by splitting the feedback path into its own "
        "stream fed by a source",
        /*query=*/queries[index].name});
  }

  return diagnostics;
}

}  // namespace serena
