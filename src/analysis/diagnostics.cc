#include "analysis/diagnostics.h"

#include "obs/json.h"

namespace serena {

const char* DiagCodeId(DiagCode code) {
  switch (code) {
    case DiagCode::kUnknownRelation:
      return "SER001";
    case DiagCode::kUnknownStream:
      return "SER002";
    case DiagCode::kInvalidFormula:
      return "SER003";
    case DiagCode::kInvalidOperatorArgs:
      return "SER004";
    case DiagCode::kAssignToReal:
      return "SER005";
    case DiagCode::kUnknownBindingPattern:
      return "SER006";
    case DiagCode::kUnrealizedInput:
      return "SER007";
    case DiagCode::kSchemaMismatch:
      return "SER008";
    case DiagCode::kStreamingContext:
      return "SER009";
    case DiagCode::kSchemaInference:
      return "SER010";
    case DiagCode::kVirtualRead:
      return "SER020";
    case DiagCode::kDeadRealization:
      return "SER021";
    case DiagCode::kActiveUnderFilter:
      return "SER030";
    case DiagCode::kActiveOnlyFiltering:
      return "SER031";
    case DiagCode::kQueryCycle:
      return "SER040";
    case DiagCode::kDanglingSource:
      return "SER041";
    case DiagCode::kWriterConflict:
      return "SER042";
    case DiagCode::kCartesianJoin:
      return "SER050";
    case DiagCode::kUnboundedWindow:
      return "SER051";
    case DiagCode::kPatternlessProjection:
      return "SER052";
    case DiagCode::kScriptStatement:
      return "SER060";
  }
  return "SER000";
}

std::optional<DiagCode> DiagCodeFromId(std::string_view id) {
  static constexpr DiagCode kAll[] = {
      DiagCode::kUnknownRelation,       DiagCode::kUnknownStream,
      DiagCode::kInvalidFormula,        DiagCode::kInvalidOperatorArgs,
      DiagCode::kAssignToReal,          DiagCode::kUnknownBindingPattern,
      DiagCode::kUnrealizedInput,       DiagCode::kSchemaMismatch,
      DiagCode::kStreamingContext,      DiagCode::kSchemaInference,
      DiagCode::kVirtualRead,           DiagCode::kDeadRealization,
      DiagCode::kActiveUnderFilter,     DiagCode::kActiveOnlyFiltering,
      DiagCode::kQueryCycle,            DiagCode::kDanglingSource,
      DiagCode::kWriterConflict,        DiagCode::kCartesianJoin,
      DiagCode::kUnboundedWindow,       DiagCode::kPatternlessProjection,
      DiagCode::kScriptStatement,
  };
  std::string upper(id);
  for (char& c : upper) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  for (const DiagCode code : kAll) {
    if (upper == DiagCodeId(code)) return code;
  }
  return std::nullopt;
}

std::string Diagnostic::ToString() const {
  std::string s = is_error() ? "error[" : "warning[";
  s += DiagCodeId(code);
  s += "]";
  if (!query.empty()) {
    s += " in query '";
    s += query;
    s += "'";
  }
  if (!node.empty()) {
    s += " at ";
    s += node;
  }
  s += ": ";
  s += message;
  if (!hint.empty()) {
    s += " (hint: ";
    s += hint;
    s += ")";
  }
  return s;
}

bool IsValid(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.is_error()) return false;
  }
  return true;
}

std::size_t CountErrors(const std::vector<Diagnostic>& diagnostics) {
  std::size_t n = 0;
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.is_error()) ++n;
  }
  return n;
}

std::size_t CountWarnings(const std::vector<Diagnostic>& diagnostics) {
  return diagnostics.size() - CountErrors(diagnostics);
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics) {
    out += diagnostic.ToString();
    out += '\n';
  }
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  obs::JsonWriter writer;
  writer.BeginArray();
  for (const Diagnostic& diagnostic : diagnostics) {
    writer.BeginObject();
    writer.Key("code").Value(DiagCodeId(diagnostic.code));
    writer.Key("severity").Value(diagnostic.is_error() ? "error" : "warning");
    writer.Key("node").Value(diagnostic.node);
    writer.Key("message").Value(diagnostic.message);
    if (!diagnostic.hint.empty()) writer.Key("hint").Value(diagnostic.hint);
    if (!diagnostic.query.empty()) {
      writer.Key("query").Value(diagnostic.query);
    }
    if (diagnostic.statement > 0) {
      writer.Key("statement")
          .Value(static_cast<std::int64_t>(diagnostic.statement));
    }
    if (diagnostic.has_fix()) {
      writer.Key("fix").BeginObject();
      writer.Key("original").Value(diagnostic.fix_original);
      writer.Key("replacement").Value(diagnostic.fix_replacement);
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
  return writer.TakeString();
}

}  // namespace serena
