#ifndef SERENA_ANALYSIS_LINT_RUNNER_H_
#define SERENA_ANALYSIS_LINT_RUNNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/session.h"
#include "common/result.h"

namespace serena {

/// The outcome of linting one `.serena` script.
struct LintResult {
  std::vector<Diagnostic> diagnostics;
  /// Statements and directives processed (comments excluded).
  int statements = 0;

  bool ok() const { return IsValid(diagnostics); }
};

/// Offline static analysis of a `.serena` script (the shell's language):
/// DDL statements are *executed* against a fresh, empty PEMS to build up
/// the catalog, and every query statement is analyzed — never executed —
/// with the full analyzer. This is what the `serena_lint` CLI runs.
///
/// Script syntax, as in `serena_shell`:
///  - `;`-terminated DDL and one-shot algebra statements;
///  - `--` and `#` comment lines;
///  - directives on their own line:
///      `\register NAME EXPR`              analyze EXPR as a continuous
///                                         query named NAME;
///      `\register NAME into STREAM EXPR`  same, feeding derived STREAM
///                                         (created on first use);
///      `\source STREAM [STREAM...]`       declare externally-fed streams
///                                         (suppresses SER041 for them);
///    other shell directives (`\tick`, `\show`, ...) are ignored — the
///    linter checks queries, it does not run sessions.
///
/// After all statements, the accumulated continuous-query set goes
/// through the cross-query lint (SER040/SER041/SER042). DDL or parse
/// failures surface as SER060 with the 1-based statement number.
///
/// Runs on an `analysis::Session` under the hood — the same facade the
/// QueryProcessor gate and the shell use, so diagnostics and their
/// ordering are identical across all three. The severity overload
/// applies per-code promotion/suppression (`--werror=` / `--no-warn=`).
Result<LintResult> LintScript(std::string_view script);
Result<LintResult> LintScript(std::string_view script,
                              const analysis::SeverityConfig& severity);

/// Splits a script into `;`-terminated statements and single-line `\`
/// directives, honoring single-quoted strings and dropping `--`/`#`
/// comment lines. Exposed for the shell and tests.
std::vector<std::string> SplitScript(std::string_view script);

/// Outcome of mechanically applying structured fix-its to a script.
struct FixResult {
  /// The rewritten script (byte-identical to the input when nothing
  /// applied — comments and formatting are preserved).
  std::string script;
  /// Number of fix-its applied.
  int fixes_applied = 0;
};

/// Lints `script` and applies every structured fix its diagnostics carry
/// (`Diagnostic::fix_original` → `fix_replacement`, first token-boundary
/// occurrence inside the offending statement; overlapping edits are
/// dropped). Iterates lint-then-apply until no further fix applies (or a
/// small pass cap), so the result is a fixpoint: running `FixScript` on
/// its own output applies zero fixes. This is what `serena_lint --fix`
/// runs.
Result<FixResult> FixScript(std::string_view script);
Result<FixResult> FixScript(std::string_view script,
                            const analysis::SeverityConfig& severity);

/// Minimal unified diff (3 context lines) between two texts — what
/// `serena_lint --fix --dry-run` prints. Empty string when they match.
std::string UnifiedDiff(std::string_view original, std::string_view updated,
                        std::string_view from_name = "a",
                        std::string_view to_name = "b");

}  // namespace serena

#endif  // SERENA_ANALYSIS_LINT_RUNNER_H_
