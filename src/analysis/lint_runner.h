#ifndef SERENA_ANALYSIS_LINT_RUNNER_H_
#define SERENA_ANALYSIS_LINT_RUNNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/result.h"

namespace serena {

/// The outcome of linting one `.serena` script.
struct LintResult {
  std::vector<Diagnostic> diagnostics;
  /// Statements and directives processed (comments excluded).
  int statements = 0;

  bool ok() const { return IsValid(diagnostics); }
};

/// Offline static analysis of a `.serena` script (the shell's language):
/// DDL statements are *executed* against a fresh, empty PEMS to build up
/// the catalog, and every query statement is analyzed — never executed —
/// with the full analyzer. This is what the `serena_lint` CLI runs.
///
/// Script syntax, as in `serena_shell`:
///  - `;`-terminated DDL and one-shot algebra statements;
///  - `--` and `#` comment lines;
///  - directives on their own line:
///      `\register NAME EXPR`              analyze EXPR as a continuous
///                                         query named NAME;
///      `\register NAME into STREAM EXPR`  same, feeding derived STREAM
///                                         (created on first use);
///      `\source STREAM [STREAM...]`       declare externally-fed streams
///                                         (suppresses SER041 for them);
///    other shell directives (`\tick`, `\show`, ...) are ignored — the
///    linter checks queries, it does not run sessions.
///
/// After all statements, the accumulated continuous-query set goes
/// through the cross-query lint (SER040/SER041/SER042). DDL or parse
/// failures surface as SER060 with the 1-based statement number.
Result<LintResult> LintScript(std::string_view script);

/// Splits a script into `;`-terminated statements and single-line `\`
/// directives, honoring single-quoted strings and dropping `--`/`#`
/// comment lines. Exposed for the shell and tests.
std::vector<std::string> SplitScript(std::string_view script);

}  // namespace serena

#endif  // SERENA_ANALYSIS_LINT_RUNNER_H_
