#ifndef SERENA_ANALYSIS_ANALYZER_H_
#define SERENA_ANALYSIS_ANALYZER_H_

#include <vector>

#include "algebra/plan.h"
#include "analysis/diagnostics.h"

namespace serena {

/// What kind of evaluation the analyzed plan is headed for. Some rules
/// change severity with the destination: a streaming operator is a hard
/// error in a one-shot query (it cannot evaluate, §4.2) but perfectly
/// fine in a continuous one.
enum class AnalysisContext {
  kNeutral,     ///< Unknown destination: context-dependent rules warn.
  kOneShot,     ///< `QueryProcessor::ExecuteOneShot` and friends.
  kContinuous,  ///< Registered with the continuous executor.
};

struct AnalyzerOptions {
  AnalysisContext context = AnalysisContext::kNeutral;
  /// With false, only errors are collected (the gate's configuration —
  /// warnings never block execution).
  bool include_warnings = true;
  /// A time window at least this wide is reported as effectively
  /// unbounded (SER051).
  Timestamp unbounded_window_threshold = 1'000'000;
};

/// Statically checks a whole plan against an environment, collecting
/// *all* findings instead of failing at the first (what `InferSchema`
/// does). Passes, in order:
///
///  1. *Schema / well-formedness* (SER001–SER010): per-operator schema
///     derivation exactly as Table 3 defines it, with coded findings —
///     missing relations/streams, bad formulas, assignment to real
///     attributes, unknown binding patterns, operand mismatches.
///  2. *Realization dataflow* (SER020/SER021, Def. 4): every read of a
///     virtual attribute (selection formula, assignment source,
///     invocation input, aggregation) must be dominated by a realizing
///     α/β; realizations whose results are provably dropped are flagged.
///  3. *Side effects* (SER030/SER031, Def. 8): ACTIVE invocations must
///     not sit under filtering operators — the filter does not reduce
///     the action set (Example 6's Q1' pattern).
///  4. *Cost lints* (SER050–SER052): Cartesian joins, empty/unbounded
///     windows, binding-pattern-eliminating projections.
///
/// Passes 2–4 need resolved schemas, so they run only when pass 1 found
/// no errors. Never returns an error status for plan *content* —
/// diagnostics are the result; only a null plan is an argument error.
///
/// Increments the `serena.analyze.errors` / `serena.analyze.warnings`
/// counters (docs/OBSERVABILITY.md) when the metrics registry is enabled.
Result<std::vector<Diagnostic>> AnalyzePlan(const PlanPtr& plan,
                                            const Environment& env,
                                            const StreamStore* streams,
                                            const AnalyzerOptions& options = {});

/// Compatibility spelling of `AnalyzePlan` with neutral context — the
/// historical `ValidatePlan` entry point, kept so existing callers (and
/// the umbrella header contract) keep working.
Result<std::vector<Diagnostic>> ValidatePlan(const PlanPtr& plan,
                                             const Environment& env,
                                             const StreamStore* streams);

}  // namespace serena

#endif  // SERENA_ANALYSIS_ANALYZER_H_
