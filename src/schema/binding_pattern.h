#ifndef SERENA_SCHEMA_BINDING_PATTERN_H_
#define SERENA_SCHEMA_BINDING_PATTERN_H_

#include <memory>
#include <string>

#include "service/prototype.h"

namespace serena {

/// A binding pattern bp = (prototype_bp, service_bp) (Def. 2).
///
/// Associated with an extended relation schema, it names the prototype to
/// invoke and the real attribute holding the service reference. The
/// prototype's input attributes must appear in the relation schema and its
/// output attributes must be virtual attributes of the relation schema —
/// the schema class enforces those restrictions at construction.
class BindingPattern {
 public:
  BindingPattern(PrototypePtr prototype, std::string service_attribute)
      : prototype_(std::move(prototype)),
        service_attribute_(std::move(service_attribute)) {}

  const Prototype& prototype() const { return *prototype_; }
  const PrototypePtr& prototype_ptr() const { return prototype_; }
  const std::string& service_attribute() const { return service_attribute_; }

  /// active(bp) = active(prototype_bp).
  bool active() const { return prototype_->active(); }

  /// Returns a copy with the service attribute renamed (used by ρ).
  BindingPattern WithServiceAttribute(std::string attribute) const {
    return BindingPattern(prototype_, std::move(attribute));
  }

  /// Table 2 rendering, e.g. "sendMessage[messenger](address, text) : (sent)".
  std::string ToString() const;

  /// Identity: same prototype name and service attribute.
  bool operator==(const BindingPattern& other) const {
    return prototype_->name() == other.prototype_->name() &&
           service_attribute_ == other.service_attribute_;
  }
  bool operator!=(const BindingPattern& other) const {
    return !(*this == other);
  }

 private:
  PrototypePtr prototype_;
  std::string service_attribute_;
};

}  // namespace serena

#endif  // SERENA_SCHEMA_BINDING_PATTERN_H_
