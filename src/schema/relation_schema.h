#ifndef SERENA_SCHEMA_RELATION_SCHEMA_H_
#define SERENA_SCHEMA_RELATION_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/attribute.h"
#include "types/tuple.h"

namespace serena {

/// A plain (non-extended) relation schema: an ordered sequence of uniquely
/// named, typed attributes (§2.3.1). Used for prototype input/output
/// schemas; all attributes are real.
///
/// Instances are immutable after construction through `Create`.
class RelationSchema {
 public:
  /// Builds a schema, validating that attribute names are unique, non-empty
  /// and that no attribute is marked virtual.
  static Result<RelationSchema> Create(std::vector<Attribute> attributes);

  /// The empty schema (used for no-input prototypes like getTemperature).
  RelationSchema() = default;

  /// Number of attributes, i.e. type(R).
  std::size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }

  /// attr_R(i), zero-based.
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Position of `name`, or nullopt.
  std::optional<std::size_t> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const { return IndexOf(name).has_value(); }

  /// Attribute names in schema order.
  std::vector<std::string> Names() const;

  /// Checks that `tuple` has this schema's arity and that every value
  /// conforms to the declared attribute type.
  Status ValidateTuple(const Tuple& tuple) const;

  /// "(a TYPE, b TYPE)" DDL-ish rendering.
  std::string ToString() const;

  bool operator==(const RelationSchema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const RelationSchema& other) const {
    return !(*this == other);
  }

 private:
  explicit RelationSchema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

}  // namespace serena

#endif  // SERENA_SCHEMA_RELATION_SCHEMA_H_
