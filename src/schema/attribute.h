#ifndef SERENA_SCHEMA_ATTRIBUTE_H_
#define SERENA_SCHEMA_ATTRIBUTE_H_

#include <string>

#include "types/data_type.h"

namespace serena {

/// Whether an attribute is real or virtual (§2.2).
///
/// Virtual attributes exist only at the schema level: tuples carry no value
/// for them. They become real through the realization operators (assignment
/// α, invocation β) or implicitly through a natural join (Table 3).
enum class AttributeKind { kReal = 0, kVirtual = 1 };

/// One attribute of a (possibly extended) relation schema.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
  AttributeKind kind = AttributeKind::kReal;

  Attribute() = default;
  Attribute(std::string name_in, DataType type_in,
            AttributeKind kind_in = AttributeKind::kReal)
      : name(std::move(name_in)), type(type_in), kind(kind_in) {}

  bool is_real() const { return kind == AttributeKind::kReal; }
  bool is_virtual() const { return kind == AttributeKind::kVirtual; }

  /// DDL form, e.g. "text STRING VIRTUAL" or "messenger SERVICE".
  std::string ToString() const {
    std::string s = name;
    s += ' ';
    s += DataTypeToString(type);
    if (is_virtual()) s += " VIRTUAL";
    return s;
  }

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type && kind == other.kind;
  }
  bool operator!=(const Attribute& other) const { return !(*this == other); }
};

}  // namespace serena

#endif  // SERENA_SCHEMA_ATTRIBUTE_H_
