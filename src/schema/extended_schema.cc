#include "schema/extended_schema.h"

#include <limits>
#include <unordered_set>

namespace serena {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

bool IsServiceReferenceType(DataType type) {
  return type == DataType::kService || type == DataType::kString;
}

}  // namespace

ExtendedSchema::ExtendedSchema(std::string name,
                               std::vector<Attribute> attributes,
                               std::vector<BindingPattern> binding_patterns)
    : name_(std::move(name)),
      attributes_(std::move(attributes)),
      binding_patterns_(std::move(binding_patterns)) {
  coordinate_of_position_.resize(attributes_.size(), kNpos);
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_real()) {
      coordinate_of_position_[i] = real_coordinates_.size();
      real_coordinates_.push_back(i);
    }
  }
}

Result<ExtendedSchemaPtr> ExtendedSchema::Create(
    std::string name, std::vector<Attribute> attributes,
    std::vector<BindingPattern> binding_patterns) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("schema '", name,
                                     "': attribute with empty name");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("schema '", name,
                                     "': duplicate attribute '", attr.name,
                                     "'");
    }
  }

  // Build a temporary schema to reuse lookup helpers during validation.
  ExtendedSchemaPtr schema(new ExtendedSchema(
      std::move(name), std::move(attributes), std::move(binding_patterns)));

  for (std::size_t i = 0; i < schema->binding_patterns_.size(); ++i) {
    const BindingPattern& bp = schema->binding_patterns_[i];
    const Prototype& proto = bp.prototype();
    // Duplicate binding patterns.
    for (std::size_t j = 0; j < i; ++j) {
      if (schema->binding_patterns_[j] == bp) {
        return Status::InvalidArgument("schema '", schema->name_,
                                       "': duplicate binding pattern ",
                                       bp.ToString());
      }
    }
    // service_bp ∈ realSchema(R), of service-reference type.
    const Attribute* service_attr =
        schema->FindAttribute(bp.service_attribute());
    if (service_attr == nullptr) {
      return Status::InvalidArgument(
          "schema '", schema->name_, "': binding pattern ", bp.ToString(),
          " references missing service attribute '", bp.service_attribute(),
          "'");
    }
    if (!service_attr->is_real()) {
      return Status::InvalidArgument(
          "schema '", schema->name_, "': service attribute '",
          bp.service_attribute(), "' must be a real attribute");
    }
    if (!IsServiceReferenceType(service_attr->type)) {
      return Status::InvalidArgument(
          "schema '", schema->name_, "': service attribute '",
          bp.service_attribute(), "' must be of SERVICE or STRING type");
    }
    // schema(Input_ψ) ⊆ schema(R), compatible types.
    for (const Attribute& in_attr : proto.input().attributes()) {
      const Attribute* rel_attr = schema->FindAttribute(in_attr.name);
      if (rel_attr == nullptr) {
        return Status::InvalidArgument(
            "schema '", schema->name_, "': input attribute '", in_attr.name,
            "' of prototype '", proto.name(), "' is not in the schema");
      }
      if (!IsAssignableTo(rel_attr->type, in_attr.type)) {
        return Status::TypeMismatch(
            "schema '", schema->name_, "': attribute '", in_attr.name,
            "' has type ", DataTypeToString(rel_attr->type),
            " incompatible with prototype input type ",
            DataTypeToString(in_attr.type));
      }
    }
    // schema(Output_ψ) ⊆ virtualSchema(R), compatible types.
    for (const Attribute& out_attr : proto.output().attributes()) {
      const Attribute* rel_attr = schema->FindAttribute(out_attr.name);
      if (rel_attr == nullptr || !rel_attr->is_virtual()) {
        return Status::InvalidArgument(
            "schema '", schema->name_, "': output attribute '", out_attr.name,
            "' of prototype '", proto.name(),
            "' must be a virtual attribute of the schema");
      }
      if (!IsAssignableTo(out_attr.type, rel_attr->type)) {
        return Status::TypeMismatch(
            "schema '", schema->name_, "': virtual attribute '",
            out_attr.name, "' has type ", DataTypeToString(rel_attr->type),
            " incompatible with prototype output type ",
            DataTypeToString(out_attr.type));
      }
    }
  }
  return schema;
}

std::optional<std::size_t> ExtendedSchema::IndexOf(
    std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

const Attribute* ExtendedSchema::FindAttribute(std::string_view name) const {
  const auto index = IndexOf(name);
  return index.has_value() ? &attributes_[*index] : nullptr;
}

bool ExtendedSchema::IsReal(std::string_view name) const {
  const Attribute* attr = FindAttribute(name);
  return attr != nullptr && attr->is_real();
}

bool ExtendedSchema::IsVirtual(std::string_view name) const {
  const Attribute* attr = FindAttribute(name);
  return attr != nullptr && attr->is_virtual();
}

std::vector<std::string> ExtendedSchema::AllNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) names.push_back(attr.name);
  return names;
}

std::vector<std::string> ExtendedSchema::RealNames() const {
  std::vector<std::string> names;
  names.reserve(real_coordinates_.size());
  for (std::size_t i : real_coordinates_) names.push_back(attributes_[i].name);
  return names;
}

std::vector<std::string> ExtendedSchema::VirtualNames() const {
  std::vector<std::string> names;
  for (const Attribute& attr : attributes_) {
    if (attr.is_virtual()) names.push_back(attr.name);
  }
  return names;
}

std::optional<std::size_t> ExtendedSchema::CoordinateOf(
    std::string_view name) const {
  const auto index = IndexOf(name);
  if (!index.has_value()) return std::nullopt;
  const std::size_t coord = coordinate_of_position_[*index];
  if (coord == kNpos) return std::nullopt;
  return coord;
}

Result<std::vector<std::size_t>> ExtendedSchema::CoordinatesOf(
    const std::vector<std::string>& names) const {
  std::vector<std::size_t> coords;
  coords.reserve(names.size());
  for (const std::string& name : names) {
    const auto coord = CoordinateOf(name);
    if (!coord.has_value()) {
      return Status::InvalidArgument(
          "schema '", name_, "': cannot project onto '", name,
          "' (virtual or missing attribute)");
    }
    coords.push_back(*coord);
  }
  return coords;
}

const BindingPattern* ExtendedSchema::FindBindingPattern(
    std::string_view prototype_name,
    std::string_view service_attribute) const {
  const BindingPattern* found = nullptr;
  for (const BindingPattern& bp : binding_patterns_) {
    if (bp.prototype().name() != prototype_name) continue;
    if (!service_attribute.empty() &&
        bp.service_attribute() != service_attribute) {
      continue;
    }
    if (found != nullptr) return nullptr;  // Ambiguous.
    found = &bp;
  }
  return found;
}

Status ExtendedSchema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != real_arity()) {
    return Status::TypeMismatch("schema '", name_, "': tuple arity ",
                                tuple.size(), " != real arity ",
                                real_arity());
  }
  for (std::size_t c = 0; c < real_coordinates_.size(); ++c) {
    const Attribute& attr = attributes_[real_coordinates_[c]];
    if (!tuple[c].ConformsTo(attr.type)) {
      return Status::TypeMismatch(
          "schema '", name_, "': value ", tuple[c].ToString(),
          " does not conform to attribute '", attr.name, "' of type ",
          DataTypeToString(attr.type));
    }
  }
  return Status::OK();
}

std::string ExtendedSchema::ToString() const {
  std::string s = "EXTENDED RELATION " + name_ + " (\n";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    s += "  " + attributes_[i].ToString();
    if (i + 1 < attributes_.size()) s += ',';
    s += '\n';
  }
  s += ")";
  if (!binding_patterns_.empty()) {
    s += " USING BINDING PATTERNS (\n";
    for (std::size_t i = 0; i < binding_patterns_.size(); ++i) {
      s += "  " + binding_patterns_[i].ToString();
      if (i + 1 < binding_patterns_.size()) s += ',';
      s += '\n';
    }
    s += ")";
  }
  return s;
}

}  // namespace serena
