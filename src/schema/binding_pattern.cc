#include "schema/binding_pattern.h"

#include "common/string_util.h"

namespace serena {

std::string BindingPattern::ToString() const {
  std::string s = prototype_->name();
  s += '[';
  s += service_attribute_;
  s += "](";
  s += Join(prototype_->input().Names(), ", ");
  s += ") : (";
  s += Join(prototype_->output().Names(), ", ");
  s += ')';
  return s;
}

}  // namespace serena
