#ifndef SERENA_SCHEMA_EXTENDED_SCHEMA_H_
#define SERENA_SCHEMA_EXTENDED_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/attribute.h"
#include "schema/binding_pattern.h"
#include "types/tuple.h"

namespace serena {

class ExtendedSchema;
using ExtendedSchemaPtr = std::shared_ptr<const ExtendedSchema>;

/// An extended relation schema (Def. 2): an ordered attribute sequence
/// partitioned into real and virtual attributes, plus a finite set of
/// binding patterns.
///
/// Tuples over the schema are elements of D^|realSchema(R)| (Def. 3): the
/// coordinate of the i-th attribute is δ_R(i), the number of real
/// attributes among the first i (Def. 4). `CoordinateOf` exposes exactly
/// that mapping.
///
/// A standard relation schema is the special case with no virtual
/// attributes and no binding patterns. Instances are immutable; algebra
/// operators derive new schemas.
class ExtendedSchema {
 public:
  /// Validates Def. 2:
  ///  - attribute names unique and non-empty;
  ///  - every binding pattern's service attribute is a *real* attribute of
  ///    string/service type;
  ///  - schema(Input_ψ) ⊆ schema(R) with compatible types;
  ///  - schema(Output_ψ) ⊆ virtualSchema(R) with compatible types;
  ///  - no duplicate binding patterns.
  static Result<ExtendedSchemaPtr> Create(
      std::string name, std::vector<Attribute> attributes,
      std::vector<BindingPattern> binding_patterns = {});

  /// The relation symbol R (may be synthesized for derived schemas).
  const std::string& name() const { return name_; }

  /// type(R): total number of attributes, virtual included.
  std::size_t size() const { return attributes_.size(); }

  /// attr_R(i), zero-based.
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Position of `name` in the schema, or nullopt.
  std::optional<std::size_t> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const {
    return IndexOf(name).has_value();
  }
  /// Attribute by name, or nullptr.
  const Attribute* FindAttribute(std::string_view name) const;

  bool IsReal(std::string_view name) const;
  bool IsVirtual(std::string_view name) const;

  /// All attribute names in schema order.
  std::vector<std::string> AllNames() const;
  /// realSchema(R) in schema order.
  std::vector<std::string> RealNames() const;
  /// virtualSchema(R) in schema order.
  std::vector<std::string> VirtualNames() const;

  /// |realSchema(R)| — the arity of tuples over this schema.
  std::size_t real_arity() const { return real_coordinates_.size(); }

  /// δ_R: the tuple coordinate of real attribute `name` (Def. 4), or
  /// nullopt if the attribute is virtual or absent.
  std::optional<std::size_t> CoordinateOf(std::string_view name) const;

  /// Coordinates for a list of real attributes; error if any is virtual or
  /// missing.
  Result<std::vector<std::size_t>> CoordinatesOf(
      const std::vector<std::string>& names) const;

  const std::vector<BindingPattern>& binding_patterns() const {
    return binding_patterns_;
  }

  /// Finds a binding pattern by prototype name; if `service_attribute` is
  /// non-empty it must match too. Returns nullptr if absent/ambiguous.
  const BindingPattern* FindBindingPattern(
      std::string_view prototype_name,
      std::string_view service_attribute = {}) const;

  /// Arity/type check for a tuple over realSchema(R).
  Status ValidateTuple(const Tuple& tuple) const;

  /// True if both schemas have identical ordered attribute sequences
  /// (names, types, kinds). Binding patterns are not compared — set
  /// operators require only schema equality.
  bool SameAttributes(const ExtendedSchema& other) const {
    return attributes_ == other.attributes_;
  }

  /// Pseudo-DDL rendering matching Table 2.
  std::string ToString() const;

 private:
  ExtendedSchema(std::string name, std::vector<Attribute> attributes,
                 std::vector<BindingPattern> binding_patterns);

  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<BindingPattern> binding_patterns_;
  // Position in `attributes_` of each real attribute, in schema order;
  // real_coordinates_[c] is the schema index of tuple coordinate c.
  std::vector<std::size_t> real_coordinates_;
  // For each schema position i: the tuple coordinate (δ_R(i) - 1 in the
  // paper's 1-based terms), or npos when the attribute is virtual.
  std::vector<std::size_t> coordinate_of_position_;
};

}  // namespace serena

#endif  // SERENA_SCHEMA_EXTENDED_SCHEMA_H_
