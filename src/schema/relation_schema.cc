#include "schema/relation_schema.h"

#include <unordered_set>

namespace serena {

Result<RelationSchema> RelationSchema::Create(
    std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (attr.is_virtual()) {
      return Status::InvalidArgument(
          "plain relation schema cannot contain virtual attribute '",
          attr.name, "'");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name '", attr.name,
                                     "'");
    }
  }
  return RelationSchema(std::move(attributes));
}

std::optional<std::size_t> RelationSchema::IndexOf(
    std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> RelationSchema::Names() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) names.push_back(attr.name);
  return names;
}

Status RelationSchema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != attributes_.size()) {
    return Status::TypeMismatch("tuple arity ", tuple.size(),
                                " does not match schema arity ",
                                attributes_.size());
  }
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (!tuple[i].ConformsTo(attributes_[i].type)) {
      return Status::TypeMismatch(
          "value ", tuple[i].ToString(), " does not conform to attribute '",
          attributes_[i].name, "' of type ",
          DataTypeToString(attributes_[i].type));
    }
  }
  return Status::OK();
}

std::string RelationSchema::ToString() const {
  std::string s = "(";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) s += ", ";
    s += attributes_[i].ToString();
  }
  s += ")";
  return s;
}

}  // namespace serena
