#ifndef SERENA_ENV_PROTOTYPES_H_
#define SERENA_ENV_PROTOTYPES_H_

#include "service/prototype.h"

namespace serena {

/// The four canonical prototypes of Table 1, plus the RSS wrapper
/// prototype used by the second §5.2 experiment. Each factory returns a
/// fresh immutable instance; prototypes compare by name throughout the
/// system, so sharing is an optimization, not a requirement.

/// PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE.
PrototypePtr MakeSendMessagePrototype();

/// PROTOTYPE sendPhotoMessage(address STRING, text STRING, photo BLOB)
///   : (delivered BOOLEAN) ACTIVE.
/// The §5.2 experiment extends `contacts` with "an additional attribute
/// allowing to send a picture with a message" — this is that prototype.
PrototypePtr MakeSendPhotoMessagePrototype();

/// PROTOTYPE checkPhoto(area STRING) : (quality INTEGER, delay REAL).
PrototypePtr MakeCheckPhotoPrototype();

/// PROTOTYPE takePhoto(area STRING, quality INTEGER) : (photo BLOB).
/// `active` reflects the application designer's choice discussed in §3.3:
/// taking a photo may or may not be considered a side effect.
PrototypePtr MakeTakePhotoPrototype(bool active = false);

/// PROTOTYPE getTemperature() : (temperature REAL).
PrototypePtr MakeGetTemperaturePrototype();

/// PROTOTYPE fetchItems(feed STRING) : (item INTEGER, title STRING).
/// The RSS wrapper functionality of §5.2 (periodically polls a feed).
PrototypePtr MakeFetchItemsPrototype();

}  // namespace serena

#endif  // SERENA_ENV_PROTOTYPES_H_
