#ifndef SERENA_ENV_SYNTHETIC_SERVICE_H_
#define SERENA_ENV_SYNTHETIC_SERVICE_H_

#include <atomic>
#include <string>
#include <vector>

#include "service/service.h"

namespace serena {

/// A generic simulated service: implements any set of prototypes by
/// producing deterministic, schema-conformant output values derived from
/// hash(service, prototype, input, instant).
///
/// Used by the DDL catalog's default service resolver, so that a pure-DDL
/// description of an environment (Table 1) yields a fully executable
/// simulation without writing any device code.
class SyntheticService final : public Service {
 public:
  SyntheticService(std::string id, std::vector<PrototypePtr> prototypes,
                   std::uint64_t seed = 0);

  std::vector<PrototypePtr> prototypes() const override {
    return prototypes_;
  }

  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override;

  std::uint64_t invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<PrototypePtr> prototypes_;
  std::uint64_t seed_;
  // Atomic: batched invocation calls services concurrently.
  std::atomic<std::uint64_t> invocations_{0};
};

}  // namespace serena

#endif  // SERENA_ENV_SYNTHETIC_SERVICE_H_
