#include "env/prototypes.h"

namespace serena {

namespace {

RelationSchema Schema(std::vector<Attribute> attrs) {
  return RelationSchema::Create(std::move(attrs)).ValueOrDie();
}

}  // namespace

PrototypePtr MakeSendMessagePrototype() {
  return Prototype::Create("sendMessage",
                           Schema({{"address", DataType::kString},
                                   {"text", DataType::kString}}),
                           Schema({{"sent", DataType::kBool}}),
                           /*active=*/true)
      .ValueOrDie();
}

PrototypePtr MakeSendPhotoMessagePrototype() {
  return Prototype::Create("sendPhotoMessage",
                           Schema({{"address", DataType::kString},
                                   {"text", DataType::kString},
                                   {"photo", DataType::kBlob}}),
                           Schema({{"delivered", DataType::kBool}}),
                           /*active=*/true)
      .ValueOrDie();
}

PrototypePtr MakeCheckPhotoPrototype() {
  return Prototype::Create("checkPhoto",
                           Schema({{"area", DataType::kString}}),
                           Schema({{"quality", DataType::kInt},
                                   {"delay", DataType::kReal}}),
                           /*active=*/false)
      .ValueOrDie();
}

PrototypePtr MakeTakePhotoPrototype(bool active) {
  return Prototype::Create("takePhoto",
                           Schema({{"area", DataType::kString},
                                   {"quality", DataType::kInt}}),
                           Schema({{"photo", DataType::kBlob}}), active)
      .ValueOrDie();
}

PrototypePtr MakeGetTemperaturePrototype() {
  return Prototype::Create("getTemperature", RelationSchema(),
                           Schema({{"temperature", DataType::kReal}}),
                           /*active=*/false)
      .ValueOrDie();
}

PrototypePtr MakeFetchItemsPrototype() {
  return Prototype::Create("fetchItems",
                           Schema({{"feed", DataType::kString}}),
                           Schema({{"item", DataType::kInt},
                                   {"title", DataType::kString}}),
                           /*active=*/false)
      .ValueOrDie();
}

}  // namespace serena
