#ifndef SERENA_ENV_SCENARIO_H_
#define SERENA_ENV_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "env/sim_services.h"
#include "stream/stream_store.h"
#include "xrel/environment.h"

namespace serena {

/// Sizing knobs for the temperature-surveillance environment. Defaults
/// reproduce the paper's motivating example exactly (4 sensors, 3 cameras,
/// 3 contacts, 3 areas); the extras scale the same topology up for the
/// benchmark sweeps.
struct TemperatureScenarioOptions {
  int extra_sensors = 0;
  int extra_cameras = 0;
  int extra_contacts = 0;
  /// Additional synthetic areas beyond corridor/office/roof.
  int extra_areas = 0;
  /// The §3.3 design choice: is takePhoto a side effect?
  bool take_photo_active = false;
  /// §5.2: extend `contacts` with a photo attribute so alerts can carry a
  /// picture (enables `Q5()`, the combined surveillance query).
  bool photo_messaging = false;
  std::uint64_t seed = 42;
};

/// The temperature surveillance scenario (§1.2, §5.2): builds the full
/// relational pervasive environment — prototypes of Table 1, X-Relations
/// of Table 2 (plus `sensors` and `surveillance`), the `temperatures`
/// stream, and all simulated devices registered as services.
class TemperatureScenario {
 public:
  static Result<std::unique_ptr<TemperatureScenario>> Build(
      const TemperatureScenarioOptions& options = {});

  Environment& env() { return env_; }
  StreamStore& streams() { return streams_; }

  const TemperatureScenarioOptions& options() const { return options_; }

  // Simulated devices (also registered in env().registry()).
  const std::shared_ptr<MessengerService>& email() const { return email_; }
  const std::shared_ptr<MessengerService>& jabber() const { return jabber_; }
  const std::shared_ptr<MessengerService>& sms() const { return sms_; }
  const std::vector<std::shared_ptr<TemperatureSensorService>>& sensors()
      const {
    return sensors_;
  }
  const std::vector<std::shared_ptr<CameraService>>& cameras() const {
    return cameras_;
  }

  /// All messages sent by any messenger, in send order.
  std::vector<SentMessage> AllSentMessages() const;
  void ClearOutboxes();

  /// Reads every sensor in the `sensors` X-Relation (through the algebra:
  /// invoke[getTemperature](sensors)) and appends (location, temperature)
  /// tuples to the `temperatures` stream at instant `t`. This is the
  /// "continuous query building a temperature stream from all available
  /// sensors" of §1.2; sensors that fail or disappeared are skipped.
  Status PumpTemperatureStream(Timestamp t);

  /// Dynamic discovery: registers a new sensor and adds it to the
  /// `sensors` X-Relation, while continuous queries keep running (§5.2).
  Status AddSensor(const std::string& id, const std::string& location,
                   double base_celsius);

  /// A sensor disappears: unregistered and removed from `sensors`.
  Status RemoveSensor(const std::string& id);

  // --- The canonical queries of Table 4 -----------------------------------

  /// Q1: β_sendMessage(α_text:='Bonjour!'(σ_name≠'Carla'(contacts))).
  PlanPtr Q1() const;
  /// Q1': σ_name≠'Carla'(β_sendMessage(α_text:='Bonjour!'(contacts))) —
  /// NOT equivalent to Q1 (its action set also messages Carla, Example 6).
  PlanPtr Q1Prime() const;
  /// Q2: π_photo(β_takePhoto(σ_quality≥5(β_checkPhoto(
  ///        σ_area='office'(cameras))))).
  PlanPtr Q2() const;
  /// Q2': π_photo(β_takePhoto(σ_quality≥5 ∧ area='office'(
  ///        β_checkPhoto(cameras)))) — equivalent to Q2 when the photo
  /// prototypes are passive (Example 7), but invokes checkPhoto on every
  /// camera.
  PlanPtr Q2Prime() const;
  /// Q3 (continuous, Example 8): when a temperature exceeds 35.5°C, send
  /// "Hot!" to the manager of the area.
  PlanPtr Q3() const;
  /// Q4 (continuous, Example 8): when a temperature drops below 12.0°C,
  /// take a photo of the area; result is a photo stream.
  PlanPtr Q4() const;
  /// Q5 (continuous, full §5.2 surveillance with photo messaging): when a
  /// temperature exceeds 35.5°C, photograph the area and send the photo
  /// to the area's manager. Chains two invocation operators on different
  /// service attributes (camera, then messenger) in one declarative
  /// query. Requires `options.photo_messaging`.
  PlanPtr Q5() const;

  // Relation / stream names used by the scenario.
  static constexpr const char* kSensors = "sensors";
  static constexpr const char* kContacts = "contacts";
  static constexpr const char* kCameras = "cameras";
  static constexpr const char* kSurveillance = "surveillance";
  static constexpr const char* kTemperatures = "temperatures";

 private:
  TemperatureScenario() = default;

  Status Init(const TemperatureScenarioOptions& options);

  TemperatureScenarioOptions options_;
  Environment env_;
  StreamStore streams_;
  std::vector<std::string> areas_;
  std::shared_ptr<MessengerService> email_;
  std::shared_ptr<MessengerService> jabber_;
  std::shared_ptr<MessengerService> sms_;
  std::vector<std::shared_ptr<TemperatureSensorService>> sensors_;
  std::vector<std::shared_ptr<CameraService>> cameras_;
};

/// Sizing knobs for the RSS experiment.
struct RssScenarioOptions {
  int extra_feeds = 0;
  int items_per_instant = 2;
  double keyword_rate = 0.15;
  std::uint64_t seed = 7;
};

/// The RSS feed scenario (§5.2): wrapper services turn feeds into the
/// `news` stream; continuous keyword-window queries select items of
/// interest and can forward them to contacts as messages.
class RssScenario {
 public:
  static Result<std::unique_ptr<RssScenario>> Build(
      const RssScenarioOptions& options = {});

  Environment& env() { return env_; }
  StreamStore& streams() { return streams_; }

  const std::vector<std::shared_ptr<RssFeedService>>& feeds() const {
    return feeds_;
  }
  const std::shared_ptr<MessengerService>& email() const { return email_; }

  /// Polls every feed in the `feeds` X-Relation (through
  /// invoke[fetchItems](feeds)) and appends new items to `news` at `t` —
  /// the paper's wrapper that "transforms RSS feeds into real streams".
  Status PumpNews(Timestamp t);

  /// Continuous query: the last `window` instants of news whose title
  /// contains `keyword` (the "Obama with a one-hour window" query).
  PlanPtr KeywordQuery(const std::string& keyword, Timestamp window) const;

  /// Continuous query: forward matching news as messages to contact
  /// `name` (combines the keyword table with `contacts`, §5.2).
  PlanPtr ForwardQuery(const std::string& keyword, Timestamp window,
                       const std::string& name) const;

  static constexpr const char* kFeeds = "feeds";
  static constexpr const char* kContacts = "contacts";
  static constexpr const char* kNews = "news";

 private:
  RssScenario() = default;

  Status Init(const RssScenarioOptions& options);

  RssScenarioOptions options_;
  Environment env_;
  StreamStore streams_;
  std::vector<std::shared_ptr<RssFeedService>> feeds_;
  std::shared_ptr<MessengerService> email_;
};

}  // namespace serena

#endif  // SERENA_ENV_SCENARIO_H_
