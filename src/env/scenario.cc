#include "env/scenario.h"

#include <utility>

#include "common/string_util.h"

namespace serena {

namespace {

Result<ExtendedSchemaPtr> SensorsSchema(const PrototypePtr& get_temperature) {
  return ExtendedSchema::Create(
      TemperatureScenario::kSensors,
      {{"sensor", DataType::kService},
       {"location", DataType::kString},
       {"temperature", DataType::kReal, AttributeKind::kVirtual}},
      {BindingPattern(get_temperature, "sensor")});
}

Result<ExtendedSchemaPtr> ContactsSchema(
    const PrototypePtr& send_message, const char* name,
    const PrototypePtr& send_photo_message = nullptr) {
  std::vector<Attribute> attributes = {
      {"name", DataType::kString},
      {"address", DataType::kString},
      {"text", DataType::kString, AttributeKind::kVirtual},
      {"messenger", DataType::kService},
      {"sent", DataType::kBool, AttributeKind::kVirtual}};
  std::vector<BindingPattern> patterns = {
      BindingPattern(send_message, "messenger")};
  if (send_photo_message != nullptr) {
    // §5.2: "an additional attribute allowing to send a picture with a
    // message".
    attributes.push_back(
        {"photo", DataType::kBlob, AttributeKind::kVirtual});
    attributes.push_back(
        {"delivered", DataType::kBool, AttributeKind::kVirtual});
    patterns.push_back(BindingPattern(send_photo_message, "messenger"));
  }
  return ExtendedSchema::Create(name, std::move(attributes),
                                std::move(patterns));
}

Result<ExtendedSchemaPtr> CamerasSchema(const PrototypePtr& check_photo,
                                        const PrototypePtr& take_photo) {
  return ExtendedSchema::Create(
      TemperatureScenario::kCameras,
      {{"camera", DataType::kService},
       {"area", DataType::kString},
       {"quality", DataType::kInt, AttributeKind::kVirtual},
       {"delay", DataType::kReal, AttributeKind::kVirtual},
       {"photo", DataType::kBlob, AttributeKind::kVirtual}},
      {BindingPattern(check_photo, "camera"),
       BindingPattern(take_photo, "camera")});
}

}  // namespace

// ---------------------------------------------------------------------------
// TemperatureScenario
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TemperatureScenario>> TemperatureScenario::Build(
    const TemperatureScenarioOptions& options) {
  std::unique_ptr<TemperatureScenario> scenario(new TemperatureScenario());
  SERENA_RETURN_NOT_OK(scenario->Init(options));
  return scenario;
}

Status TemperatureScenario::Init(const TemperatureScenarioOptions& options) {
  options_ = options;

  // Prototypes of Table 1.
  PrototypePtr send_message = MakeSendMessagePrototype();
  PrototypePtr check_photo = MakeCheckPhotoPrototype();
  PrototypePtr take_photo = MakeTakePhotoPrototype(options.take_photo_active);
  PrototypePtr get_temperature = MakeGetTemperaturePrototype();
  SERENA_RETURN_NOT_OK(env_.AddPrototype(send_message));
  SERENA_RETURN_NOT_OK(env_.AddPrototype(check_photo));
  SERENA_RETURN_NOT_OK(env_.AddPrototype(take_photo));
  SERENA_RETURN_NOT_OK(env_.AddPrototype(get_temperature));
  PrototypePtr send_photo_message;
  if (options.photo_messaging) {
    send_photo_message = MakeSendPhotoMessagePrototype();
    SERENA_RETURN_NOT_OK(env_.AddPrototype(send_photo_message));
  }

  areas_ = {"corridor", "office", "roof"};
  for (int i = 0; i < options.extra_areas; ++i) {
    areas_.push_back(StringFormat("area%03d", i));
  }

  // Messengers (mail server, Openfire IM, Clickatell SMS gateway).
  email_ = std::make_shared<MessengerService>("email",
                                              MessengerService::Kind::kEmail);
  jabber_ = std::make_shared<MessengerService>(
      "jabber", MessengerService::Kind::kJabber);
  sms_ =
      std::make_shared<MessengerService>("sms", MessengerService::Kind::kSms);
  SERENA_RETURN_NOT_OK(env_.registry().Register(email_));
  SERENA_RETURN_NOT_OK(env_.registry().Register(jabber_));
  SERENA_RETURN_NOT_OK(env_.registry().Register(sms_));

  // X-Relations.
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr sensors_schema,
                          SensorsSchema(get_temperature));
  SERENA_RETURN_NOT_OK(env_.AddRelation(std::move(sensors_schema)));
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr contacts_schema,
      ContactsSchema(send_message, kContacts, send_photo_message));
  SERENA_RETURN_NOT_OK(env_.AddRelation(std::move(contacts_schema)));
  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr cameras_schema,
                          CamerasSchema(check_photo, take_photo));
  SERENA_RETURN_NOT_OK(env_.AddRelation(std::move(cameras_schema)));
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr surveillance_schema,
      ExtendedSchema::Create(kSurveillance, {{"name", DataType::kString},
                                             {"location",
                                              DataType::kString}}));
  SERENA_RETURN_NOT_OK(env_.AddRelation(std::move(surveillance_schema)));

  // The `temperatures` stream (infinite XD-Relation).
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr temperatures_schema,
      ExtendedSchema::Create(kTemperatures,
                             {{"location", DataType::kString},
                              {"temperature", DataType::kReal}}));
  SERENA_RETURN_NOT_OK(streams_.AddStream(std::move(temperatures_schema)));

  // The paper's sensors (Table 1 / §1.2) ...
  struct SensorSpec {
    const char* id;
    const char* location;
    double base;
  };
  const SensorSpec paper_sensors[] = {{"sensor01", "corridor", 19.0},
                                      {"sensor06", "office", 21.0},
                                      {"sensor07", "office", 21.5},
                                      {"sensor22", "roof", 14.0}};
  for (const SensorSpec& spec : paper_sensors) {
    SERENA_RETURN_NOT_OK(AddSensor(spec.id, spec.location, spec.base));
  }
  // ... plus synthetic extras for scaling studies.
  for (int i = 0; i < options.extra_sensors; ++i) {
    const std::string& location = areas_[i % areas_.size()];
    SERENA_RETURN_NOT_OK(AddSensor(StringFormat("sensor%04d", 100 + i),
                                   location,
                                   16.0 + (i % 10)));
  }

  // Cameras.
  struct CameraSpec {
    const char* id;
    const char* area;
  };
  const CameraSpec paper_cameras[] = {
      {"camera01", "office"}, {"camera02", "corridor"}, {"webcam07", "roof"}};
  XRelation* cameras_rel = env_.GetMutableRelation(kCameras).ValueOrDie();
  auto add_camera = [&](const std::string& id,
                        const std::string& area) -> Status {
    auto camera = std::make_shared<CameraService>(
        id, std::vector<std::string>{area}, options_.seed,
        options_.take_photo_active);
    cameras_.push_back(camera);
    SERENA_RETURN_NOT_OK(env_.registry().Register(std::move(camera)));
    return cameras_rel
        ->Insert(Tuple{Value::String(id), Value::String(area)})
        .status();
  };
  for (const CameraSpec& spec : paper_cameras) {
    SERENA_RETURN_NOT_OK(add_camera(spec.id, spec.area));
  }
  for (int i = 0; i < options.extra_cameras; ++i) {
    SERENA_RETURN_NOT_OK(add_camera(StringFormat("camera%04d", 100 + i),
                                    areas_[i % areas_.size()]));
  }

  // Contacts (Example 4) and surveillance assignments.
  XRelation* contacts_rel = env_.GetMutableRelation(kContacts).ValueOrDie();
  struct ContactSpec {
    const char* name;
    const char* address;
    const char* messenger;
    const char* watches;
  };
  const ContactSpec paper_contacts[] = {
      {"Nicolas", "nicolas@elysee.fr", "email", "corridor"},
      {"Carla", "carla@elysee.fr", "email", "office"},
      {"Francois", "francois@im.gouv.fr", "jabber", "roof"}};
  XRelation* surveillance_rel =
      env_.GetMutableRelation(kSurveillance).ValueOrDie();
  const char* messenger_cycle[] = {"email", "jabber", "sms"};
  for (const ContactSpec& spec : paper_contacts) {
    SERENA_RETURN_NOT_OK(
        contacts_rel
            ->Insert(Tuple{Value::String(spec.name),
                           Value::String(spec.address),
                           Value::String(spec.messenger)})
            .status());
    SERENA_RETURN_NOT_OK(surveillance_rel
                             ->Insert(Tuple{Value::String(spec.name),
                                            Value::String(spec.watches)})
                             .status());
  }
  for (int i = 0; i < options.extra_contacts; ++i) {
    const std::string name = StringFormat("contact%04d", i);
    SERENA_RETURN_NOT_OK(
        contacts_rel
            ->Insert(Tuple{Value::String(name),
                           Value::String(name + "@example.org"),
                           Value::String(messenger_cycle[i % 3])})
            .status());
    SERENA_RETURN_NOT_OK(
        surveillance_rel
            ->Insert(Tuple{Value::String(name),
                           Value::String(areas_[i % areas_.size()])})
            .status());
  }
  return Status::OK();
}

std::vector<SentMessage> TemperatureScenario::AllSentMessages() const {
  std::vector<SentMessage> all;
  for (const auto& messenger : {email_, jabber_, sms_}) {
    const std::vector<SentMessage> outbox = messenger->outbox();
    all.insert(all.end(), outbox.begin(), outbox.end());
  }
  return all;
}

void TemperatureScenario::ClearOutboxes() {
  email_->ClearOutbox();
  jabber_->ClearOutbox();
  sms_->ClearOutbox();
}

Status TemperatureScenario::PumpTemperatureStream(Timestamp t) {
  // invoke[getTemperature](sensors), then keep (location, temperature).
  PlanPtr plan = Project(Invoke(Scan(kSensors), "getTemperature"),
                         {"location", "temperature"});
  EvalContext ctx;
  ctx.env = &env_;
  ctx.streams = &streams_;
  ctx.instant = t;
  ctx.error_policy = InvocationErrorPolicy::kSkipTuple;
  SERENA_ASSIGN_OR_RETURN(XRelation readings, plan->Evaluate(ctx));
  SERENA_ASSIGN_OR_RETURN(XDRelation * stream,
                          streams_.GetStream(kTemperatures));
  for (const Tuple& reading : readings.tuples()) {
    SERENA_RETURN_NOT_OK(stream->Append(t, reading));
  }
  return Status::OK();
}

Status TemperatureScenario::AddSensor(const std::string& id,
                                      const std::string& location,
                                      double base_celsius) {
  auto sensor =
      std::make_shared<TemperatureSensorService>(id, base_celsius,
                                                 options_.seed);
  sensors_.push_back(sensor);
  SERENA_RETURN_NOT_OK(env_.registry().Register(std::move(sensor)));
  SERENA_ASSIGN_OR_RETURN(XRelation * relation,
                          env_.GetMutableRelation(kSensors));
  return relation->Insert(Tuple{Value::String(id), Value::String(location)})
      .status();
}

Status TemperatureScenario::RemoveSensor(const std::string& id) {
  SERENA_RETURN_NOT_OK(env_.registry().Unregister(id));
  SERENA_ASSIGN_OR_RETURN(XRelation * relation,
                          env_.GetMutableRelation(kSensors));
  // Find the tuple with this sensor reference.
  const auto coord = relation->schema().CoordinateOf("sensor");
  for (const Tuple& t : relation->tuples()) {
    if (t[*coord] == Value::String(id)) {
      Tuple victim = t;
      relation->Erase(victim);
      return Status::OK();
    }
  }
  return Status::NotFound("sensor '", id, "' not present in relation");
}

PlanPtr TemperatureScenario::Q1() const {
  return Invoke(
      Assign(Select(Scan(kContacts),
                    Formula::Compare(Operand::Attr("name"), CompareOp::kNe,
                                     Operand::Const(Value::String("Carla")))),
             "text", Value::String("Bonjour!")),
      "sendMessage");
}

PlanPtr TemperatureScenario::Q1Prime() const {
  return Select(
      Invoke(Assign(Scan(kContacts), "text", Value::String("Bonjour!")),
             "sendMessage"),
      Formula::Compare(Operand::Attr("name"), CompareOp::kNe,
                       Operand::Const(Value::String("Carla"))));
}

PlanPtr TemperatureScenario::Q2() const {
  return Project(
      Invoke(Select(Invoke(Select(Scan(kCameras),
                                  Formula::Compare(
                                      Operand::Attr("area"), CompareOp::kEq,
                                      Operand::Const(
                                          Value::String("office")))),
                           "checkPhoto"),
                    Formula::Compare(Operand::Attr("quality"), CompareOp::kGe,
                                     Operand::Const(Value::Int(5)))),
             "takePhoto"),
      {"photo"});
}

PlanPtr TemperatureScenario::Q2Prime() const {
  return Project(
      Invoke(Select(Invoke(Scan(kCameras), "checkPhoto"),
                    Formula::And(
                        Formula::Compare(Operand::Attr("quality"),
                                         CompareOp::kGe,
                                         Operand::Const(Value::Int(5))),
                        Formula::Compare(Operand::Attr("area"), CompareOp::kEq,
                                         Operand::Const(
                                             Value::String("office"))))),
             "takePhoto"),
      {"photo"});
}

PlanPtr TemperatureScenario::Q3() const {
  // Hot readings in the last instant, joined to the area manager and their
  // contact entry, then messaged.
  PlanPtr hot = Select(Window(kTemperatures, 1),
                       Formula::Compare(Operand::Attr("temperature"),
                                        CompareOp::kGt,
                                        Operand::Const(Value::Real(35.5))));
  PlanPtr managed = Join(hot, Scan(kSurveillance));
  PlanPtr with_contacts = Join(managed, Scan(kContacts));
  return Invoke(Assign(with_contacts, "text", Value::String("Hot!")),
                "sendMessage");
}

PlanPtr TemperatureScenario::Q4() const {
  PlanPtr cold = Select(Window(kTemperatures, 1),
                        Formula::Compare(Operand::Attr("temperature"),
                                         CompareOp::kLt,
                                         Operand::Const(Value::Real(12.0))));
  PlanPtr by_area = Rename(cold, "location", "area");
  PlanPtr with_cameras = Join(by_area, Scan(kCameras));
  PlanPtr shot = Invoke(Assign(with_cameras, "quality", Value::Int(5)),
                        "takePhoto");
  return Streaming(Project(shot, {"area", "photo"}),
                   StreamingType::kInsertion);
}

PlanPtr TemperatureScenario::Q5() const {
  // Hot readings, routed to the manager and their contact entry...
  PlanPtr hot = Select(Window(kTemperatures, 1),
                       Formula::Compare(Operand::Attr("temperature"),
                                        CompareOp::kGt,
                                        Operand::Const(Value::Real(35.5))));
  PlanPtr with_contacts =
      Join(Join(hot, Scan(kSurveillance)), Scan(kContacts));
  // ...then matched with the cameras covering the same area. The contact
  // side's virtual `photo` is realized later by takePhoto on the camera
  // side of the very same tuples.
  PlanPtr by_area = Rename(with_contacts, "location", "area");
  PlanPtr with_cameras = Join(by_area, Scan(kCameras));
  PlanPtr shot = Invoke(Assign(with_cameras, "quality", Value::Int(5)),
                        "takePhoto");
  return Invoke(Assign(shot, "text", Value::String("Hot! photo attached")),
                "sendPhotoMessage");
}

// ---------------------------------------------------------------------------
// RssScenario
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RssScenario>> RssScenario::Build(
    const RssScenarioOptions& options) {
  std::unique_ptr<RssScenario> scenario(new RssScenario());
  SERENA_RETURN_NOT_OK(scenario->Init(options));
  return scenario;
}

Status RssScenario::Init(const RssScenarioOptions& options) {
  options_ = options;

  PrototypePtr fetch_items = MakeFetchItemsPrototype();
  PrototypePtr send_message = MakeSendMessagePrototype();
  SERENA_RETURN_NOT_OK(env_.AddPrototype(fetch_items));
  SERENA_RETURN_NOT_OK(env_.AddPrototype(send_message));

  email_ = std::make_shared<MessengerService>("email",
                                              MessengerService::Kind::kEmail);
  SERENA_RETURN_NOT_OK(env_.registry().Register(email_));

  // feeds(feed SERVICE, item*, title*) with fetchItems[feed](feed):(item,title).
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr feeds_schema,
      ExtendedSchema::Create(
          kFeeds,
          {{"feed", DataType::kService},
           {"item", DataType::kInt, AttributeKind::kVirtual},
           {"title", DataType::kString, AttributeKind::kVirtual}},
          {BindingPattern(fetch_items, "feed")}));
  SERENA_RETURN_NOT_OK(env_.AddRelation(std::move(feeds_schema)));

  SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr contacts_schema,
                          ContactsSchema(send_message, kContacts));
  SERENA_RETURN_NOT_OK(env_.AddRelation(std::move(contacts_schema)));

  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr news_schema,
      ExtendedSchema::Create(kNews, {{"feed", DataType::kString},
                                     {"item", DataType::kInt},
                                     {"title", DataType::kString}}));
  SERENA_RETURN_NOT_OK(streams_.AddStream(std::move(news_schema)));

  const std::vector<std::string> word_pool = {
      "election", "economie", "europe",  "climat", "sports",
      "culture",  "science",  "budget",  "sante",  "monde"};
  const std::vector<std::string> keywords = {"Obama", "Sarkozy"};

  std::vector<std::string> feed_names = {"lemonde", "lefigaro", "cnn"};
  for (int i = 0; i < options.extra_feeds; ++i) {
    feed_names.push_back(StringFormat("feed%04d", i));
  }
  XRelation* feeds_rel = env_.GetMutableRelation(kFeeds).ValueOrDie();
  for (std::size_t i = 0; i < feed_names.size(); ++i) {
    auto feed = std::make_shared<RssFeedService>(
        feed_names[i], word_pool, keywords, options.keyword_rate,
        options.items_per_instant, options.seed + i);
    feeds_.push_back(feed);
    SERENA_RETURN_NOT_OK(env_.registry().Register(std::move(feed)));
    SERENA_RETURN_NOT_OK(
        feeds_rel->Insert(Tuple{Value::String(feed_names[i])}).status());
  }

  XRelation* contacts_rel = env_.GetMutableRelation(kContacts).ValueOrDie();
  SERENA_RETURN_NOT_OK(contacts_rel
                           ->Insert(Tuple{Value::String("Carla"),
                                          Value::String("carla@elysee.fr"),
                                          Value::String("email")})
                           .status());
  return Status::OK();
}

Status RssScenario::PumpNews(Timestamp t) {
  PlanPtr plan = Invoke(Scan(kFeeds), "fetchItems");
  EvalContext ctx;
  ctx.env = &env_;
  ctx.streams = &streams_;
  ctx.instant = t;
  ctx.error_policy = InvocationErrorPolicy::kSkipTuple;
  SERENA_ASSIGN_OR_RETURN(XRelation items, plan->Evaluate(ctx));
  SERENA_ASSIGN_OR_RETURN(XDRelation * stream, streams_.GetStream(kNews));
  // Result schema: (feed, item, title) all real, in schema order.
  for (const Tuple& item : items.tuples()) {
    SERENA_RETURN_NOT_OK(stream->Append(t, item));
  }
  return Status::OK();
}

PlanPtr RssScenario::KeywordQuery(const std::string& keyword,
                                  Timestamp window) const {
  return Select(Window(kNews, window),
                Formula::Compare(Operand::Attr("title"), CompareOp::kContains,
                                 Operand::Const(Value::String(keyword))));
}

PlanPtr RssScenario::ForwardQuery(const std::string& keyword,
                                  Timestamp window,
                                  const std::string& name) const {
  PlanPtr matching = KeywordQuery(keyword, window);
  PlanPtr recipient =
      Select(Scan(kContacts),
             Formula::Compare(Operand::Attr("name"), CompareOp::kEq,
                              Operand::Const(Value::String(name))));
  // No shared attributes: the join is a Cartesian pairing of news with the
  // recipient; each fresh pairing triggers one send in continuous mode.
  PlanPtr paired = Join(matching, recipient);
  return Invoke(Assign(paired, "text", "title"), "sendMessage");
}

}  // namespace serena
