#ifndef SERENA_ENV_SIM_SERVICES_H_
#define SERENA_ENV_SIM_SERVICES_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "env/prototypes.h"
#include "service/service.h"

namespace serena {

/// The paper's experimental environment (§5.2) rebuilt as deterministic
/// in-process simulations. Each class implements the `Service` contract:
/// results are a pure function of (input, instant) plus explicitly set
/// state, so invocations are deterministic within an instant (§3.2) and
/// whole-system runs are reproducible.

/// Simulates a Thermochron-iButton-style temperature sensor implementing
/// getTemperature() : (temperature REAL).
///
/// The reading follows a slow diurnal sine plus bounded per-instant noise,
/// shifted by a controllable bias — tests "heat" a sensor by raising the
/// bias, exactly like the physical sensors were heated in the paper's
/// experiment.
class TemperatureSensorService final : public Service {
 public:
  TemperatureSensorService(std::string id, double base_celsius,
                           std::uint64_t seed);

  std::vector<PrototypePtr> prototypes() const override;
  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override;

  /// The deterministic reading this sensor reports at `now`.
  double TemperatureAt(Timestamp now) const;

  /// Additional offset applied from the next reading on (simulated
  /// heating). May be negative.
  void set_bias(double bias) { bias_ = bias; }
  double bias() const { return bias_; }

  std::uint64_t readings_served() const {
    return readings_served_.load(std::memory_order_relaxed);
  }

 private:
  PrototypePtr prototype_;
  double base_celsius_;
  std::uint64_t seed_;
  double bias_ = 0.0;
  // Atomic: batched invocation calls services concurrently.
  std::atomic<std::uint64_t> readings_served_{0};
};

/// Simulates a network camera implementing
/// checkPhoto(area) : (quality INTEGER, delay REAL) and
/// takePhoto(area, quality) : (photo BLOB).
///
/// Quality/delay are a deterministic function of (camera, area, instant);
/// photos are synthetic blobs whose size grows with the requested quality.
/// A camera only answers for areas it covers; other areas yield an empty
/// result relation (0 tuples — prototype invocations may return any
/// number of tuples, Def. 1).
class CameraService final : public Service {
 public:
  CameraService(std::string id, std::vector<std::string> areas,
                std::uint64_t seed, bool take_photo_active = false);

  std::vector<PrototypePtr> prototypes() const override;
  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override;

  const std::vector<std::string>& areas() const { return areas_; }
  bool Covers(std::string_view area) const;

  /// Quality this camera would report for `area` at `now` (1..10).
  int QualityAt(std::string_view area, Timestamp now) const;

  std::uint64_t photos_taken() const {
    return photos_taken_.load(std::memory_order_relaxed);
  }

 private:
  PrototypePtr check_photo_;
  PrototypePtr take_photo_;
  std::vector<std::string> areas_;
  std::uint64_t seed_;
  // Atomic: batched invocation calls services concurrently.
  std::atomic<std::uint64_t> photos_taken_{0};
};

/// One message delivered by a MessengerService — the observable trace of
/// an *active* invocation, i.e. the physical counterpart of an Action.
struct SentMessage {
  std::string address;
  std::string text;
  Timestamp instant = 0;
  /// Size of the attached photo; 0 for plain messages.
  std::size_t photo_bytes = 0;

  bool operator==(const SentMessage& other) const {
    return address == other.address && text == other.text &&
           instant == other.instant && photo_bytes == other.photo_bytes;
  }
};

/// Simulates a messaging gateway (mail server / Openfire IM / Clickatell
/// SMS) implementing sendMessage(address, text) : (sent BOOLEAN) and
/// sendPhotoMessage(address, text, photo) : (delivered BOOLEAN).
///
/// Every accepted message is appended to an outbox; the outbox is what
/// scenario tests compare against expected action sets — once "received",
/// a message cannot be canceled (the paper's motivation for the
/// active/passive distinction).
class MessengerService final : public Service {
 public:
  enum class Kind { kEmail, kJabber, kSms };

  MessengerService(std::string id, Kind kind);

  std::vector<PrototypePtr> prototypes() const override;
  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override;

  Kind kind() const { return kind_; }
  /// Snapshot of the outbox. By value: concurrent batch invocations may
  /// append while the caller iterates. Arrival *order* of distinct
  /// messages within one instant is unspecified under a parallel batch
  /// (the action set is a set, Def. 8); tests compare contents.
  std::vector<SentMessage> outbox() const {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    return outbox_;
  }
  void ClearOutbox() {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.clear();
  }

  /// Addresses this gateway refuses (delivery returns sent = false).
  void AddUndeliverableAddress(std::string address);

 private:
  PrototypePtr prototype_;
  PrototypePtr photo_prototype_;
  Kind kind_;
  mutable std::mutex outbox_mu_;
  std::vector<SentMessage> outbox_;
  std::vector<std::string> undeliverable_;
  // Within one instant, repeated sends with identical input must report
  // the same `sent` value; the registry's memoization guarantees the
  // caller never observes otherwise.
};

/// Simulates an RSS feed wrapper service (§5.2) implementing
/// fetchItems(feed) : (item INTEGER, title STRING).
///
/// Items appear at a deterministic per-instant rate; titles are drawn from
/// a word pool that includes periodic occurrences of hot keywords (e.g.
/// "Obama"), so keyword-window queries always have work to do.
class RssFeedService final : public Service {
 public:
  RssFeedService(std::string id, std::vector<std::string> word_pool,
                 std::vector<std::string> keywords, double keyword_rate,
                 int items_per_instant, std::uint64_t seed);

  std::vector<PrototypePtr> prototypes() const override;
  Result<std::vector<Tuple>> Invoke(const Prototype& prototype,
                                    const Tuple& input,
                                    Timestamp now) override;

  /// The items this feed publishes at exactly instant `now`
  /// (item id, title).
  std::vector<std::pair<std::int64_t, std::string>> ItemsAt(
      Timestamp now) const;

 private:
  PrototypePtr prototype_;
  std::vector<std::string> word_pool_;
  std::vector<std::string> keywords_;
  double keyword_rate_;
  int items_per_instant_;
  std::uint64_t seed_;
};

}  // namespace serena

#endif  // SERENA_ENV_SIM_SERVICES_H_
