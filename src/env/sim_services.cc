#include "env/sim_services.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/random.h"

namespace serena {

namespace {

/// Deterministic uniform double in [0, 1) from a mixed key.
double Hash01(std::uint64_t key) {
  return static_cast<double>(Mix64(key) >> 11) * 0x1.0p-53;
}

std::uint64_t KeyOf(std::uint64_t seed, std::string_view salt,
                    Timestamp now) {
  return Mix64(seed ^ StableHash(salt) ^
               (static_cast<std::uint64_t>(now) * 0x9e3779b97f4a7c15ULL));
}

}  // namespace

// ---------------------------------------------------------------------------
// TemperatureSensorService
// ---------------------------------------------------------------------------

TemperatureSensorService::TemperatureSensorService(std::string id,
                                                   double base_celsius,
                                                   std::uint64_t seed)
    : Service(std::move(id)),
      prototype_(MakeGetTemperaturePrototype()),
      base_celsius_(base_celsius),
      seed_(seed) {}

std::vector<PrototypePtr> TemperatureSensorService::prototypes() const {
  return {prototype_};
}

double TemperatureSensorService::TemperatureAt(Timestamp now) const {
  // Slow "diurnal" drift (period 48 instants) plus bounded noise.
  const double drift =
      2.0 * std::sin(static_cast<double>(now) * (2.0 * M_PI / 48.0));
  const double noise = Hash01(KeyOf(seed_, id(), now)) - 0.5;
  return base_celsius_ + drift + noise + bias_;
}

Result<std::vector<Tuple>> TemperatureSensorService::Invoke(
    const Prototype& prototype, const Tuple& /*input*/, Timestamp now) {
  if (prototype.name() != prototype_->name()) {
    return Status::FailedPrecondition("sensor '", id(),
                                      "' cannot serve prototype '",
                                      prototype.name(), "'");
  }
  ++readings_served_;
  return std::vector<Tuple>{Tuple{Value::Real(TemperatureAt(now))}};
}

// ---------------------------------------------------------------------------
// CameraService
// ---------------------------------------------------------------------------

CameraService::CameraService(std::string id, std::vector<std::string> areas,
                             std::uint64_t seed, bool take_photo_active)
    : Service(std::move(id)),
      check_photo_(MakeCheckPhotoPrototype()),
      take_photo_(MakeTakePhotoPrototype(take_photo_active)),
      areas_(std::move(areas)),
      seed_(seed) {}

std::vector<PrototypePtr> CameraService::prototypes() const {
  return {check_photo_, take_photo_};
}

bool CameraService::Covers(std::string_view area) const {
  return std::find(areas_.begin(), areas_.end(), area) != areas_.end();
}

int CameraService::QualityAt(std::string_view area, Timestamp now) const {
  const std::uint64_t key =
      KeyOf(seed_, std::string(area) + "@" + id(), now);
  return 1 + static_cast<int>(Mix64(key) % 10);  // 1..10.
}

Result<std::vector<Tuple>> CameraService::Invoke(const Prototype& prototype,
                                                 const Tuple& input,
                                                 Timestamp now) {
  if (prototype.name() == check_photo_->name()) {
    const std::string& area = input[0].string_value();
    if (!Covers(area)) return std::vector<Tuple>{};  // No coverage: 0 tuples.
    const int quality = QualityAt(area, now);
    const double delay =
        0.05 + 1.95 * Hash01(KeyOf(seed_, "delay:" + area, now));
    return std::vector<Tuple>{
        Tuple{Value::Int(quality), Value::Real(delay)}};
  }
  if (prototype.name() == take_photo_->name()) {
    const std::string& area = input[0].string_value();
    if (!Covers(area)) return std::vector<Tuple>{};
    const std::int64_t quality = input[1].int_value();
    // Synthetic JPEG-ish payload: size scales with quality, content is a
    // deterministic byte pattern so photos compare equal within an instant.
    const std::size_t size =
        256 + static_cast<std::size_t>(std::max<std::int64_t>(quality, 0)) *
                  128;
    Blob photo(size);
    std::uint64_t state = KeyOf(seed_, "photo:" + area, now) ^
                          static_cast<std::uint64_t>(quality);
    for (std::size_t i = 0; i < size; ++i) {
      state = Mix64(state);
      photo[i] = static_cast<std::uint8_t>(state & 0xff);
    }
    ++photos_taken_;
    return std::vector<Tuple>{Tuple{Value::BlobValue(std::move(photo))}};
  }
  return Status::FailedPrecondition("camera '", id(),
                                    "' cannot serve prototype '",
                                    prototype.name(), "'");
}

// ---------------------------------------------------------------------------
// MessengerService
// ---------------------------------------------------------------------------

MessengerService::MessengerService(std::string id, Kind kind)
    : Service(std::move(id)),
      prototype_(MakeSendMessagePrototype()),
      photo_prototype_(MakeSendPhotoMessagePrototype()),
      kind_(kind) {}

std::vector<PrototypePtr> MessengerService::prototypes() const {
  return {prototype_, photo_prototype_};
}

Result<std::vector<Tuple>> MessengerService::Invoke(
    const Prototype& prototype, const Tuple& input, Timestamp now) {
  const bool with_photo = prototype.name() == photo_prototype_->name();
  if (!with_photo && prototype.name() != prototype_->name()) {
    return Status::FailedPrecondition("messenger '", id(),
                                      "' cannot serve prototype '",
                                      prototype.name(), "'");
  }
  const std::string& address = input[0].string_value();
  const std::string& text = input[1].string_value();
  const bool deliverable =
      std::find(undeliverable_.begin(), undeliverable_.end(), address) ==
      undeliverable_.end();
  if (deliverable) {
    SentMessage message{address, text, now, 0};
    if (with_photo) message.photo_bytes = input[2].blob_value().size();
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.push_back(std::move(message));
  }
  return std::vector<Tuple>{Tuple{Value::Bool(deliverable)}};
}

void MessengerService::AddUndeliverableAddress(std::string address) {
  undeliverable_.push_back(std::move(address));
}

// ---------------------------------------------------------------------------
// RssFeedService
// ---------------------------------------------------------------------------

RssFeedService::RssFeedService(std::string id,
                               std::vector<std::string> word_pool,
                               std::vector<std::string> keywords,
                               double keyword_rate, int items_per_instant,
                               std::uint64_t seed)
    : Service(std::move(id)),
      prototype_(MakeFetchItemsPrototype()),
      word_pool_(std::move(word_pool)),
      keywords_(std::move(keywords)),
      keyword_rate_(keyword_rate),
      items_per_instant_(items_per_instant),
      seed_(seed) {}

std::vector<PrototypePtr> RssFeedService::prototypes() const {
  return {prototype_};
}

std::vector<std::pair<std::int64_t, std::string>> RssFeedService::ItemsAt(
    Timestamp now) const {
  std::vector<std::pair<std::int64_t, std::string>> items;
  items.reserve(static_cast<std::size_t>(items_per_instant_));
  for (int i = 0; i < items_per_instant_; ++i) {
    const std::uint64_t key =
        KeyOf(seed_, id() + "#" + std::to_string(i), now);
    Rng rng(key);
    std::string title;
    const int words = 4 + static_cast<int>(rng.NextBounded(4));
    for (int w = 0; w < words; ++w) {
      if (w > 0) title += ' ';
      if (!keywords_.empty() && rng.NextBool(keyword_rate_)) {
        title += keywords_[rng.NextBounded(keywords_.size())];
      } else if (!word_pool_.empty()) {
        title += word_pool_[rng.NextBounded(word_pool_.size())];
      } else {
        title += "item";
      }
    }
    const std::int64_t item_id =
        static_cast<std::int64_t>(now) * items_per_instant_ + i;
    items.emplace_back(item_id, std::move(title));
  }
  return items;
}

Result<std::vector<Tuple>> RssFeedService::Invoke(const Prototype& prototype,
                                                  const Tuple& input,
                                                  Timestamp now) {
  if (prototype.name() != prototype_->name()) {
    return Status::FailedPrecondition("feed '", id(),
                                      "' cannot serve prototype '",
                                      prototype.name(), "'");
  }
  if (input[0].string_value() != id()) {
    // The wrapper serves exactly one feed: its own.
    return std::vector<Tuple>{};
  }
  std::vector<Tuple> result;
  for (auto& [item_id, title] : ItemsAt(now)) {
    result.push_back(Tuple{Value::Int(item_id), Value::String(title)});
  }
  return result;
}

}  // namespace serena
