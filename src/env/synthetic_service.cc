#include "env/synthetic_service.h"

#include "common/hash.h"
#include "common/random.h"

namespace serena {

SyntheticService::SyntheticService(std::string id,
                                   std::vector<PrototypePtr> prototypes,
                                   std::uint64_t seed)
    : Service(std::move(id)), prototypes_(std::move(prototypes)), seed_(seed) {}

Result<std::vector<Tuple>> SyntheticService::Invoke(
    const Prototype& prototype, const Tuple& input, Timestamp now) {
  if (!Implements(prototype.name())) {
    return Status::FailedPrecondition("synthetic service '", id(),
                                      "' does not implement '",
                                      prototype.name(), "'");
  }
  ++invocations_;
  // One deterministic output tuple per invocation.
  std::uint64_t state = Mix64(seed_ ^ StableHash(id())) ^
                        StableHash(prototype.name()) ^
                        Mix64(static_cast<std::uint64_t>(now));
  for (const Value& v : input.values()) state = Mix64(state ^ v.Hash());

  std::vector<Value> values;
  values.reserve(prototype.output().size());
  for (const Attribute& attr : prototype.output().attributes()) {
    state = Mix64(state ^ StableHash(attr.name));
    switch (attr.type) {
      case DataType::kBool:
        values.push_back(Value::Bool((state & 1) == 1));
        break;
      case DataType::kInt:
        values.push_back(Value::Int(static_cast<std::int64_t>(state % 100)));
        break;
      case DataType::kReal:
        values.push_back(
            Value::Real(static_cast<double>(state % 10000) / 100.0));
        break;
      case DataType::kString:
      case DataType::kService:
        values.push_back(
            Value::String("v" + std::to_string(state % 1000)));
        break;
      case DataType::kBlob: {
        Blob blob(64);
        std::uint64_t b = state;
        for (std::size_t i = 0; i < blob.size(); ++i) {
          b = Mix64(b);
          blob[i] = static_cast<std::uint8_t>(b & 0xff);
        }
        values.push_back(Value::BlobValue(std::move(blob)));
        break;
      }
    }
  }
  return std::vector<Tuple>{Tuple(std::move(values))};
}

}  // namespace serena
