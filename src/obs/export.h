#ifndef SERENA_OBS_EXPORT_H_
#define SERENA_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace serena {
namespace obs {

/// Sanitizes a dotted instrument name into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`, a
/// leading digit gets a `_` prefix, an empty name becomes `_`.
std::string PrometheusMetricName(std::string_view name);

/// Escapes a label value for Prometheus text exposition: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
std::string PrometheusEscapeLabel(std::string_view value);

/// Renders the registry in Prometheus text exposition format — `# TYPE`
/// headers, counters/gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`. No HTTP server here:
/// dump it to a file (SERENA_METRICS_FILE) or the shell (`\metrics prom`)
/// and point a file-based scraper at it.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// Renders the buffer's spans as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` form), openable in chrome://tracing or
/// Perfetto. One track per pool thread (from SpanRecord::thread_index),
/// plus a synthetic track 0 showing logical instants, plus flow arrows for
/// cross-span causal links (memo waiters → the winning invocation).
/// Timestamps are rebased to the earliest span.
std::string ExportChromeTrace(const TraceBuffer& buffer);

/// When the SERENA_METRICS_FILE environment variable names a path, writes
/// `ExportPrometheus(MetricsRegistry::Global())` to it, at most once per
/// `min_interval_ns` of wall time (default 1s). The executor calls this
/// every tick, making the file a poll-friendly exposition endpoint.
/// Returns true when a write happened.
bool MaybeWriteMetricsFile(std::uint64_t min_interval_ns = 1000000000ull);

/// Unconditional SERENA_METRICS_FILE write, ignoring the rate limit: the
/// clean-shutdown flush. The periodic writer above can leave up to one
/// interval of final counter increments unwritten when the process exits;
/// the QueryProcessor destructor calls this so the exposition file's last
/// state matches the registry's. Returns true when a write happened.
bool FlushMetricsFile();

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_EXPORT_H_
