#include "obs/stats.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "algebra/plan.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace serena {
namespace obs {

namespace {

constexpr std::size_t kMaxLabelLength = 160;

std::string TruncatedLabel(const std::string& rendered) {
  if (rendered.size() <= kMaxLabelLength) return rendered;
  return rendered.substr(0, kMaxLabelLength) + "...";
}

/// The β prototype an invoke operator calls, empty for everything else —
/// lets `sys_operator_stats` join against the per-prototype service
/// instruments.
std::string NodePrototype(const PlanNode& node) {
  if (node.kind() != PlanKind::kInvoke) return {};
  return static_cast<const InvokeNode&>(node).prototype();
}

void WriteOperator(JsonWriter& json, const OperatorStats& op) {
  json.BeginObject();
  json.Key("fingerprint").Value(op.fingerprint);
  json.Key("kind").Value(op.kind);
  json.Key("label").Value(op.label);
  if (!op.prototype.empty()) json.Key("prototype").Value(op.prototype);
  json.Key("evals").Value(op.evals);
  json.Key("rows_in").Value(op.rows_in);
  json.Key("rows_out").Value(op.rows_out);
  json.Key("wall_ns").Value(op.wall_ns);
  json.Key("invocations").Value(op.invocations);
  json.Key("memo_hits").Value(op.memo_hits);
  json.Key("errors").Value(op.errors);
  json.Key("batches").Value(op.batches);
  // Derived ratios, recomputed on load; written for human readers and
  // external tooling only.
  json.Key("selectivity").Value(op.selectivity());
  json.Key("memo_hit_rate").Value(op.memo_hit_rate());
  json.EndObject();
}

OperatorStats ReadOperator(const JsonValue& value) {
  OperatorStats op;
  op.fingerprint = value.StringOr("fingerprint", "");
  op.kind = value.StringOr("kind", "");
  op.label = value.StringOr("label", "");
  op.prototype = value.StringOr("prototype", "");
  op.evals = static_cast<std::uint64_t>(value.NumberOr("evals", 0));
  op.rows_in = static_cast<std::uint64_t>(value.NumberOr("rows_in", 0));
  op.rows_out = static_cast<std::uint64_t>(value.NumberOr("rows_out", 0));
  op.wall_ns = static_cast<std::uint64_t>(value.NumberOr("wall_ns", 0));
  op.invocations =
      static_cast<std::uint64_t>(value.NumberOr("invocations", 0));
  op.memo_hits = static_cast<std::uint64_t>(value.NumberOr("memo_hits", 0));
  op.errors = static_cast<std::uint64_t>(value.NumberOr("errors", 0));
  op.batches = static_cast<std::uint64_t>(value.NumberOr("batches", 0));
  return op;
}

}  // namespace

std::string OperatorFingerprint(const PlanNode& node) {
  // Kind is prefixed separately: two operators could in principle render
  // identically while differing in kind, and the prefix keeps the
  // fingerprint honest if a ToString ever becomes ambiguous.
  std::string key = PlanKindToString(node.kind());
  key.push_back('|');
  key += node.ToString();
  return StringFormat("%016llx",
                      static_cast<unsigned long long>(StableHash(key)));
}

StatsStore::StatsStore() {
  const char* path = std::getenv("SERENA_STATS_FILE");
  if (path != nullptr && path[0] != '\0') {
    // Best-effort: a missing or corrupt file simply means no baseline
    // (first run, or the previous run crashed mid-write).
    (void)LoadBaselineFromFile(path);
  }
}

StatsStore& StatsStore::Global() {
  static StatsStore* store = new StatsStore();
  return *store;
}

void StatsStore::RecordPlan(const PlanNode& root,
                            const PlanStatsCollector& collector) {
  // Collect the merge outside the lock; fingerprinting renders each
  // subtree and is the expensive part.
  struct Update {
    const PlanNode* node;
    const NodeRuntimeStats* stats;
    std::uint64_t rows_in;
  };
  std::vector<Update> updates;
  std::unordered_set<const PlanNode*> seen;
  // Iterative DFS; plans are shallow but shared subtrees must merge once.
  std::vector<const PlanNode*> pending = {&root};
  while (!pending.empty()) {
    const PlanNode* node = pending.back();
    pending.pop_back();
    if (!seen.insert(node).second) continue;
    const std::vector<PlanPtr> children = node->children();
    std::uint64_t rows_in = 0;
    for (const PlanPtr& child : children) {
      if (const NodeRuntimeStats* stats = collector.Find(child.get())) {
        rows_in += stats->rows_out;
      }
      pending.push_back(child.get());
    }
    if (const NodeRuntimeStats* stats = collector.Find(node)) {
      if (stats->evals > 0) updates.push_back({node, stats, rows_in});
    }
  }
  if (updates.empty()) return;

  std::lock_guard<std::mutex> lock(mu_);
  for (const Update& update : updates) {
    const std::string fingerprint = OperatorFingerprint(*update.node);
    OperatorStats& op = operators_[fingerprint];
    if (op.fingerprint.empty()) {
      op.fingerprint = fingerprint;
      op.kind = PlanKindToString(update.node->kind());
      op.label = TruncatedLabel(update.node->ToString());
      op.prototype = NodePrototype(*update.node);
    }
    op.evals += update.stats->evals;
    op.rows_in += update.rows_in;
    op.rows_out += update.stats->rows_out;
    op.wall_ns += update.stats->wall_ns;
    op.invocations += update.stats->invocations;
    op.memo_hits += update.stats->memo_hits;
    op.errors += update.stats->errors;
    op.batches += update.stats->batches;
  }
}

std::vector<OperatorStats> StatsStore::Snapshot() const {
  std::vector<OperatorStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(operators_.size());
    for (const auto& [fingerprint, op] : operators_) out.push_back(op);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const OperatorStats& a, const OperatorStats& b) {
                     return a.wall_ns > b.wall_ns;
                   });
  return out;
}

std::optional<OperatorStats> StatsStore::Find(
    const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = operators_.find(fingerprint);
  if (it == operators_.end()) return std::nullopt;
  return it->second;
}

std::size_t StatsStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return operators_.size();
}

bool StatsStore::has_baseline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_baseline_;
}

std::optional<OperatorStats> StatsStore::FindBaseline(
    const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = baseline_.find(fingerprint);
  if (it == baseline_.end()) return std::nullopt;
  return it->second;
}

std::vector<BetaLatencyProfile> StatsStore::BetaProfiles() const {
  static constexpr std::string_view kPrefix = "serena.service.";
  static constexpr std::string_view kSuffix = ".invoke_ns";
  std::vector<BetaLatencyProfile> out;
  const MetricsRegistry& metrics = MetricsRegistry::Global();
  for (const std::string& name : metrics.HistogramNames()) {
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    BetaLatencyProfile profile;
    profile.prototype = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    const Histogram* histogram = metrics.FindHistogram(name);
    if (histogram != nullptr) {
      const HistogramSnapshot snapshot = histogram->Snapshot();
      profile.count = snapshot.count;
      profile.mean_ns = snapshot.mean();
      profile.p50_ns = snapshot.ValueAtPercentile(50);
      profile.p99_ns = snapshot.ValueAtPercentile(99);
      profile.max_ns = snapshot.max;
    }
    const std::string proto_prefix =
        std::string(kPrefix) + profile.prototype + ".";
    if (const Counter* hits = metrics.FindCounter(proto_prefix + "memo_hits");
        hits != nullptr) {
      profile.memo_hits = hits->value();
    }
    if (const Counter* misses =
            metrics.FindCounter(proto_prefix + "memo_misses");
        misses != nullptr) {
      profile.memo_misses = misses->value();
    }
    if (const Counter* errors = metrics.FindCounter(proto_prefix + "errors");
        errors != nullptr) {
      profile.errors = errors->value();
    }
    out.push_back(std::move(profile));
  }
  std::sort(out.begin(), out.end(),
            [](const BetaLatencyProfile& a, const BetaLatencyProfile& b) {
              return a.prototype < b.prototype;
            });
  return out;
}

void StatsStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  operators_.clear();
}

std::string StatsStore::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Value(std::int64_t{1});
  json.Key("operators").BeginArray();
  // std::map iteration order — stable across runs for a given workload.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fingerprint, op] : operators_) WriteOperator(json, op);
  }
  json.EndArray();
  json.Key("services").BeginArray();
  for (const BetaLatencyProfile& profile : BetaProfiles()) {
    json.BeginObject();
    json.Key("prototype").Value(profile.prototype);
    json.Key("count").Value(profile.count);
    json.Key("mean_ns").Value(profile.mean_ns);
    json.Key("p50_ns").Value(profile.p50_ns);
    json.Key("p99_ns").Value(profile.p99_ns);
    json.Key("max_ns").Value(profile.max_ns);
    json.Key("memo_hits").Value(profile.memo_hits);
    json.Key("memo_misses").Value(profile.memo_misses);
    json.Key("errors").Value(profile.errors);
    json.Key("memo_hit_rate").Value(profile.memo_hit_rate());
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

Status StatsStore::SaveToFile(const std::string& path) const {
  const std::string document = ToJson();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open stats file: ", path);
  out << document << '\n';
  out.flush();
  if (!out) return Status::Internal("cannot write stats file: ", path);
  return Status::OK();
}

Status StatsStore::LoadBaselineFromJson(std::string_view json) {
  SERENA_ASSIGN_OR_RETURN(JsonValue document, ParseJson(json));
  if (!document.is_object()) {
    return Status::InvalidArgument("stats document is not a JSON object");
  }
  const JsonValue* operators = document.Find("operators");
  if (operators == nullptr || !operators->is_array()) {
    return Status::InvalidArgument("stats document has no operators array");
  }
  std::map<std::string, OperatorStats> baseline;
  for (const JsonValue& entry : operators->array()) {
    if (!entry.is_object()) continue;
    OperatorStats op = ReadOperator(entry);
    if (op.fingerprint.empty()) continue;
    baseline[op.fingerprint] = std::move(op);
  }
  std::lock_guard<std::mutex> lock(mu_);
  baseline_ = std::move(baseline);
  has_baseline_ = true;
  return Status::OK();
}

Status StatsStore::LoadBaselineFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open stats file: ", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadBaselineFromJson(buffer.str());
}

bool StatsStore::MaybeSaveEnvFile() const {
  const char* path = std::getenv("SERENA_STATS_FILE");
  if (path == nullptr || path[0] == '\0') return false;
  if (size() == 0) return false;
  return SaveToFile(path).ok();
}

}  // namespace obs
}  // namespace serena
