#ifndef SERENA_OBS_STATS_H_
#define SERENA_OBS_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace serena {

class PlanNode;
class PlanStatsCollector;

namespace obs {

/// Aggregated runtime statistics of one plan operator, keyed by its
/// stable fingerprint (see `OperatorFingerprint`). Unlike the per-query
/// `PlanStatsCollector` (keyed by node *identity*, scoped to one plan
/// instance), these records accumulate across ticks, queries and plan
/// instances: every occurrence of a structurally identical operator —
/// `select[temperature > 30](window[5](temperatures))`, wherever it
/// appears — feeds the same record. This is the observed-cardinality
/// feedstock of the cost-based optimizer (ROADMAP).
struct OperatorStats {
  std::string fingerprint;  ///< 16 hex chars, stable across runs.
  std::string kind;         ///< PlanKindToString, e.g. "select".
  std::string label;        ///< Rendered operator (truncated).
  std::string prototype;    ///< β prototype for invoke nodes, else empty.

  std::uint64_t evals = 0;
  /// Tuples that entered the operator (sum of its children's outputs;
  /// 0 for leaves, which have no relational input).
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t wall_ns = 0;  ///< Inclusive of children, like EXPLAIN ANALYZE.
  /// Logical service invocations issued while evaluating this subtree.
  std::uint64_t invocations = 0;
  /// Invocations served from the per-instant memo (§3.2 determinism).
  std::uint64_t memo_hits = 0;
  std::uint64_t errors = 0;
  /// Tuple batches emitted while running inside a fused vectorized
  /// pipeline (docs/VECTORIZATION.md); 0 for scalar evaluations.
  std::uint64_t batches = 0;

  /// Observed selectivity: output/input cardinality. 1.0 when the
  /// operator saw no input (leaves, never-evaluated nodes) — the neutral
  /// prior a cost model would start from.
  double selectivity() const {
    return rows_in == 0 ? 1.0
                        : static_cast<double>(rows_out) /
                              static_cast<double>(rows_in);
  }
  double mean_rows_out() const {
    return evals == 0 ? 0.0
                      : static_cast<double>(rows_out) /
                            static_cast<double>(evals);
  }
  double mean_wall_ns() const {
    return evals == 0 ? 0.0
                      : static_cast<double>(wall_ns) /
                            static_cast<double>(evals);
  }
  /// Fraction of this operator's invocations answered from the memo.
  double memo_hit_rate() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(memo_hits) /
                                  static_cast<double>(invocations);
  }
};

/// The observed latency profile of one β prototype, read back from the
/// per-prototype instruments the ServiceRegistry maintains
/// (`serena.service.<proto>.invoke_ns` / `.memo_hits` / `.memo_misses` /
/// `.errors` — see docs/OBSERVABILITY.md).
struct BetaLatencyProfile {
  std::string prototype;
  std::uint64_t count = 0;  ///< Physical invocations timed.
  double mean_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t errors = 0;

  double memo_hit_rate() const {
    const std::uint64_t total = memo_hits + memo_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(memo_hits) /
                            static_cast<double>(total);
  }
};

/// The stable fingerprint of a plan operator: a hash of the operator
/// kind plus its full rendered subtree (`PlanNode::ToString`, which the
/// algebra parser round-trips). Identical algebra ⇒ identical
/// fingerprint, across plan instances, processes and runs — the property
/// that lets a persisted statistics file describe the *next* run's plans.
std::string OperatorFingerprint(const PlanNode& node);

/// The process-wide runtime statistics store ("gen 3" observability):
/// per-operator cardinality/selectivity/latency aggregates keyed by
/// fingerprint, fed by every instrumented evaluation path (one-shot
/// `Execute`, `ContinuousQuery::Step`, `ExplainAnalyzePlan`).
///
/// Persistence: `SaveToFile` writes the store as one JSON document;
/// when the `SERENA_STATS_FILE` environment variable names a path, the
/// store loads it as the *baseline* (the previous run's observations) on
/// first use and `MaybeSaveEnvFile` (called on clean PEMS shutdown)
/// rewrites it — so consecutive runs see each other's statistics, and
/// EXPLAIN ANALYZE can annotate observed-vs-last-run deltas.
///
/// Thread-safe; recording takes one mutex per *plan* (not per node).
class StatsStore {
 public:
  StatsStore();

  StatsStore(const StatsStore&) = delete;
  StatsStore& operator=(const StatsStore&) = delete;

  /// The process-wide store used by all built-in instrumentation.
  static StatsStore& Global();

  /// Aggregates one evaluation's per-node actuals into the store. The
  /// collector must hold *deltas* for exactly the evaluations being
  /// recorded (the callers pass per-evaluation scratch collectors);
  /// `rows_in` is derived as the sum of each node's children's outputs.
  void RecordPlan(const PlanNode& root, const PlanStatsCollector& collector);

  /// All live records, most expensive (total wall time) first.
  std::vector<OperatorStats> Snapshot() const;
  std::optional<OperatorStats> Find(const std::string& fingerprint) const;
  std::size_t size() const;

  /// Baseline records (the previous run, when one was loaded).
  bool has_baseline() const;
  std::optional<OperatorStats> FindBaseline(
      const std::string& fingerprint) const;

  /// Per-prototype β latency profiles, read live from the global metrics
  /// registry. Sorted by prototype name.
  std::vector<BetaLatencyProfile> BetaProfiles() const;

  /// Drops live records (baseline and cached env-file path stay).
  void Clear();

  /// The store as one JSON document:
  /// `{"schema_version":1, "operators":[{...}], "services":[{...}]}`.
  std::string ToJson() const;

  Status SaveToFile(const std::string& path) const;
  /// Parses `json` (a `ToJson` document) into the baseline map,
  /// replacing any previous baseline.
  Status LoadBaselineFromJson(std::string_view json);
  Status LoadBaselineFromFile(const std::string& path);

  /// Writes the store to `SERENA_STATS_FILE` if the variable is set and
  /// any record exists. Returns true when a write happened. Called on
  /// clean shutdown (QueryProcessor destructor) and by the shell's
  /// `\stats save`.
  bool MaybeSaveEnvFile() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, OperatorStats> operators_;
  std::map<std::string, OperatorStats> baseline_;
  bool has_baseline_ = false;
};

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_STATS_H_
