#ifndef SERENA_OBS_META_H_
#define SERENA_OBS_META_H_

#include "common/result.h"

namespace serena {

class ContinuousExecutor;
class Environment;
class QueryHealth;

namespace obs {

/// Names of the built-in meta-relations ("the PEMS observing itself"):
/// virtual X-Relations whose contents are refreshed from telemetry
/// snapshots at the start of every executor tick, so ordinary standing
/// Serena queries can monitor the runtime — e.g.
/// `select[streak >= 3](sys_query_health)`.
inline constexpr char kSysMetricsRelation[] = "sys_metrics";
inline constexpr char kSysSpansRelation[] = "sys_spans";
inline constexpr char kSysQueryHealthRelation[] = "sys_query_health";
inline constexpr char kSysOperatorStatsRelation[] = "sys_operator_stats";

/// Creates the four meta-relations in `env` (skipping ones that already
/// exist) and registers an executor source that refreshes them each tick
/// before any query steps. Schemas:
///
///   sys_metrics(metric STRING, kind STRING, value REAL)
///     — one row per counter/gauge; histograms expand to `.count`,
///       `.mean`, `.p50`, `.p99`, `.max` rows.
///   sys_spans(name STRING, detail STRING, instant INTEGER,
///             trace_id INTEGER, span_id INTEGER, parent_id INTEGER,
///             link_span_id INTEGER, thread_index INTEGER,
///             start_ns INTEGER, duration_ns INTEGER)
///     — the trace ring, oldest to newest (empty while tracing is off).
///   sys_query_health(name STRING, last_instant INTEGER, lag INTEGER,
///                    streak INTEGER, errors INTEGER, steps INTEGER,
///                    p50_step_ns INTEGER, p99_step_ns INTEGER,
///                    rows_in_rate REAL, rows_out_rate REAL)
///     — one row per registered continuous query.
///   sys_operator_stats(fingerprint STRING, op_kind STRING, label STRING,
///                      prototype STRING, evals INTEGER, rows_in INTEGER,
///                      rows_out INTEGER, wall_ns INTEGER,
///                      invocations INTEGER, memo_hits INTEGER,
///                      errors INTEGER, selectivity REAL,
///                      memo_hit_rate REAL)
///     — one row per distinct plan operator observed by the runtime
///       statistics store (see obs/stats.h), keyed by stable fingerprint.
///
/// Opt-in: call it once after constructing the PEMS (the shell does).
/// Fails when a same-named attribute elsewhere in `env` has a conflicting
/// type (URSA).
Status RegisterMetaRelations(Environment* env, ContinuousExecutor* executor);

/// Rebuilds the meta-relations' contents from the current telemetry
/// snapshots (global metrics registry + trace buffer + `health`, which
/// may be null). Relations missing from `env` are skipped. Called by the
/// registered source every tick; call directly for an on-demand refresh.
Status RefreshMetaRelations(Environment* env, const QueryHealth* health);

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_META_H_
