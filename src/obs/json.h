#ifndef SERENA_OBS_JSON_H_
#define SERENA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace serena {
namespace obs {

/// Appends `value` to `out` as a JSON string literal (quotes included),
/// escaping control characters, quotes and backslashes.
void AppendJsonString(std::string* out, std::string_view value);

/// A minimal streaming JSON writer — just enough for the telemetry
/// exports (`MetricsRegistry::ToJson`, `TraceBuffer::ToJson`,
/// `PemsMetrics::ToJson`, the bench records). Emits compact JSON; commas
/// are inserted automatically between siblings.
///
/// The writer trusts its caller to produce a well-formed document
/// (matching Begin/End calls, keys only inside objects).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(bool value);
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  /// Any other integer type widens to the 64-bit overload of matching
  /// signedness (a template so `long` et al. don't collide with the
  /// fixed-width overloads on LP64).
  template <typename T,
            typename = std::enable_if_t<
                std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                !std::is_same_v<T, std::int64_t> &&
                !std::is_same_v<T, std::uint64_t>>>
  JsonWriter& Value(T value) {
    if constexpr (std::is_signed_v<T>) {
      return Value(static_cast<std::int64_t>(value));
    } else {
      return Value(static_cast<std::uint64_t>(value));
    }
  }

  /// The document built so far.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  /// Emits a separating comma when the current container already holds a
  /// sibling, and marks the container non-empty.
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_sibling_;
  /// A key was just written; the next value attaches to it.
  bool after_key_ = false;
};

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_JSON_H_
