#ifndef SERENA_OBS_JSON_H_
#define SERENA_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"

namespace serena {
namespace obs {

/// Appends `value` to `out` as a JSON string literal (quotes included),
/// escaping control characters, quotes and backslashes.
void AppendJsonString(std::string* out, std::string_view value);

/// A minimal streaming JSON writer — just enough for the telemetry
/// exports (`MetricsRegistry::ToJson`, `TraceBuffer::ToJson`,
/// `PemsMetrics::ToJson`, the bench records). Emits compact JSON; commas
/// are inserted automatically between siblings.
///
/// The writer trusts its caller to produce a well-formed document
/// (matching Begin/End calls, keys only inside objects).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(bool value);
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  /// Any other integer type widens to the 64-bit overload of matching
  /// signedness (a template so `long` et al. don't collide with the
  /// fixed-width overloads on LP64).
  template <typename T,
            typename = std::enable_if_t<
                std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                !std::is_same_v<T, std::int64_t> &&
                !std::is_same_v<T, std::uint64_t>>>
  JsonWriter& Value(T value) {
    if constexpr (std::is_signed_v<T>) {
      return Value(static_cast<std::int64_t>(value));
    } else {
      return Value(static_cast<std::uint64_t>(value));
    }
  }

  /// The document built so far.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  /// Emits a separating comma when the current container already holds a
  /// sibling, and marks the container non-empty.
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_sibling_;
  /// A key was just written; the next value attaches to it.
  bool after_key_ = false;
};

/// A parsed JSON value — the reader-side twin of `JsonWriter`, just rich
/// enough for the documents this codebase writes itself (stats-store
/// baselines, BENCH_*.json records). Numbers are held as doubles, which
/// is exact for the counters we round-trip (< 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  std::uint64_t AsUint64() const {
    return number_ <= 0 ? 0 : static_cast<std::uint64_t>(number_ + 0.5);
  }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  /// Object members in document order (duplicate keys keep the first).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// `Find(key)->number()`, or `fallback` when absent / not a number.
  double NumberOr(std::string_view key, double fallback) const;
  /// `Find(key)->string()`, or `fallback` when absent / not a string.
  std::string StringOr(std::string_view key, std::string_view fallback) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array(std::vector<JsonValue> values);
  static JsonValue Object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else
/// after the value). InvalidArgument with a byte offset on malformed
/// input. Handles the escapes `AppendJsonString` emits; `\uXXXX` decodes
/// BMP code points to UTF-8.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_JSON_H_
