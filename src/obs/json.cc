#include "obs/json.h"

#include <cmath>

#include "common/string_util.h"

namespace serena {
namespace obs {

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StringFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_.push_back(',');
    has_sibling_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  has_sibling_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  has_sibling_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_.push_back(',');
    has_sibling_.back() = true;
  }
  AppendJsonString(&out_, key);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  AppendJsonString(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    out_.append(StringFormat("%.6g", value));
  } else {
    out_.append("null");  // JSON has no NaN/Inf.
  }
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

}  // namespace obs
}  // namespace serena
