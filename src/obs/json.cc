#include "obs/json.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace serena {
namespace obs {

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StringFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_.push_back(',');
    has_sibling_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  has_sibling_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  has_sibling_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_.push_back(',');
    has_sibling_.back() = true;
  }
  AppendJsonString(&out_, key);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  AppendJsonString(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");  // JSON has no NaN/Inf.
  } else if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
             value > -9.0e15 && value < 9.0e15) {
    // Integral doubles (counters, tick counts) print exactly and tidily.
    out_.append(std::to_string(static_cast<std::int64_t>(value)));
  } else {
    // %.17g round-trips any double — required by the exact-record
    // comparisons of the bench harness.
    out_.append(StringFormat("%.17g", value));
  }
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue / ParseJson
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string()
                                                : std::string(fallback);
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> values) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(values);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over the raw text. Depth-capped so a
/// malicious / corrupted document cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SERENA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const char* message) const {
    return Status::InvalidArgument("JSON parse error at byte ", pos_, ": ",
                                   std::string(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      SERENA_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error("unexpected character");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SERENA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SERENA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> values;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(values));
    while (true) {
      SERENA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      values.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(values));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            // BMP code point to UTF-8 (surrogate pairs are not needed for
            // our own documents; lone surrogates encode as-is).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return Error("bad number");
    return JsonValue::Number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace obs
}  // namespace serena
