#include "obs/export.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "obs/json.h"

namespace serena {
namespace obs {

namespace {

bool IsLegalPrometheusChar(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (!IsLegalPrometheusChar(name[0], /*first=*/true) && name[0] >= '0' &&
      name[0] <= '9') {
    out.push_back('_');
  }
  for (char c : name) {
    out.push_back(IsLegalPrometheusChar(c, /*first=*/false) ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const std::string& name : registry.CounterNames()) {
    const Counter* counter = registry.FindCounter(name);
    if (counter == nullptr) continue;
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const std::string& name : registry.GaugeNames()) {
    const Gauge* gauge = registry.FindGauge(name);
    if (gauge == nullptr) continue;
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* histogram = registry.FindHistogram(name);
    if (histogram == nullptr) continue;
    const HistogramSnapshot snapshot = histogram->Snapshot();
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets up to the one holding the observed max; the
    // +Inf bucket always closes the series with the total count.
    std::uint64_t cumulative = 0;
    const std::size_t top =
        snapshot.count == 0 ? 0 : Histogram::BucketIndex(snapshot.max);
    for (std::size_t i = 0; i <= top && i < Histogram::kBucketCount; ++i) {
      cumulative += snapshot.buckets[i];
      out += prom + "_bucket{le=\"" +
             std::to_string(Histogram::BucketBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(snapshot.count) +
           "\n";
    out += prom + "_sum " + std::to_string(snapshot.sum) + "\n";
    out += prom + "_count " + std::to_string(snapshot.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::DumpPrometheus() const {
  return ExportPrometheus(*this);
}

namespace {

double ToMicros(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void EmitThreadName(JsonWriter& json, std::uint64_t tid,
                    const std::string& name) {
  json.BeginObject();
  json.Key("name").Value("thread_name");
  json.Key("ph").Value("M");
  json.Key("pid").Value(1);
  json.Key("tid").Value(tid);
  json.Key("args").BeginObject();
  json.Key("name").Value(name);
  json.EndObject();
  json.EndObject();
}

}  // namespace

std::string ExportChromeTrace(const TraceBuffer& buffer) {
  const std::vector<SpanRecord> spans = buffer.Snapshot();

  std::uint64_t base_ns = UINT64_MAX;
  for (const SpanRecord& span : spans) {
    base_ns = std::min(base_ns, span.start_ns);
  }
  if (base_ns == UINT64_MAX) base_ns = 0;

  // Index by span id so causal links can resolve to their target's
  // location on the timeline.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  std::set<std::uint64_t> threads;
  // Extent of each logical instant across all spans stamped with it.
  std::map<Timestamp, std::pair<std::uint64_t, std::uint64_t>> instants;
  for (const SpanRecord& span : spans) {
    if (span.span_id != 0) by_id.emplace(span.span_id, &span);
    threads.insert(span.thread_index);
    auto [it, inserted] = instants.try_emplace(
        span.instant, span.start_ns, span.start_ns + span.duration_ns);
    if (!inserted) {
      it->second.first = std::min(it->second.first, span.start_ns);
      it->second.second =
          std::max(it->second.second, span.start_ns + span.duration_ns);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();

  json.BeginObject();
  json.Key("name").Value("process_name");
  json.Key("ph").Value("M");
  json.Key("pid").Value(1);
  json.Key("args").BeginObject();
  json.Key("name").Value("serena-pems");
  json.EndObject();
  json.EndObject();

  EmitThreadName(json, 0, "logical instants");
  for (std::uint64_t tid : threads) {
    EmitThreadName(json, tid, "thread " + std::to_string(tid));
  }

  // The synthetic instant track: one slice per logical instant τ,
  // spanning the physical extent of every span stamped with it.
  for (const auto& [instant, extent] : instants) {
    json.BeginObject();
    json.Key("name").Value("instant " + std::to_string(instant));
    json.Key("ph").Value("X");
    json.Key("pid").Value(1);
    json.Key("tid").Value(0);
    json.Key("ts").Value(ToMicros(extent.first - base_ns));
    json.Key("dur").Value(ToMicros(extent.second - extent.first));
    json.Key("args").BeginObject();
    json.Key("instant").Value(static_cast<std::int64_t>(instant));
    json.EndObject();
    json.EndObject();
  }

  for (const SpanRecord& span : spans) {
    json.BeginObject();
    json.Key("name").Value(span.name);
    if (!span.detail.empty()) json.Key("cat").Value("serena");
    json.Key("ph").Value("X");
    json.Key("pid").Value(1);
    json.Key("tid").Value(span.thread_index);
    json.Key("ts").Value(ToMicros(span.start_ns - base_ns));
    json.Key("dur").Value(ToMicros(span.duration_ns));
    json.Key("args").BeginObject();
    if (!span.detail.empty()) json.Key("detail").Value(span.detail);
    json.Key("instant").Value(static_cast<std::int64_t>(span.instant));
    json.Key("trace_id").Value(span.trace_id);
    json.Key("span_id").Value(span.span_id);
    json.Key("parent_id").Value(span.parent_id);
    if (span.link_span_id != 0) {
      json.Key("link_span_id").Value(span.link_span_id);
    }
    json.EndObject();
    json.EndObject();

    // Causal link (memo waiter → winning invocation) as a flow arrow,
    // emitted only when the target span is still in the ring.
    const auto target = span.link_span_id != 0
                            ? by_id.find(span.link_span_id)
                            : by_id.end();
    if (target != by_id.end()) {
      const SpanRecord& linked = *target->second;
      json.BeginObject();
      json.Key("name").Value("memo-link");
      json.Key("cat").Value("memo");
      json.Key("ph").Value("s");
      json.Key("id").Value(span.span_id);
      json.Key("pid").Value(1);
      json.Key("tid").Value(linked.thread_index);
      json.Key("ts").Value(ToMicros(linked.start_ns - base_ns));
      json.EndObject();
      json.BeginObject();
      json.Key("name").Value("memo-link");
      json.Key("cat").Value("memo");
      json.Key("ph").Value("f");
      json.Key("bp").Value("e");
      json.Key("id").Value(span.span_id);
      json.Key("pid").Value(1);
      json.Key("tid").Value(span.thread_index);
      json.Key("ts").Value(ToMicros(span.start_ns - base_ns));
      json.EndObject();
    }
  }

  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

namespace {

bool WriteMetricsFileNow(const char* path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ExportPrometheus(MetricsRegistry::Global());
  return static_cast<bool>(out);
}

}  // namespace

bool MaybeWriteMetricsFile(std::uint64_t min_interval_ns) {
  const char* path = std::getenv("SERENA_METRICS_FILE");
  if (path == nullptr || path[0] == '\0') return false;
  static std::atomic<std::uint64_t> last_write_ns{0};
  const std::uint64_t now = MonotonicNowNs();
  std::uint64_t last = last_write_ns.load(std::memory_order_relaxed);
  if (last != 0 && now - last < min_interval_ns) return false;
  if (!last_write_ns.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return false;  // Another thread is writing this interval.
  }
  return WriteMetricsFileNow(path);
}

bool FlushMetricsFile() {
  const char* path = std::getenv("SERENA_METRICS_FILE");
  if (path == nullptr || path[0] == '\0') return false;
  return WriteMetricsFileNow(path);
}

}  // namespace obs
}  // namespace serena
