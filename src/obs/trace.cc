#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace serena {
namespace obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity = std::max<std::size_t>(capacity, 1);
  // Re-linearize oldest→newest, keep the newest `capacity` spans.
  std::vector<SpanRecord> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    ordered.insert(ordered.end(), ring_.begin() + next_, ring_.end());
    ordered.insert(ordered.end(), ring_.begin(), ring_.begin() + next_);
  } else {
    ordered = ring_;
  }
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.end() - static_cast<std::ptrdiff_t>(capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(ordered);
  next_ = ring_.size() == capacity_ ? 0 : ring_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    next_ = ring_.size() == capacity_ ? 0 : ring_.size();
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    ordered.insert(ordered.end(), ring_.begin() + next_, ring_.end());
    ordered.insert(ordered.end(), ring_.begin(), ring_.begin() + next_);
  } else {
    ordered = ring_;
  }
  return ordered;
}

std::uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceBuffer::ToJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("total_recorded").Value(total_recorded());
  json.Key("spans").BeginArray();
  for (const SpanRecord& span : spans) {
    json.BeginObject();
    json.Key("name").Value(span.name);
    if (!span.detail.empty()) json.Key("detail").Value(span.detail);
    json.Key("instant").Value(static_cast<std::int64_t>(span.instant));
    json.Key("start_ns").Value(span.start_ns);
    json.Key("duration_ns").Value(span.duration_ns);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

Span::Span(std::string_view name, Timestamp instant, std::string_view detail,
           TraceBuffer* buffer)
    : buffer_(buffer != nullptr && buffer->enabled() ? buffer : nullptr) {
  if (buffer_ == nullptr) return;
  record_.name.assign(name);
  record_.detail.assign(detail);
  record_.instant = instant;
  record_.start_ns = MonotonicNowNs();
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  record_.duration_ns = MonotonicNowNs() - record_.start_ns;
  buffer_->Record(std::move(record_));
}

}  // namespace obs
}  // namespace serena
