#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace serena {
namespace obs {

namespace {

thread_local SpanContext t_current_context;

SpanContext SwapCurrentContext(SpanContext context) {
  const SpanContext previous = t_current_context;
  t_current_context = context;
  return previous;
}

}  // namespace

SpanContext CurrentSpanContext() { return t_current_context; }

std::uint64_t NextSpanId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t CurrentThreadIndex() {
  // Index 0 is reserved for synthetic exporter tracks; real threads are
  // numbered from 1 in first-use order.
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

ScopedSpanContext::ScopedSpanContext(SpanContext context)
    : saved_(SwapCurrentContext(context)) {}

ScopedSpanContext::~ScopedSpanContext() { SwapCurrentContext(saved_); }

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity = std::max<std::size_t>(capacity, 1);
  // Re-linearize oldest→newest, keep the newest `capacity` spans.
  std::vector<SpanRecord> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    ordered.insert(ordered.end(), ring_.begin() + next_, ring_.end());
    ordered.insert(ordered.end(), ring_.begin(), ring_.begin() + next_);
  } else {
    ordered = ring_;
  }
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.end() - static_cast<std::ptrdiff_t>(capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(ordered);
  next_ = ring_.size() == capacity_ ? 0 : ring_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::Record(SpanRecord record) {
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
      next_ = ring_.size() == capacity_ ? 0 : ring_.size();
    } else {
      ring_[next_] = std::move(record);
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
      overwrote = true;
    }
  }
  if (overwrote) {
    MetricsRegistry::Global().GetCounter("serena.trace.dropped").Increment();
  }
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    ordered.insert(ordered.end(), ring_.begin() + next_, ring_.end());
    ordered.insert(ordered.end(), ring_.begin(), ring_.begin() + next_);
  } else {
    ordered = ring_;
  }
  return ordered;
}

std::uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

std::string TraceBuffer::ToJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("total_recorded").Value(total_recorded());
  json.Key("dropped").Value(dropped());
  json.Key("spans").BeginArray();
  for (const SpanRecord& span : spans) {
    json.BeginObject();
    json.Key("name").Value(span.name);
    if (!span.detail.empty()) json.Key("detail").Value(span.detail);
    json.Key("instant").Value(static_cast<std::int64_t>(span.instant));
    json.Key("trace_id").Value(span.trace_id);
    json.Key("span_id").Value(span.span_id);
    json.Key("parent_id").Value(span.parent_id);
    if (span.link_span_id != 0) {
      json.Key("link_span_id").Value(span.link_span_id);
    }
    json.Key("thread_index").Value(span.thread_index);
    json.Key("start_ns").Value(span.start_ns);
    json.Key("duration_ns").Value(span.duration_ns);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

Span::Span(std::string_view name, Timestamp instant, std::string_view detail,
           TraceBuffer* buffer)
    : buffer_(buffer != nullptr && buffer->enabled() ? buffer : nullptr) {
  if (buffer_ == nullptr) return;
  Init(name, instant, detail, 0);
}

Span::Span(std::string_view name, Timestamp instant, std::string_view detail,
           std::uint64_t span_id, TraceBuffer* buffer)
    : buffer_(buffer != nullptr && buffer->enabled() ? buffer : nullptr) {
  if (buffer_ == nullptr) return;
  Init(name, instant, detail, span_id);
}

void Span::Init(std::string_view name, Timestamp instant,
                std::string_view detail, std::uint64_t span_id) {
  record_.name.assign(name);
  record_.detail.assign(detail);
  record_.instant = instant;
  const SpanContext parent = CurrentSpanContext();
  record_.span_id = span_id != 0 ? span_id : NextSpanId();
  record_.parent_id = parent.span_id;
  // Roots start a fresh trace; reuse the span id as the trace id so
  // related spans stay groupable without a second id space.
  record_.trace_id = parent.valid() ? parent.trace_id : record_.span_id;
  saved_ = SwapCurrentContext(SpanContext{record_.trace_id, record_.span_id});
  record_.start_ns = MonotonicNowNs();
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  record_.duration_ns = MonotonicNowNs() - record_.start_ns;
  record_.thread_index = CurrentThreadIndex();
  SwapCurrentContext(saved_);
  buffer_->Record(std::move(record_));
}

}  // namespace obs
}  // namespace serena
