#ifndef SERENA_OBS_TRACE_H_
#define SERENA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace serena {
namespace obs {

/// One completed span: a named stretch of work stamped with both physical
/// time (monotonic nanoseconds) and the logical clock instant it executed
/// at — the dual-time view that makes tick traces line up with the
/// algebra's discrete-time semantics.
struct SpanRecord {
  std::string name;
  /// Free-form qualifier (query name, prototype, ...). May be empty.
  std::string detail;
  /// The logical instant τ the work belonged to.
  Timestamp instant = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// A bounded ring buffer of the most recent spans. When full, the oldest
/// span is overwritten — tracing a long-running PEMS never grows memory.
///
/// Disabled by default (spans carry strings); enable for debugging or
/// tick-latency investigations. Thread-safe.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// The process-wide buffer used by all built-in spans.
  static TraceBuffer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Resizes the ring; existing spans are kept (newest first, up to the
  /// new capacity).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void Record(SpanRecord record);

  /// Retained spans, oldest to newest.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans ever recorded (monotonic; `total_recorded() - size()` of them
  /// have been overwritten).
  std::uint64_t total_recorded() const;
  std::size_t size() const;

  void Clear();

  /// `{"total_recorded": N, "spans": [{"name", "detail", "instant",
  /// "start_ns", "duration_ns"}, ...]}` — oldest to newest.
  std::string ToJson() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< Slot the next span lands in (once full).
  std::uint64_t total_ = 0;
};

/// RAII span: times its scope and records into the buffer on destruction.
/// When the buffer is disabled at construction the span is inert — no
/// clock read, no string copies.
class Span {
 public:
  Span(std::string_view name, Timestamp instant,
       std::string_view detail = {},
       TraceBuffer* buffer = &TraceBuffer::Global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceBuffer* buffer_;  ///< nullptr when inert.
  SpanRecord record_;
};

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_TRACE_H_
