#ifndef SERENA_OBS_TRACE_H_
#define SERENA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace serena {
namespace obs {

/// The causal identity of an in-flight span: which trace it belongs to and
/// which span is currently active. Propagated through thread pools and
/// service invocations so work scheduled on another thread still parents
/// under the span that caused it. A default-constructed context is the
/// "no active span" root state.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
};

/// The context of the span currently active on this thread (thread-local).
SpanContext CurrentSpanContext();

/// Allocates a fresh process-unique nonzero span/trace id.
std::uint64_t NextSpanId();

/// A stable small index identifying the calling OS thread, assigned on
/// first use starting at 1. Index 0 is reserved for synthetic tracks
/// (the logical-instant track in the Chrome exporter).
std::uint64_t CurrentThreadIndex();

/// RAII installer for a span context: makes `context` current for this
/// thread, restoring the previous context on destruction. Thread pools use
/// this to re-establish the submitter's context inside the worker.
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(SpanContext context);
  ~ScopedSpanContext();

  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext saved_;
};

/// One completed span: a named stretch of work stamped with both physical
/// time (monotonic nanoseconds) and the logical clock instant it executed
/// at — the dual-time view that makes tick traces line up with the
/// algebra's discrete-time semantics. Trace/span/parent ids make the
/// records causally linkable across threads.
struct SpanRecord {
  std::string name;
  /// Free-form qualifier (query name, prototype, ...). May be empty.
  std::string detail;
  /// The logical instant τ the work belonged to.
  Timestamp instant = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Causal identity. trace_id groups one causally-connected unit (e.g.
  /// one executor tick); parent_id is 0 for roots.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  /// Cross-trace causal link (e.g. a memo waiter → the winning physical
  /// invocation's span). 0 when absent.
  std::uint64_t link_span_id = 0;
  /// Stable index of the thread the span completed on (see
  /// CurrentThreadIndex).
  std::uint64_t thread_index = 0;
};

/// A bounded ring buffer of the most recent spans. When full, the oldest
/// span is overwritten — tracing a long-running PEMS never grows memory.
/// Overwrites are *not* silent: they bump `dropped()` and the
/// `serena.trace.dropped` counter.
///
/// Disabled by default (spans carry strings); enable for debugging or
/// tick-latency investigations. Thread-safe.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// The process-wide buffer used by all built-in spans.
  static TraceBuffer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Resizes the ring; existing spans are kept (newest first, up to the
  /// new capacity).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void Record(SpanRecord record);

  /// Retained spans, oldest to newest.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans ever recorded (monotonic; `dropped()` of them have been
  /// overwritten).
  std::uint64_t total_recorded() const;
  /// Spans lost to ring overwrites since construction / Clear().
  std::uint64_t dropped() const;
  std::size_t size() const;

  void Clear();

  /// `{"total_recorded": N, "dropped": D, "spans": [{"name", "detail",
  /// "instant", "trace_id", "span_id", "parent_id", ...}, ...]}` —
  /// oldest to newest.
  std::string ToJson() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< Slot the next span lands in (once full).
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span: times its scope and records into the buffer on destruction.
/// While alive it is the thread's current span context, so nested spans
/// (and pool tasks submitted from inside it) parent under it. When the
/// buffer is disabled at construction the span is inert — no clock read,
/// no string copies, no context install.
class Span {
 public:
  Span(std::string_view name, Timestamp instant,
       std::string_view detail = {},
       TraceBuffer* buffer = &TraceBuffer::Global());
  /// Variant with a caller-preallocated span id (see NextSpanId) — used
  /// when the id must be published (e.g. in a memo slot) before the span
  /// completes. `span_id` 0 falls back to a fresh id.
  Span(std::string_view name, Timestamp instant, std::string_view detail,
       std::uint64_t span_id, TraceBuffer* buffer = &TraceBuffer::Global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Marks a causal link to another span (e.g. the memoized invocation
  /// this span waited on). No-op when inert.
  void set_link_span(std::uint64_t span_id) {
    if (buffer_ != nullptr) record_.link_span_id = span_id;
  }

  /// This span's context (zeroes when inert).
  SpanContext context() const {
    return SpanContext{record_.trace_id, record_.span_id};
  }

 private:
  void Init(std::string_view name, Timestamp instant, std::string_view detail,
            std::uint64_t span_id);

  TraceBuffer* buffer_;  ///< nullptr when inert.
  SpanRecord record_;
  SpanContext saved_;  ///< Context to restore on destruction.
};

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_TRACE_H_
