#ifndef SERENA_OBS_METRICS_H_
#define SERENA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace serena {
namespace obs {

/// Wall-clock monotonic time in nanoseconds (CLOCK_MONOTONIC). This is
/// *physical* time, orthogonal to the logical `Timestamp` instants of the
/// algebra — telemetry records both.
std::uint64_t MonotonicNowNs();

/// A monotonically increasing event count. Thread-safe; incrementing is a
/// single relaxed atomic add.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (queue depth, catalog size). Thread-safe.
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A point-in-time copy of one histogram's state, internally consistent
/// by construction: `count` is computed as the sum of the copied buckets,
/// so percentiles derived from a snapshot are monotone even while writers
/// race — the fix for torn dashboards read field-by-field from the live
/// atomics (see docs/OBSERVABILITY.md).
struct HistogramSnapshot {
  /// One count per bounded bucket plus the overflow bucket (last entry).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Same semantics as Histogram::ValueAtPercentile, over the frozen
  /// buckets.
  std::uint64_t ValueAtPercentile(double p) const;
};

/// A fixed-bucket latency histogram. Buckets are exponential, base 2:
/// bucket i counts recorded values v with v < BucketBound(i), where
/// BucketBound(i) = 2^(i + 8) — i.e. 256ns, 512ns, ..., up to
/// 2^35 ns (~34s); everything larger lands in the overflow bucket.
/// Designed for nanosecond latencies but unit-agnostic.
///
/// Thread-safe: recording is 3 relaxed atomic adds plus two CAS loops for
/// min/max. Percentiles are approximate (resolved to bucket bounds).
class Histogram {
 public:
  /// Number of bounded buckets (the overflow bucket is extra).
  static constexpr std::size_t kBucketCount = 28;
  /// log2 of the first bucket's upper bound.
  static constexpr unsigned kFirstBoundLog2 = 8;

  /// Upper bound (exclusive) of bucket `i`; UINT64_MAX for the overflow
  /// bucket (i == kBucketCount).
  static std::uint64_t BucketBound(std::size_t i);
  /// Index of the bucket `value` falls into.
  static std::size_t BucketIndex(std::uint64_t value);

  void Record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  std::uint64_t min() const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Approximate percentile (p in [0, 100]): the upper bound of the
  /// bucket containing the p-th ranked value (clamped to `max()`).
  /// Returns 0 when empty.
  std::uint64_t ValueAtPercentile(double p) const;

  /// Count in bucket `i` (i <= kBucketCount; kBucketCount = overflow).
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// A single-pass consistent snapshot; all derived statistics (exports,
  /// dashboards) should be computed from one snapshot rather than from
  /// repeated live reads.
  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount + 1] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// The process-wide registry of named telemetry instruments.
///
/// Names are flat dotted paths (see docs/OBSERVABILITY.md for the naming
/// scheme, e.g. `serena.executor.tick_ns`). Get* registers on first use
/// and returns a reference that stays valid for the registry's lifetime,
/// so hot paths look instruments up once and keep the pointer.
///
/// Cheap when idle: instrumented call sites guard timing work behind
/// `enabled()` — a single relaxed atomic load. Disabling stops new
/// samples; already-registered instruments keep their values. The initial
/// state honors the `SERENA_METRICS` environment variable (`0`, `false`
/// or `off` start disabled; anything else, or unset, starts enabled).
class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// nullptr when no instrument of that kind has the name.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Zeroes every instrument's value; identities (and cached references)
  /// stay valid. Tests use this to isolate runs sharing the global
  /// registry.
  void ResetValues();

  /// The full registry as one JSON object:
  /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count", "sum", "min", "max", "mean", "p50", "p90", "p99",
  /// "buckets": [{"le", "count"}, ...]}}}` (only non-empty buckets).
  std::string ToJson() const;

  /// The full registry in Prometheus text exposition format (metric names
  /// sanitized, histograms as cumulative `_bucket{le=...}`/`_sum`/`_count`
  /// series). Implemented in obs/export.cc.
  std::string DumpPrometheus() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  // std::map: sorted JSON export; unique_ptr: stable addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII latency sample: records the elapsed nanoseconds into `histogram`
/// on destruction. Pass nullptr to make it a no-op (the disabled path —
/// no clock read happens).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram != nullptr ? MonotonicNowNs() : 0) {}
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicNowNs() - start_ns_);
    }
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace obs
}  // namespace serena

#endif  // SERENA_OBS_METRICS_H_
