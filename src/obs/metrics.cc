#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/json.h"

namespace serena {
namespace obs {

std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::uint64_t Histogram::BucketBound(std::size_t i) {
  if (i >= kBucketCount) return UINT64_MAX;
  return std::uint64_t{1} << (i + kFirstBoundLog2);
}

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  // bound(i) = 2^(i + kFirstBoundLog2), so a value with bit width w
  // (i.e. in [2^(w-1), 2^w)) belongs to bucket w - kFirstBoundLog2.
  const unsigned width = static_cast<unsigned>(std::bit_width(value));
  if (width <= kFirstBoundLog2) return 0;
  const std::size_t index = width - kFirstBoundLog2;
  return index < kBucketCount ? index : kBucketCount;
}

void Histogram::Record(std::uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::ValueAtPercentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  const auto rank = static_cast<std::uint64_t>(p / 100.0 *
                                               static_cast<double>(n));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= kBucketCount; ++i) {
    seen += BucketCount(i);
    if (seen > rank) {
      const std::uint64_t bound = BucketBound(i);
      return bound < max() ? bound : max();
    }
  }
  return max();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.resize(kBucketCount + 1);
  for (std::size_t i = 0; i <= kBucketCount; ++i) {
    snapshot.buckets[i] = BucketCount(i);
    snapshot.count += snapshot.buckets[i];
  }
  snapshot.sum = sum();
  snapshot.min = min();
  snapshot.max = max();
  return snapshot;
}

std::uint64_t HistogramSnapshot::ValueAtPercentile(double p) const {
  if (count == 0) return 0;
  if (p <= 0.0) return min;
  if (p >= 100.0) return max;
  const auto rank =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      const std::uint64_t bound = Histogram::BucketBound(i);
      return bound < max ? bound : max;
    }
  }
  return max;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

bool EnabledFromEnv() {
  const char* value = std::getenv("SERENA_METRICS");
  if (value == nullptr) return true;
  return !(EqualsIgnoreCase(value, "0") || EqualsIgnoreCase(value, "off") ||
           EqualsIgnoreCase(value, "false"));
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, instrument] : map) names.push_back(name);
  return names;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : enabled_(EnabledFromEnv()) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SortedKeys(counters_);
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SortedKeys(gauges_);
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SortedKeys(histograms_);
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();

  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Value(counter->value());
  }
  json.EndObject();

  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Value(gauge->value());
  }
  json.EndObject();

  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    // One snapshot per histogram: every derived figure below comes from
    // the same frozen buckets, so a concurrent Reset can't tear the entry
    // into count/percentile combinations that never coexisted.
    const HistogramSnapshot snapshot = histogram->Snapshot();
    json.Key(name).BeginObject();
    json.Key("count").Value(snapshot.count);
    json.Key("sum").Value(snapshot.sum);
    json.Key("min").Value(snapshot.min);
    json.Key("max").Value(snapshot.max);
    json.Key("mean").Value(snapshot.mean());
    json.Key("p50").Value(snapshot.ValueAtPercentile(50));
    json.Key("p90").Value(snapshot.ValueAtPercentile(90));
    json.Key("p99").Value(snapshot.ValueAtPercentile(99));
    json.Key("buckets").BeginArray();
    for (std::size_t i = 0; i < snapshot.buckets.size(); ++i) {
      const std::uint64_t in_bucket = snapshot.buckets[i];
      if (in_bucket == 0) continue;
      json.BeginObject();
      json.Key("le").Value(Histogram::BucketBound(i));
      json.Key("count").Value(in_bucket);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return json.TakeString();
}

}  // namespace obs
}  // namespace serena
