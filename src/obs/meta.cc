#include "obs/meta.h"

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "schema/extended_schema.h"
#include "stream/executor.h"
#include "stream/query_health.h"
#include "types/tuple.h"
#include "xrel/environment.h"
#include "xrel/xrelation.h"

namespace serena {
namespace obs {

namespace {

Result<ExtendedSchemaPtr> MetricsSchema() {
  return ExtendedSchema::Create(
      kSysMetricsRelation, {{"metric", DataType::kString},
                            {"kind", DataType::kString},
                            {"value", DataType::kReal}});
}

Result<ExtendedSchemaPtr> SpansSchema() {
  return ExtendedSchema::Create(
      kSysSpansRelation, {{"name", DataType::kString},
                          {"detail", DataType::kString},
                          {"instant", DataType::kInt},
                          {"trace_id", DataType::kInt},
                          {"span_id", DataType::kInt},
                          {"parent_id", DataType::kInt},
                          {"link_span_id", DataType::kInt},
                          {"thread_index", DataType::kInt},
                          {"start_ns", DataType::kInt},
                          {"duration_ns", DataType::kInt}});
}

Result<ExtendedSchemaPtr> QueryHealthSchema() {
  return ExtendedSchema::Create(
      kSysQueryHealthRelation, {{"name", DataType::kString},
                                {"last_instant", DataType::kInt},
                                {"lag", DataType::kInt},
                                {"streak", DataType::kInt},
                                {"errors", DataType::kInt},
                                {"steps", DataType::kInt},
                                {"p50_step_ns", DataType::kInt},
                                {"p99_step_ns", DataType::kInt},
                                {"rows_in_rate", DataType::kReal},
                                {"rows_out_rate", DataType::kReal}});
}

Result<ExtendedSchemaPtr> OperatorStatsSchema() {
  return ExtendedSchema::Create(
      kSysOperatorStatsRelation, {{"fingerprint", DataType::kString},
                                  {"op_kind", DataType::kString},
                                  {"label", DataType::kString},
                                  {"prototype", DataType::kString},
                                  {"evals", DataType::kInt},
                                  {"rows_in", DataType::kInt},
                                  {"rows_out", DataType::kInt},
                                  {"wall_ns", DataType::kInt},
                                  {"invocations", DataType::kInt},
                                  {"memo_hits", DataType::kInt},
                                  {"errors", DataType::kInt},
                                  {"selectivity", DataType::kReal},
                                  {"memo_hit_rate", DataType::kReal}});
}

Value IntValue(std::uint64_t v) {
  return Value::Int(static_cast<std::int64_t>(v));
}

Status RefreshMetrics(Environment* env) {
  SERENA_ASSIGN_OR_RETURN(const XRelation* existing,
                          env->GetRelation(kSysMetricsRelation));
  XRelation relation(existing->schema_ptr());
  const MetricsRegistry& metrics = MetricsRegistry::Global();
  for (const std::string& name : metrics.CounterNames()) {
    const Counter* counter = metrics.FindCounter(name);
    if (counter == nullptr) continue;
    relation.InsertUnchecked(
        Tuple{Value::String(name), Value::String("counter"),
              Value::Real(static_cast<double>(counter->value()))});
  }
  for (const std::string& name : metrics.GaugeNames()) {
    const Gauge* gauge = metrics.FindGauge(name);
    if (gauge == nullptr) continue;
    relation.InsertUnchecked(
        Tuple{Value::String(name), Value::String("gauge"),
              Value::Real(static_cast<double>(gauge->value()))});
  }
  for (const std::string& name : metrics.HistogramNames()) {
    const Histogram* histogram = metrics.FindHistogram(name);
    if (histogram == nullptr) continue;
    const HistogramSnapshot snapshot = histogram->Snapshot();
    const std::pair<const char*, double> facets[] = {
        {".count", static_cast<double>(snapshot.count)},
        {".mean", snapshot.mean()},
        {".p50", static_cast<double>(snapshot.ValueAtPercentile(50))},
        {".p99", static_cast<double>(snapshot.ValueAtPercentile(99))},
        {".max", static_cast<double>(snapshot.max)},
    };
    for (const auto& [suffix, value] : facets) {
      relation.InsertUnchecked(Tuple{Value::String(name + suffix),
                                     Value::String("histogram"),
                                     Value::Real(value)});
    }
  }
  return env->PutRelation(std::move(relation));
}

Status RefreshSpans(Environment* env) {
  SERENA_ASSIGN_OR_RETURN(const XRelation* existing,
                          env->GetRelation(kSysSpansRelation));
  XRelation relation(existing->schema_ptr());
  for (const SpanRecord& span : TraceBuffer::Global().Snapshot()) {
    relation.InsertUnchecked(
        Tuple{Value::String(span.name), Value::String(span.detail),
              Value::Int(span.instant), IntValue(span.trace_id),
              IntValue(span.span_id), IntValue(span.parent_id),
              IntValue(span.link_span_id), IntValue(span.thread_index),
              IntValue(span.start_ns), IntValue(span.duration_ns)});
  }
  return env->PutRelation(std::move(relation));
}

Status RefreshQueryHealth(Environment* env, const QueryHealth* health) {
  SERENA_ASSIGN_OR_RETURN(const XRelation* existing,
                          env->GetRelation(kSysQueryHealthRelation));
  XRelation relation(existing->schema_ptr());
  if (health != nullptr) {
    for (const QueryHealth::QuerySnapshot& query : health->Snapshots()) {
      relation.InsertUnchecked(
          Tuple{Value::String(query.name),
                Value::Int(query.last_completed_instant),
                Value::Int(query.lag), IntValue(query.error_streak),
                IntValue(query.total_errors), IntValue(query.steps),
                IntValue(query.p50_step_ns), IntValue(query.p99_step_ns),
                Value::Real(query.rows_in_rate),
                Value::Real(query.rows_out_rate)});
    }
  }
  return env->PutRelation(std::move(relation));
}

Status RefreshOperatorStats(Environment* env) {
  SERENA_ASSIGN_OR_RETURN(const XRelation* existing,
                          env->GetRelation(kSysOperatorStatsRelation));
  XRelation relation(existing->schema_ptr());
  for (const OperatorStats& op : StatsStore::Global().Snapshot()) {
    relation.InsertUnchecked(
        Tuple{Value::String(op.fingerprint), Value::String(op.kind),
              Value::String(op.label), Value::String(op.prototype),
              IntValue(op.evals), IntValue(op.rows_in),
              IntValue(op.rows_out), IntValue(op.wall_ns),
              IntValue(op.invocations), IntValue(op.memo_hits),
              IntValue(op.errors), Value::Real(op.selectivity()),
              Value::Real(op.memo_hit_rate())});
  }
  return env->PutRelation(std::move(relation));
}

}  // namespace

Status RefreshMetaRelations(Environment* env, const QueryHealth* health) {
  if (env == nullptr) return Status::InvalidArgument("null environment");
  if (env->HasRelation(kSysMetricsRelation)) {
    SERENA_RETURN_NOT_OK(RefreshMetrics(env));
  }
  if (env->HasRelation(kSysSpansRelation)) {
    SERENA_RETURN_NOT_OK(RefreshSpans(env));
  }
  if (env->HasRelation(kSysQueryHealthRelation)) {
    SERENA_RETURN_NOT_OK(RefreshQueryHealth(env, health));
  }
  if (env->HasRelation(kSysOperatorStatsRelation)) {
    SERENA_RETURN_NOT_OK(RefreshOperatorStats(env));
  }
  return Status::OK();
}

Status RegisterMetaRelations(Environment* env,
                             ContinuousExecutor* executor) {
  if (env == nullptr) return Status::InvalidArgument("null environment");
  if (!env->HasRelation(kSysMetricsRelation)) {
    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema, MetricsSchema());
    SERENA_RETURN_NOT_OK(env->AddRelation(std::move(schema)));
  }
  if (!env->HasRelation(kSysSpansRelation)) {
    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema, SpansSchema());
    SERENA_RETURN_NOT_OK(env->AddRelation(std::move(schema)));
  }
  if (!env->HasRelation(kSysQueryHealthRelation)) {
    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema, QueryHealthSchema());
    SERENA_RETURN_NOT_OK(env->AddRelation(std::move(schema)));
  }
  if (!env->HasRelation(kSysOperatorStatsRelation)) {
    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema, OperatorStatsSchema());
    SERENA_RETURN_NOT_OK(env->AddRelation(std::move(schema)));
  }
  SERENA_RETURN_NOT_OK(RefreshMetaRelations(
      env, executor != nullptr ? &executor->health() : nullptr));
  if (executor != nullptr) {
    // The source runs serially before any query steps, so every query of
    // a tick sees one consistent telemetry snapshot (taken at tick
    // start; a query's view of sys_* therefore describes the state as of
    // the previous tick's end).
    executor->AddSource([env, executor](Timestamp) {
      return RefreshMetaRelations(env, &executor->health());
    });
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace serena
