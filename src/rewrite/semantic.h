#ifndef SERENA_REWRITE_SEMANTIC_H_
#define SERENA_REWRITE_SEMANTIC_H_

#include <string>
#include <vector>

#include "algebra/plan.h"

namespace serena {

/// One applied semantic rewrite, with its equivalence argument — the
/// EXPLAIN-level proof the shell's \optimize prints.
struct SemanticRewriteStep {
  /// "drop-dead-invoke", "narrow-projection", "drop-identity-projection".
  std::string rule;
  /// Label of the rewritten operator ("invoke[getTemperature]").
  std::string node;
  /// Why the rewritten plan is result- and action-equivalent (Def. 9).
  std::string proof;
};

struct SemanticRewriteResult {
  PlanPtr plan;
  std::vector<SemanticRewriteStep> steps;
  /// True when the guarded rewrite was discarded because the rewritten
  /// plan failed re-verification (schema drift or analyzer errors) —
  /// `plan` is then the original.
  bool reverted = false;

  bool changed() const { return !steps.empty() && !reverted; }
};

/// The analyzer-driven *semantic* optimization pass: turns the dataflow
/// facts the static analyzer proves (docs/ANALYSIS.md) into plan
/// rewrites instead of mere warnings. It runs the analyzer's Def. 4
/// needed-set computation over the plan and applies, bottom-up:
///
///  1. drop-dead-invoke (the SER021 fact): a *passive* β whose output
///     attributes are all provably dropped by the operators above is
///     removed — β extends each tuple 1:1 and deterministically (§3.2)
///     and a passive prototype has an empty action set (Def. 8), so the
///     final result and action set are unchanged while every physical
///     service call the node made per tick disappears.
///  2. narrow-projection (the SER052 projection analysis): π keeps only
///     the attributes some operator above actually consumes — guarded by
///     a duplicate-sensitivity analysis, because narrowing a projection
///     can merge tuples (relations are sets): the rule is blocked below
///     Aggregate, set operators, and S[...] streaming nodes.
///  3. drop-identity-projection: a π whose list equals its child's full
///     schema is the identity over sets and is removed.
///
/// Every rewrite is re-verified before being returned: the rewritten
/// plan must infer the *identical* root schema and re-analyze without
/// errors, else the original plan is returned with `reverted` set
/// (metric `serena.rewrite.semantic.reverted`). Plans that already have
/// analyzer errors are returned untouched — semantic facts are only
/// trustworthy on well-formed plans.
///
/// Caveat (documented in docs/REWRITES.md): dropping a dead invocation
/// assumes the invocation would have *succeeded*. Under the default
/// kFail error policy the original plan would abort the whole query on
/// a service error where the rewritten plan proceeds — the standard
/// semantic-optimization assumption that verification facts describe
/// the non-failing execution.
///
/// Metrics: serena.rewrite.semantic.dead_invokes,
/// serena.rewrite.semantic.narrowed_projections,
/// serena.rewrite.semantic.identity_projections,
/// serena.rewrite.semantic.reverted.
Result<SemanticRewriteResult> SemanticOptimize(const PlanPtr& plan,
                                               const Environment& env,
                                               const StreamStore* streams);

/// Human rendering of the applied steps, one "rule @ node: proof" line
/// each (empty string for no steps).
std::string RenderSemanticSteps(const std::vector<SemanticRewriteStep>& steps);

}  // namespace serena

#endif  // SERENA_REWRITE_SEMANTIC_H_
