#include "rewrite/equivalence.h"

namespace serena {

std::string EquivalenceReport::ToString() const {
  std::string s = "EquivalenceReport{result=";
  s += same_result ? "same" : "different";
  s += ", actions=";
  s += same_actions ? "same" : "different";
  s += " => ";
  s += equivalent() ? "EQUIVALENT" : "NOT EQUIVALENT";
  s += "}";
  return s;
}

Result<EquivalenceReport> CheckEquivalence(const PlanPtr& q1,
                                           const PlanPtr& q2,
                                           Environment* env,
                                           StreamStore* streams,
                                           Timestamp instant) {
  SERENA_ASSIGN_OR_RETURN(QueryResult r1,
                          Execute(q1, env, streams, instant));
  SERENA_ASSIGN_OR_RETURN(QueryResult r2,
                          Execute(q2, env, streams, instant));
  EquivalenceReport report;
  report.same_result = r1.relation.SetEquals(r2.relation);
  report.same_actions = r1.actions == r2.actions;
  return report;
}

}  // namespace serena
