#ifndef SERENA_REWRITE_RULES_H_
#define SERENA_REWRITE_RULES_H_

#include <string>
#include <vector>

#include "algebra/plan.h"

namespace serena {

/// Context the rules need: schema inference and active/passive checks are
/// resolved against the environment's catalog.
struct RewriteContext {
  const Environment* env = nullptr;
  const StreamStore* streams = nullptr;
};

/// One rewriting rule (§3.3, Table 5). `Apply` attempts the rewrite at the
/// *root* of `plan`:
///  - returns a new plan when the rule matches and its side conditions
///    (including the active-binding-pattern barrier) hold;
///  - returns nullptr when the rule does not apply;
///  - returns an error only on malformed plans.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;

  virtual const char* name() const = 0;
  virtual Result<PlanPtr> Apply(const PlanPtr& plan,
                                const RewriteContext& ctx) const = 0;
};

using RewriteRulePtr = std::shared_ptr<const RewriteRule>;

/// The rule set, in application-priority order:
///
///  1. merge-selections:      σ_F1(σ_F2(r)) → σ_{F1 ∧ F2}(r)
///  2. collapse-projections:  π_L1(π_L2(r)) → π_L1(r)
///  3. push-selection-below-assign (Table 5, α row "Selection"):
///        σ_F(α_{A:=x}(r)) → α_{A:=x}(σ_F(r))         if A ∉ F
///  4. push-selection-below-invoke (Table 5, β row "Selection"):
///        σ_F(β_bp(r)) → β_bp(σ_F(r))
///        if bp is PASSIVE, F mentions no output attribute of bp, and F is
///        valid over the child schema. Active patterns block this rule:
///        it would shrink the action set (precisely the Q1 / Q1'
///        inequivalence of Example 6).
///  5. push-selection-below-join (classical):
///        σ_F(r1 ⋈ r2) → σ_F(r1) ⋈ r2               if attrs(F) ⊆
///        realSchema(R1) (or symmetrically into r2)
///  6. push-projection-below-assign (Table 5, α row "Projection"):
///        π_L(α_{A:=B}(r)) → α_{A:=B}(π_L(r))        if A, B ∈ L
///  7. push-projection-below-invoke (Table 5, β row "Projection"):
///        π_L(β_bp(r)) → β_bp(π_L(r))                if service_bp,
///        Input_ψ and Output_ψ all ⊆ L. Sound for active patterns too:
///        action sets are sets and instant determinism (§3.2) makes
///        duplicate invocations indistinguishable.
///  8. push-selection-below-rename (classical, lifted to X-Relations):
///        σ_F(ρ_{A→B}(r)) → ρ_{A→B}(σ_{F[B→A]}(r))
///  9. push-selection-below-set-op (classical):
///        σ_F(r1 ∪ r2) → σ_F(r1) ∪ σ_F(r2); for ∩ and − the selection
///        pushes into the left operand only.
/// 10. push-assign-below-join (Table 5, α row "Natural Join"):
///        α_{A:=x}(r1 ⋈ r2) → α_{A:=x}(r1) ⋈ r2
///        if A ∈ schema(R1), A ∉ realSchema(R2), and (for attribute
///        sources) B ∈ realSchema(R1).
/// 11. defer-invoke-past-join (Table 5, β row "Natural Join", applied in
///     the lazy-realization direction):
///        β_bp(r1) ⋈ r2 → β_bp(r1 ⋈ r2)
///        if bp is PASSIVE and none of Output_ψ appears in schema(R2) —
///        the join then prunes tuples *before* services are invoked.
std::vector<RewriteRulePtr> DefaultRuleSet();

/// Individual constructors (used by targeted tests/benches).
RewriteRulePtr MakeMergeSelectionsRule();
RewriteRulePtr MakeCollapseProjectionsRule();
RewriteRulePtr MakePushSelectionBelowAssignRule();
RewriteRulePtr MakePushSelectionBelowInvokeRule();
RewriteRulePtr MakePushSelectionBelowJoinRule();
RewriteRulePtr MakePushProjectionBelowAssignRule();
RewriteRulePtr MakePushProjectionBelowInvokeRule();
RewriteRulePtr MakePushSelectionBelowRenameRule();
RewriteRulePtr MakePushSelectionBelowSetOpRule();
RewriteRulePtr MakePushAssignBelowJoinRule();
RewriteRulePtr MakeDeferInvokePastJoinRule();

}  // namespace serena

#endif  // SERENA_REWRITE_RULES_H_
