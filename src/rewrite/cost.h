#ifndef SERENA_REWRITE_COST_H_
#define SERENA_REWRITE_COST_H_

#include <string>

#include "algebra/plan.h"

namespace serena {

/// Cost estimate for a Serena plan. In a pervasive environment the
/// dominating cost is remote service invocation (network round-trip to a
/// sensor/actuator), so invocations are priced far above local tuple
/// processing — this is the "cost model dedicated to pervasive
/// environments" the paper's conclusion calls for.
struct PlanCost {
  /// Estimated service invocations (passive + active).
  double invocations = 0;
  /// Estimated invocations of *active* prototypes.
  double active_invocations = 0;
  /// Estimated tuples flowing through local operators.
  double tuples = 0;
  /// Estimated output cardinality of the plan.
  double cardinality = 0;

  /// Scalar objective: invocations dominate local work.
  double Total() const { return invocations * 100.0 + tuples; }
};

/// Knobs for the estimator.
struct CostModelOptions {
  /// Selectivity assumed for an equality comparison.
  double equality_selectivity = 0.1;
  /// Selectivity assumed for any other predicate.
  double default_selectivity = 0.5;
  /// Average output tuples per invocation (Def. 1 allows 0..n).
  double invocation_fanout = 1.0;
  /// Cardinality assumed for windows over streams (per instant).
  double window_cardinality = 16.0;
};

/// Estimates the cost of `plan` bottom-up, using the environment's actual
/// base-relation cardinalities and the options' selectivities.
Result<PlanCost> EstimateCost(const PlanPtr& plan, const Environment& env,
                              const StreamStore* streams,
                              const CostModelOptions& options = {});

}  // namespace serena

#endif  // SERENA_REWRITE_COST_H_
