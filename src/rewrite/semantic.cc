#include "rewrite/semantic.h"

#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/analyzer.h"
#include "obs/metrics.h"

namespace serena {

namespace {

std::string LabelOf(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kInvoke:
      return "invoke[" +
             static_cast<const InvokeNode&>(node).prototype() + "]";
    case PlanKind::kProject: {
      std::string label = "project[";
      const auto& attrs = static_cast<const ProjectNode&>(node).attributes();
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i > 0) label += ", ";
        label += attrs[i];
      }
      return label + "]";
    }
    default:
      return PlanKindToString(node.kind());
  }
}

std::string RenderSet(const std::vector<std::string>& names) {
  std::string out = "{";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out + "}";
}

void Count(const char* counter, std::uint64_t n = 1) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled() && n > 0) metrics.GetCounter(counter).Increment(n);
}

/// The needed-set traversal (the analyzer's Def. 4 dataflow, extended
/// with the extra facts rewriting — unlike warning — must be sound
/// about):
///
///  - `value_needed`: attributes whose *values* some operator above can
///    still observe. A passive β none of whose outputs are value-needed
///    is dead (the SER021 fact, now actionable).
///  - `present_needed`: attributes that must stay *present* in the
///    schema for the operators above to stay well-formed — a superset
///    concern: β outputs must exist (virtual) below the β, α targets
///    must exist, ρ sources must exist, even when their values are
///    never observed. Projections may only drop attributes in neither
///    set.
///  - `narrow_ok`: whether merging tuples below this node is invisible
///    above. Relations are sets, so narrowing a projection can collapse
///    tuples that differed only on a dropped attribute; Aggregate
///    (count/sum observe cardinality), set operators (schema equality
///    plus per-tuple comparison) and S[...] (delta computation) above
///    make that observable, while 1:1 deterministic operators (σ, ρ, α,
///    β, ⋈) and π itself (collapses anyway) do not.
class SemanticRewriter {
 public:
  SemanticRewriter(const Environment& env, const StreamStore* streams)
      : env_(env), streams_(streams) {}

  std::vector<SemanticRewriteStep>& steps() { return steps_; }

  Result<PlanPtr> Transform(const PlanPtr& plan,
                            std::set<std::string> value_needed,
                            std::set<std::string> present_needed,
                            bool narrow_ok) {
    switch (plan->kind()) {
      case PlanKind::kScan:
      case PlanKind::kWindow:
        return plan;

      case PlanKind::kProject:
        return TransformProject(static_cast<const ProjectNode&>(*plan), plan,
                                value_needed, present_needed, narrow_ok);

      case PlanKind::kSelect: {
        const auto& node = static_cast<const SelectNode&>(*plan);
        node.formula()->CollectAttributes(&value_needed);
        node.formula()->CollectAttributes(&present_needed);
        return Rebuild(plan, node.child(), std::move(value_needed),
                       std::move(present_needed), narrow_ok);
      }

      case PlanKind::kRename: {
        const auto& node = static_cast<const RenameNode&>(*plan);
        if (value_needed.erase(node.to()) > 0) {
          value_needed.insert(node.from());
        }
        present_needed.erase(node.to());
        present_needed.insert(node.from());
        return Rebuild(plan, node.child(), std::move(value_needed),
                       std::move(present_needed), narrow_ok);
      }

      case PlanKind::kAssign: {
        const auto& node = static_cast<const AssignNode&>(*plan);
        value_needed.erase(node.target());
        present_needed.insert(node.target());
        if (node.from_attribute()) {
          value_needed.insert(node.source_attribute());
          present_needed.insert(node.source_attribute());
        }
        return Rebuild(plan, node.child(), std::move(value_needed),
                       std::move(present_needed), narrow_ok);
      }

      case PlanKind::kInvoke:
        return TransformInvoke(static_cast<const InvokeNode&>(*plan), plan,
                               std::move(value_needed),
                               std::move(present_needed), narrow_ok);

      case PlanKind::kAggregate: {
        const auto& node = static_cast<const AggregateNode&>(*plan);
        std::set<std::string> child_needed(node.group_by().begin(),
                                           node.group_by().end());
        for (const AggregateSpec& spec : node.aggregates()) {
          if (!spec.input.empty()) child_needed.insert(spec.input);
        }
        // Aggregates observe cardinality (count/sum over the group), so
        // tuple-merging below must stay blocked.
        return Rebuild(plan, node.child(), child_needed, child_needed,
                       /*narrow_ok=*/false);
      }

      case PlanKind::kStreaming: {
        // S[...] diffs successive child relations tuple-by-tuple: every
        // attribute participates and merges change the deltas.
        const auto& node = static_cast<const StreamingNode&>(*plan);
        SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child_schema,
                                SchemaOf(node.child()));
        const std::vector<std::string> names = child_schema->AllNames();
        const std::set<std::string> all(names.begin(), names.end());
        return Rebuild(plan, node.child(), all, all, /*narrow_ok=*/false);
      }

      case PlanKind::kUnion:
      case PlanKind::kIntersect:
      case PlanKind::kDifference: {
        // Set operators require identical schemas on both sides and
        // compare whole tuples: both operands are barriers.
        std::vector<PlanPtr> children;
        for (const PlanPtr& child : plan->children()) {
          SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child_schema,
                                  SchemaOf(child));
          const std::vector<std::string> names = child_schema->AllNames();
          const std::set<std::string> all(names.begin(), names.end());
          SERENA_ASSIGN_OR_RETURN(
              PlanPtr transformed,
              Transform(child, all, all, /*narrow_ok=*/false));
          children.push_back(std::move(transformed));
        }
        return ReplaceChildren(plan, std::move(children));
      }

      case PlanKind::kJoin: {
        const auto& node = static_cast<const JoinNode&>(*plan);
        SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr left, SchemaOf(node.left()));
        SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr right,
                                SchemaOf(node.right()));
        // The natural join matches on shared real attributes — their
        // values are implicitly read. Presence on either side must not
        // change relative to the other side, or the join condition (and
        // the merged schema) silently shifts: each side must keep every
        // attribute the other side also carries.
        std::set<std::string> left_value = value_needed;
        std::set<std::string> right_value = std::move(value_needed);
        std::set<std::string> left_present = present_needed;
        std::set<std::string> right_present = std::move(present_needed);
        for (const std::string& name : left->RealNames()) {
          if (right->IsReal(name)) {
            left_value.insert(name);
            right_value.insert(name);
          }
        }
        for (const std::string& name : right->AllNames()) {
          if (left->Contains(name)) {
            left_present.insert(name);
            right_present.insert(name);
          }
        }
        SERENA_ASSIGN_OR_RETURN(
            PlanPtr new_left,
            Transform(node.left(), std::move(left_value),
                      std::move(left_present), narrow_ok));
        SERENA_ASSIGN_OR_RETURN(
            PlanPtr new_right,
            Transform(node.right(), std::move(right_value),
                      std::move(right_present), narrow_ok));
        return ReplaceChildren(
            plan, {std::move(new_left), std::move(new_right)});
      }
    }
    return Status::Internal("unknown plan kind");
  }

 private:
  /// Transforms the only child and rebuilds the node around it.
  Result<PlanPtr> Rebuild(const PlanPtr& plan, const PlanPtr& child,
                          std::set<std::string> value_needed,
                          std::set<std::string> present_needed,
                          bool narrow_ok) {
    SERENA_ASSIGN_OR_RETURN(
        PlanPtr transformed,
        Transform(child, std::move(value_needed), std::move(present_needed),
                  narrow_ok));
    return ReplaceChildren(plan, {std::move(transformed)});
  }

  Result<PlanPtr> TransformProject(const ProjectNode& node,
                                   const PlanPtr& plan,
                                   const std::set<std::string>& value_needed,
                                   const std::set<std::string>& present_needed,
                                   bool narrow_ok) {
    std::vector<std::string> kept;
    std::vector<std::string> dropped;
    for (const std::string& attr : node.attributes()) {
      if (value_needed.count(attr) > 0 || present_needed.count(attr) > 0) {
        kept.push_back(attr);
      } else {
        dropped.push_back(attr);
      }
    }
    std::vector<std::string> attributes = node.attributes();
    if (narrow_ok && !dropped.empty() && !kept.empty()) {
      steps_.push_back(SemanticRewriteStep{
          "narrow-projection", LabelOf(node),
          "attributes " + RenderSet(dropped) +
              " are neither read nor required by any operator above, and "
              "every operator between this projection and the next "
              "duplicate-collapsing point is insensitive to the merge "
              "(relations are sets): the narrowed projection yields the "
              "same final result and action set (Def. 9)"});
      attributes = std::move(kept);
    }

    // The child only has to satisfy what the (possibly narrowed)
    // projection still lists; π itself collapses duplicates, so deeper
    // narrowing becomes safe again.
    const std::set<std::string> child_needed(attributes.begin(),
                                             attributes.end());
    SERENA_ASSIGN_OR_RETURN(
        PlanPtr child,
        Transform(node.child(), child_needed, child_needed,
                  /*narrow_ok=*/true));

    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child_schema, SchemaOf(child));
    if (attributes == child_schema->AllNames()) {
      steps_.push_back(SemanticRewriteStep{
          "drop-identity-projection", LabelOf(node),
          "the projection lists its input schema in order; over sets "
          "π is then the identity"});
      return child;
    }
    if (attributes == node.attributes()) {
      return ReplaceChildren(plan, {std::move(child)});
    }
    return Project(std::move(child), std::move(attributes));
  }

  Result<PlanPtr> TransformInvoke(const InvokeNode& node, const PlanPtr& plan,
                                  std::set<std::string> value_needed,
                                  std::set<std::string> present_needed,
                                  bool narrow_ok) {
    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr child_schema,
                            SchemaOf(node.child()));
    SERENA_ASSIGN_OR_RETURN(BindingPattern bp,
                            node.ResolveBindingPattern(*child_schema));
    std::vector<std::string> outputs;
    bool output_used = false;
    for (const Attribute& out : bp.prototype().output().attributes()) {
      outputs.push_back(out.name);
      if (value_needed.count(out.name) > 0) output_used = true;
    }

    // The SER021 fact as a rewrite: a passive invocation whose outputs
    // are all dropped contributes nothing — no values (unobserved), no
    // actions (Def. 8: passive prototypes have empty action sets), and
    // no cardinality change (β extends tuples 1:1, deterministically
    // per instant, §3.2). Its physical service calls are pure waste.
    if (!bp.active() && !output_used) {
      steps_.push_back(SemanticRewriteStep{
          "drop-dead-invoke", LabelOf(node),
          "prototype '" + bp.prototype().name() +
              "' is passive (empty action set, Def. 8), extends each tuple "
              "1:1 and deterministically (§3.2), and its outputs " +
              RenderSet(outputs) +
              " are dropped by every operator above: removing it leaves "
              "the result and action set unchanged (Def. 9) while saving "
              "one service call per input tuple per tick (assumes the "
              "calls would have succeeded)"});
      // The invocation's inputs are no longer needed either — deeper
      // projections may now narrow them away too.
      return Transform(node.child(), std::move(value_needed),
                       std::move(present_needed), narrow_ok);
    }

    for (const std::string& out : outputs) {
      value_needed.erase(out);
      // β realizes *existing* virtual attributes: they must stay
      // present below even though their (virtual) values are not read.
      present_needed.insert(out);
    }
    for (const Attribute& in : bp.prototype().input().attributes()) {
      value_needed.insert(in.name);
      present_needed.insert(in.name);
    }
    value_needed.insert(bp.service_attribute());
    present_needed.insert(bp.service_attribute());
    return Rebuild(plan, node.child(), std::move(value_needed),
                   std::move(present_needed), narrow_ok);
  }

  Result<ExtendedSchemaPtr> SchemaOf(const PlanPtr& plan) {
    const auto it = schemas_.find(plan.get());
    if (it != schemas_.end()) return it->second;
    SERENA_ASSIGN_OR_RETURN(ExtendedSchemaPtr schema,
                            plan->InferSchema(env_, streams_));
    schemas_.emplace(plan.get(), schema);
    return schema;
  }

  const Environment& env_;
  const StreamStore* streams_;
  std::vector<SemanticRewriteStep> steps_;
  std::unordered_map<const PlanNode*, ExtendedSchemaPtr> schemas_;
};

}  // namespace

Result<SemanticRewriteResult> SemanticOptimize(const PlanPtr& plan,
                                               const Environment& env,
                                               const StreamStore* streams) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  SemanticRewriteResult result;
  result.plan = plan;

  // Semantic facts are only trustworthy on well-formed plans: a plan
  // whose schema does not infer is returned untouched (the analyzer
  // gate, not the optimizer, owns rejecting it).
  auto original_schema = plan->InferSchema(env, streams);
  if (!original_schema.ok()) return result;

  SemanticRewriter rewriter(env, streams);
  const std::vector<std::string> root_names =
      (*original_schema)->AllNames();
  const std::set<std::string> root_needed(root_names.begin(),
                                          root_names.end());
  SERENA_ASSIGN_OR_RETURN(
      PlanPtr transformed,
      rewriter.Transform(plan, root_needed, root_needed, /*narrow_ok=*/true));
  result.steps = std::move(rewriter.steps());
  if (result.steps.empty() || transformed == plan) {
    result.steps.clear();
    return result;
  }

  // Re-verification guard: the rewritten plan must produce the exact
  // root schema and re-analyze without errors, else every step is
  // discarded. This turns any hole in the needed-set analysis into a
  // no-op instead of a wrong answer.
  bool sound = false;
  auto new_schema = transformed->InferSchema(env, streams);
  if (new_schema.ok() && (*new_schema)->SameAttributes(**original_schema)) {
    AnalyzerOptions reanalyze;
    reanalyze.include_warnings = false;
    auto diagnostics = AnalyzePlan(transformed, env, streams, reanalyze);
    sound = diagnostics.ok() && IsValid(*diagnostics);
  }
  if (!sound) {
    Count("serena.rewrite.semantic.reverted");
    result.reverted = true;
    return result;
  }

  for (const SemanticRewriteStep& step : result.steps) {
    if (step.rule == "drop-dead-invoke") {
      Count("serena.rewrite.semantic.dead_invokes");
    } else if (step.rule == "narrow-projection") {
      Count("serena.rewrite.semantic.narrowed_projections");
    } else if (step.rule == "drop-identity-projection") {
      Count("serena.rewrite.semantic.identity_projections");
    }
  }
  result.plan = std::move(transformed);
  return result;
}

std::string RenderSemanticSteps(
    const std::vector<SemanticRewriteStep>& steps) {
  std::string out;
  for (const SemanticRewriteStep& step : steps) {
    out += step.rule;
    out += " @ ";
    out += step.node;
    out += ": ";
    out += step.proof;
    out += '\n';
  }
  return out;
}

}  // namespace serena
