#include "rewrite/rules.h"

#include <algorithm>
#include <set>

namespace serena {

namespace {

/// Attribute names referenced by a selection formula.
std::set<std::string> AttrsOf(const FormulaPtr& formula) {
  std::set<std::string> attrs;
  formula->CollectAttributes(&attrs);
  return attrs;
}

bool ContainsAll(const std::vector<std::string>& haystack,
                 const std::vector<std::string>& needles) {
  for (const std::string& needle : needles) {
    if (std::find(haystack.begin(), haystack.end(), needle) ==
        haystack.end()) {
      return false;
    }
  }
  return true;
}

/// Shared engine for the selection-pushdown rules: splits the selection's
/// formula into conjuncts, pushes those satisfying `can_push` below the
/// child operator (rebuilt by `wrap`), and keeps the rest above. Returns
/// nullptr when no conjunct is pushable.
template <typename CanPush, typename Wrap>
Result<PlanPtr> PushConjuncts(const SelectNode& select, const PlanPtr& inner,
                              CanPush can_push, Wrap wrap) {
  std::vector<FormulaPtr> pushable;
  std::vector<FormulaPtr> rest;
  for (const FormulaPtr& conjunct : SplitConjuncts(select.formula())) {
    if (can_push(conjunct)) {
      pushable.push_back(conjunct);
    } else {
      rest.push_back(conjunct);
    }
  }
  if (pushable.empty()) return PlanPtr(nullptr);
  PlanPtr pushed = Select(inner, CombineConjuncts(pushable));
  SERENA_ASSIGN_OR_RETURN(PlanPtr wrapped, wrap(std::move(pushed)));
  if (rest.empty()) return wrapped;
  return Select(std::move(wrapped), CombineConjuncts(rest));
}

// ---------------------------------------------------------------------------

class MergeSelectionsRule final : public RewriteRule {
 public:
  const char* name() const override { return "merge-selections"; }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext&) const override {
    if (plan->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* outer = static_cast<const SelectNode*>(plan.get());
    if (outer->child()->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* inner = static_cast<const SelectNode*>(outer->child().get());
    return Select(inner->child(),
                  Formula::And(outer->formula(), inner->formula()));
  }
};

class CollapseProjectionsRule final : public RewriteRule {
 public:
  const char* name() const override { return "collapse-projections"; }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext&) const override {
    if (plan->kind() != PlanKind::kProject) return PlanPtr(nullptr);
    const auto* outer = static_cast<const ProjectNode*>(plan.get());
    if (outer->child()->kind() != PlanKind::kProject) return PlanPtr(nullptr);
    const auto* inner = static_cast<const ProjectNode*>(outer->child().get());
    // Validity of the original plan implies L1 ⊆ L2.
    if (!ContainsAll(inner->attributes(), outer->attributes())) {
      return PlanPtr(nullptr);
    }
    return Project(inner->child(), outer->attributes());
  }
};

class PushSelectionBelowAssignRule final : public RewriteRule {
 public:
  const char* name() const override {
    return "push-selection-below-assign";
  }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext&) const override {
    if (plan->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* select = static_cast<const SelectNode*>(plan.get());
    if (select->child()->kind() != PlanKind::kAssign) return PlanPtr(nullptr);
    const auto* assign = static_cast<const AssignNode*>(select->child().get());
    // Table 5 side condition: the realized attribute must not occur in the
    // pushed conjunct.
    return PushConjuncts(
        *select, assign->child(),
        [&](const FormulaPtr& conjunct) {
          return AttrsOf(conjunct).count(assign->target()) == 0;
        },
        [&](PlanPtr pushed) -> Result<PlanPtr> {
          if (assign->from_parameter()) {
            return AssignParam(std::move(pushed), assign->target(),
                               assign->parameter());
          }
          return assign->from_attribute()
                     ? Assign(std::move(pushed), assign->target(),
                              assign->source_attribute())
                     : Assign(std::move(pushed), assign->target(),
                              assign->constant());
        });
  }
};

class PushSelectionBelowInvokeRule final : public RewriteRule {
 public:
  const char* name() const override {
    return "push-selection-below-invoke";
  }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext& ctx) const override {
    if (plan->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* select = static_cast<const SelectNode*>(plan.get());
    if (select->child()->kind() != PlanKind::kInvoke) return PlanPtr(nullptr);
    const auto* invoke = static_cast<const InvokeNode*>(select->child().get());
    if (ctx.env == nullptr) return PlanPtr(nullptr);

    // Resolve the binding pattern to check activity and output attributes.
    auto child_schema = invoke->child()->InferSchema(*ctx.env, ctx.streams);
    if (!child_schema.ok()) return PlanPtr(nullptr);
    auto bp = invoke->ResolveBindingPattern(**child_schema);
    if (!bp.ok()) return PlanPtr(nullptr);

    // §3.3: active binding patterns block reordering — pushing the
    // selection below the invocation would shrink the action set.
    if (bp->active()) return PlanPtr(nullptr);

    return PushConjuncts(
        *select, invoke->child(),
        [&](const FormulaPtr& conjunct) {
          const std::set<std::string> attrs = AttrsOf(conjunct);
          // The conjunct must not use the invocation's outputs and must
          // remain valid below (all referenced attributes already real).
          for (const Attribute& out :
               bp->prototype().output().attributes()) {
            if (attrs.count(out.name) > 0) return false;
          }
          for (const std::string& attr : attrs) {
            if (!(*child_schema)->IsReal(attr)) return false;
          }
          return true;
        },
        [&](PlanPtr pushed) -> Result<PlanPtr> {
          return Invoke(std::move(pushed), invoke->prototype(),
                        invoke->service_attribute());
        });
  }
};

class PushSelectionBelowJoinRule final : public RewriteRule {
 public:
  const char* name() const override { return "push-selection-below-join"; }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext& ctx) const override {
    if (plan->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* select = static_cast<const SelectNode*>(plan.get());
    if (select->child()->kind() != PlanKind::kJoin) return PlanPtr(nullptr);
    const auto* join = static_cast<const JoinNode*>(select->child().get());
    if (ctx.env == nullptr) return PlanPtr(nullptr);

    auto left_schema = join->left()->InferSchema(*ctx.env, ctx.streams);
    auto right_schema = join->right()->InferSchema(*ctx.env, ctx.streams);
    if (!left_schema.ok() || !right_schema.ok()) return PlanPtr(nullptr);

    auto covered_by = [](const ExtendedSchemaPtr& schema,
                         const FormulaPtr& conjunct) {
      std::set<std::string> attrs;
      conjunct->CollectAttributes(&attrs);
      for (const std::string& attr : attrs) {
        if (!schema->IsReal(attr)) return false;
      }
      return true;
    };

    // Partition conjuncts three ways: left side, right side, keep above.
    std::vector<FormulaPtr> into_left;
    std::vector<FormulaPtr> into_right;
    std::vector<FormulaPtr> rest;
    for (const FormulaPtr& conjunct : SplitConjuncts(select->formula())) {
      if (covered_by(*left_schema, conjunct)) {
        into_left.push_back(conjunct);
      } else if (covered_by(*right_schema, conjunct)) {
        into_right.push_back(conjunct);
      } else {
        rest.push_back(conjunct);
      }
    }
    if (into_left.empty() && into_right.empty()) return PlanPtr(nullptr);
    PlanPtr left = join->left();
    PlanPtr right = join->right();
    if (!into_left.empty()) {
      left = Select(std::move(left), CombineConjuncts(into_left));
    }
    if (!into_right.empty()) {
      right = Select(std::move(right), CombineConjuncts(into_right));
    }
    PlanPtr rebuilt = Join(std::move(left), std::move(right));
    if (rest.empty()) return rebuilt;
    return Select(std::move(rebuilt), CombineConjuncts(rest));
  }
};

class PushProjectionBelowAssignRule final : public RewriteRule {
 public:
  const char* name() const override {
    return "push-projection-below-assign";
  }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext&) const override {
    if (plan->kind() != PlanKind::kProject) return PlanPtr(nullptr);
    const auto* project = static_cast<const ProjectNode*>(plan.get());
    if (project->child()->kind() != PlanKind::kAssign) {
      return PlanPtr(nullptr);
    }
    const auto* assign =
        static_cast<const AssignNode*>(project->child().get());
    // Table 5 side condition: A (and B, when assigning from an attribute)
    // must be kept by the projection.
    const std::vector<std::string>& kept = project->attributes();
    if (!ContainsAll(kept, {assign->target()})) return PlanPtr(nullptr);
    if (assign->from_attribute() &&
        !ContainsAll(kept, {assign->source_attribute()})) {
      return PlanPtr(nullptr);
    }
    PlanPtr pushed = Project(assign->child(), kept);
    if (assign->from_parameter()) {
      return AssignParam(std::move(pushed), assign->target(),
                         assign->parameter());
    }
    return assign->from_attribute()
               ? Assign(std::move(pushed), assign->target(),
                        assign->source_attribute())
               : Assign(std::move(pushed), assign->target(),
                        assign->constant());
  }
};

class PushProjectionBelowInvokeRule final : public RewriteRule {
 public:
  const char* name() const override {
    return "push-projection-below-invoke";
  }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext& ctx) const override {
    if (plan->kind() != PlanKind::kProject) return PlanPtr(nullptr);
    const auto* project = static_cast<const ProjectNode*>(plan.get());
    if (project->child()->kind() != PlanKind::kInvoke) {
      return PlanPtr(nullptr);
    }
    const auto* invoke =
        static_cast<const InvokeNode*>(project->child().get());
    if (ctx.env == nullptr) return PlanPtr(nullptr);

    auto child_schema = invoke->child()->InferSchema(*ctx.env, ctx.streams);
    if (!child_schema.ok()) return PlanPtr(nullptr);
    auto bp = invoke->ResolveBindingPattern(**child_schema);
    if (!bp.ok()) return PlanPtr(nullptr);

    // All attributes the pattern touches must be preserved by π.
    const std::vector<std::string>& kept = project->attributes();
    if (!ContainsAll(kept, {bp->service_attribute()})) {
      return PlanPtr(nullptr);
    }
    if (!ContainsAll(kept, bp->prototype().input().Names())) {
      return PlanPtr(nullptr);
    }
    if (!ContainsAll(kept, bp->prototype().output().Names())) {
      return PlanPtr(nullptr);
    }
    return Invoke(Project(invoke->child(), kept), invoke->prototype(),
                  invoke->service_attribute());
  }
};

class PushSelectionBelowRenameRule final : public RewriteRule {
 public:
  const char* name() const override {
    return "push-selection-below-rename";
  }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext&) const override {
    if (plan->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* select = static_cast<const SelectNode*>(plan.get());
    if (select->child()->kind() != PlanKind::kRename) return PlanPtr(nullptr);
    const auto* rename = static_cast<const RenameNode*>(select->child().get());
    // F referencing the *old* name would be invalid above the rename, so
    // only the new name can occur; translate it back for the pushed copy.
    FormulaPtr translated =
        select->formula()->WithRenamedAttribute(rename->to(), rename->from());
    return Rename(Select(rename->child(), std::move(translated)),
                  rename->from(), rename->to());
  }
};

class PushSelectionBelowSetOpRule final : public RewriteRule {
 public:
  const char* name() const override {
    return "push-selection-below-set-op";
  }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext&) const override {
    if (plan->kind() != PlanKind::kSelect) return PlanPtr(nullptr);
    const auto* select = static_cast<const SelectNode*>(plan.get());
    const PlanKind child_kind = select->child()->kind();
    if (child_kind != PlanKind::kUnion &&
        child_kind != PlanKind::kIntersect &&
        child_kind != PlanKind::kDifference) {
      return PlanPtr(nullptr);
    }
    const auto* set_op = static_cast<const SetOpNode*>(select->child().get());
    PlanPtr left = Select(set_op->left(), select->formula());
    switch (child_kind) {
      case PlanKind::kUnion:
        // σ distributes over both branches of ∪.
        return UnionOf(std::move(left),
                       Select(set_op->right(), select->formula()));
      case PlanKind::kIntersect:
        // σ(r1 ∩ r2) = σ(r1) ∩ r2 — filtering one side suffices.
        return IntersectOf(std::move(left), set_op->right());
      default:
        // σ(r1 − r2) = σ(r1) − r2.
        return DifferenceOf(std::move(left), set_op->right());
    }
  }
};

class PushAssignBelowJoinRule final : public RewriteRule {
 public:
  const char* name() const override { return "push-assign-below-join"; }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext& ctx) const override {
    if (plan->kind() != PlanKind::kAssign) return PlanPtr(nullptr);
    const auto* assign = static_cast<const AssignNode*>(plan.get());
    if (assign->child()->kind() != PlanKind::kJoin) return PlanPtr(nullptr);
    if (ctx.env == nullptr) return PlanPtr(nullptr);
    const auto* join = static_cast<const JoinNode*>(assign->child().get());

    auto left_schema = join->left()->InferSchema(*ctx.env, ctx.streams);
    auto right_schema = join->right()->InferSchema(*ctx.env, ctx.streams);
    if (!left_schema.ok() || !right_schema.ok()) return PlanPtr(nullptr);

    // Table 5 side conditions: A lives (virtually) in R1 and must not be
    // realized by R2's side of the join; an attribute source must be a
    // real attribute of R1.
    auto pushable_into = [&](const ExtendedSchemaPtr& target,
                             const ExtendedSchemaPtr& other) {
      if (!target->IsVirtual(assign->target())) return false;
      if (other->IsReal(assign->target())) return false;
      if (assign->from_attribute() &&
          !target->IsReal(assign->source_attribute())) {
        return false;
      }
      return true;
    };
    auto rebuild = [&](PlanPtr child) -> PlanPtr {
      if (assign->from_parameter()) {
        return AssignParam(std::move(child), assign->target(),
                           assign->parameter());
      }
      return assign->from_attribute()
                 ? Assign(std::move(child), assign->target(),
                          assign->source_attribute())
                 : Assign(std::move(child), assign->target(),
                          assign->constant());
    };
    if (pushable_into(*left_schema, *right_schema)) {
      return Join(rebuild(join->left()), join->right());
    }
    if (pushable_into(*right_schema, *left_schema)) {
      return Join(join->left(), rebuild(join->right()));
    }
    return PlanPtr(nullptr);
  }
};

class DeferInvokePastJoinRule final : public RewriteRule {
 public:
  const char* name() const override { return "defer-invoke-past-join"; }

  Result<PlanPtr> Apply(const PlanPtr& plan,
                        const RewriteContext& ctx) const override {
    if (plan->kind() != PlanKind::kJoin) return PlanPtr(nullptr);
    if (ctx.env == nullptr) return PlanPtr(nullptr);
    const auto* join = static_cast<const JoinNode*>(plan.get());

    // Lazy realization: lift a passive β from either join input above the
    // join, so the join prunes tuples before services are contacted.
    for (const bool invoke_on_left : {true, false}) {
      const PlanPtr& side = invoke_on_left ? join->left() : join->right();
      const PlanPtr& other = invoke_on_left ? join->right() : join->left();
      if (side->kind() != PlanKind::kInvoke) continue;
      const auto* invoke = static_cast<const InvokeNode*>(side.get());

      auto child_schema = invoke->child()->InferSchema(*ctx.env, ctx.streams);
      auto other_schema = other->InferSchema(*ctx.env, ctx.streams);
      if (!child_schema.ok() || !other_schema.ok()) continue;
      auto bp = invoke->ResolveBindingPattern(**child_schema);
      if (!bp.ok()) continue;
      // Active invocations never move (§3.3): the join could shrink the
      // action set.
      if (bp->active()) continue;
      // The realized outputs must not interact with the other side at
      // all — neither as join attributes nor by colliding names.
      bool output_clash = false;
      for (const Attribute& out : bp->prototype().output().attributes()) {
        if ((*other_schema)->Contains(out.name)) output_clash = true;
      }
      if (output_clash) continue;

      PlanPtr joined = invoke_on_left ? Join(invoke->child(), other)
                                      : Join(other, invoke->child());
      PlanPtr lifted = Invoke(std::move(joined), invoke->prototype(),
                              invoke->service_attribute());
      // The pattern must still resolve unambiguously above the join (the
      // other side could contribute a second pattern for the same
      // prototype).
      if (!lifted->InferSchema(*ctx.env, ctx.streams).ok()) continue;
      return lifted;
    }
    return PlanPtr(nullptr);
  }
};

}  // namespace

RewriteRulePtr MakeMergeSelectionsRule() {
  return std::make_shared<MergeSelectionsRule>();
}
RewriteRulePtr MakeCollapseProjectionsRule() {
  return std::make_shared<CollapseProjectionsRule>();
}
RewriteRulePtr MakePushSelectionBelowAssignRule() {
  return std::make_shared<PushSelectionBelowAssignRule>();
}
RewriteRulePtr MakePushSelectionBelowInvokeRule() {
  return std::make_shared<PushSelectionBelowInvokeRule>();
}
RewriteRulePtr MakePushSelectionBelowJoinRule() {
  return std::make_shared<PushSelectionBelowJoinRule>();
}
RewriteRulePtr MakePushProjectionBelowAssignRule() {
  return std::make_shared<PushProjectionBelowAssignRule>();
}
RewriteRulePtr MakePushProjectionBelowInvokeRule() {
  return std::make_shared<PushProjectionBelowInvokeRule>();
}
RewriteRulePtr MakePushSelectionBelowRenameRule() {
  return std::make_shared<PushSelectionBelowRenameRule>();
}
RewriteRulePtr MakePushSelectionBelowSetOpRule() {
  return std::make_shared<PushSelectionBelowSetOpRule>();
}
RewriteRulePtr MakePushAssignBelowJoinRule() {
  return std::make_shared<PushAssignBelowJoinRule>();
}
RewriteRulePtr MakeDeferInvokePastJoinRule() {
  return std::make_shared<DeferInvokePastJoinRule>();
}

std::vector<RewriteRulePtr> DefaultRuleSet() {
  return {
      MakeMergeSelectionsRule(),
      MakeCollapseProjectionsRule(),
      MakePushSelectionBelowAssignRule(),
      MakePushSelectionBelowInvokeRule(),
      MakePushSelectionBelowJoinRule(),
      MakePushSelectionBelowRenameRule(),
      MakePushSelectionBelowSetOpRule(),
      MakePushAssignBelowJoinRule(),
      MakeDeferInvokePastJoinRule(),
      MakePushProjectionBelowAssignRule(),
      MakePushProjectionBelowInvokeRule(),
  };
}

}  // namespace serena
