#ifndef SERENA_REWRITE_EQUIVALENCE_H_
#define SERENA_REWRITE_EQUIVALENCE_H_

#include <string>

#include "algebra/plan.h"

namespace serena {

/// Outcome of an empirical Def. 9 equivalence check at one instant.
struct EquivalenceReport {
  bool same_result = false;
  bool same_actions = false;

  /// Def. 9: q1 ≡ q2 iff results AND action sets coincide.
  bool equivalent() const { return same_result && same_actions; }

  std::string ToString() const;
};

/// Evaluates both queries against the same environment at the same instant
/// τ and compares result relations and action sets (Def. 9).
///
/// Note: this *executes* both queries, so active invocations really
/// happen (twice). Use it on test doubles / simulated services — which is
/// exactly what the property-test suite and the benchmarks do.
Result<EquivalenceReport> CheckEquivalence(const PlanPtr& q1,
                                           const PlanPtr& q2,
                                           Environment* env,
                                           StreamStore* streams,
                                           Timestamp instant);

}  // namespace serena

#endif  // SERENA_REWRITE_EQUIVALENCE_H_
