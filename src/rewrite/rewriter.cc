#include "rewrite/rewriter.h"

namespace serena {

namespace {

constexpr int kMaxPasses = 32;

}  // namespace

Rewriter::Rewriter(const Environment* env, const StreamStore* streams,
                   std::vector<RewriteRulePtr> rules)
    : rules_(std::move(rules)) {
  ctx_.env = env;
  ctx_.streams = streams;
}

Result<PlanPtr> Rewriter::RewriteOnce(const PlanPtr& plan,
                                      bool* changed) const {
  // Rewrite children first (bottom-up).
  std::vector<PlanPtr> children = plan->children();
  for (PlanPtr& child : children) {
    SERENA_ASSIGN_OR_RETURN(child, RewriteOnce(child, changed));
  }
  SERENA_ASSIGN_OR_RETURN(PlanPtr current,
                          ReplaceChildren(plan, std::move(children)));

  // Then try each rule at this node until none fires.
  bool fired = true;
  while (fired) {
    fired = false;
    for (const RewriteRulePtr& rule : rules_) {
      SERENA_ASSIGN_OR_RETURN(PlanPtr rewritten, rule->Apply(current, ctx_));
      if (rewritten != nullptr) {
        current = std::move(rewritten);
        fired = true;
        *changed = true;
        break;
      }
    }
  }
  return current;
}

Result<PlanPtr> Rewriter::Optimize(const PlanPtr& plan) const {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  PlanPtr current = plan;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    SERENA_ASSIGN_OR_RETURN(current, RewriteOnce(current, &changed));
    if (!changed) break;
  }
  if (current == plan) return current;

  // Cost guard: never return a plan the model considers worse.
  if (ctx_.env != nullptr) {
    auto before = EstimateCost(plan, *ctx_.env, ctx_.streams);
    auto after = EstimateCost(current, *ctx_.env, ctx_.streams);
    if (before.ok() && after.ok() && after->Total() > before->Total()) {
      return plan;
    }
  }
  return current;
}

}  // namespace serena
