#include "rewrite/rewriter.h"

namespace serena {

namespace {

constexpr int kMaxPasses = 32;

}  // namespace

Rewriter::Rewriter(const Environment* env, const StreamStore* streams,
                   std::vector<RewriteRulePtr> rules)
    : rules_(std::move(rules)) {
  ctx_.env = env;
  ctx_.streams = streams;
}

Result<PlanPtr> Rewriter::WithChildren(const PlanPtr& plan,
                                       std::vector<PlanPtr> children) const {
  const std::vector<PlanPtr> old_children = plan->children();
  bool same = old_children.size() == children.size();
  for (std::size_t i = 0; same && i < children.size(); ++i) {
    same = old_children[i] == children[i];
  }
  if (same) return plan;

  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kWindow:
      return plan;
    case PlanKind::kUnion:
      return UnionOf(children[0], children[1]);
    case PlanKind::kIntersect:
      return IntersectOf(children[0], children[1]);
    case PlanKind::kDifference:
      return DifferenceOf(children[0], children[1]);
    case PlanKind::kJoin:
      return Join(children[0], children[1]);
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      return Project(children[0], node->attributes());
    }
    case PlanKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(plan.get());
      return Select(children[0], node->formula());
    }
    case PlanKind::kRename: {
      const auto* node = static_cast<const RenameNode*>(plan.get());
      return Rename(children[0], node->from(), node->to());
    }
    case PlanKind::kAssign: {
      const auto* node = static_cast<const AssignNode*>(plan.get());
      if (node->from_parameter()) {
        return AssignParam(children[0], node->target(), node->parameter());
      }
      return node->from_attribute()
                 ? Assign(children[0], node->target(),
                          node->source_attribute())
                 : Assign(children[0], node->target(), node->constant());
    }
    case PlanKind::kInvoke: {
      const auto* node = static_cast<const InvokeNode*>(plan.get());
      return Invoke(children[0], node->prototype(),
                    node->service_attribute());
    }
    case PlanKind::kAggregate: {
      const auto* node = static_cast<const AggregateNode*>(plan.get());
      return Aggregate(children[0], node->group_by(), node->aggregates());
    }
    case PlanKind::kStreaming: {
      const auto* node = static_cast<const StreamingNode*>(plan.get());
      return Streaming(children[0], node->type());
    }
  }
  return Status::Internal("unknown plan kind");
}

Result<PlanPtr> Rewriter::RewriteOnce(const PlanPtr& plan,
                                      bool* changed) const {
  // Rewrite children first (bottom-up).
  std::vector<PlanPtr> children = plan->children();
  for (PlanPtr& child : children) {
    SERENA_ASSIGN_OR_RETURN(child, RewriteOnce(child, changed));
  }
  SERENA_ASSIGN_OR_RETURN(PlanPtr current,
                          WithChildren(plan, std::move(children)));

  // Then try each rule at this node until none fires.
  bool fired = true;
  while (fired) {
    fired = false;
    for (const RewriteRulePtr& rule : rules_) {
      SERENA_ASSIGN_OR_RETURN(PlanPtr rewritten, rule->Apply(current, ctx_));
      if (rewritten != nullptr) {
        current = std::move(rewritten);
        fired = true;
        *changed = true;
        break;
      }
    }
  }
  return current;
}

Result<PlanPtr> Rewriter::Optimize(const PlanPtr& plan) const {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  PlanPtr current = plan;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    SERENA_ASSIGN_OR_RETURN(current, RewriteOnce(current, &changed));
    if (!changed) break;
  }
  if (current == plan) return current;

  // Cost guard: never return a plan the model considers worse.
  if (ctx_.env != nullptr) {
    auto before = EstimateCost(plan, *ctx_.env, ctx_.streams);
    auto after = EstimateCost(current, *ctx_.env, ctx_.streams);
    if (before.ok() && after.ok() && after->Total() > before->Total()) {
      return plan;
    }
  }
  return current;
}

}  // namespace serena
