#ifndef SERENA_REWRITE_REWRITER_H_
#define SERENA_REWRITE_REWRITER_H_

#include <vector>

#include "rewrite/cost.h"
#include "rewrite/rules.h"

namespace serena {

/// The logical optimizer for Serena queries (§3.3).
///
/// Applies the rewriting rules bottom-up until fixpoint (with an iteration
/// bound), then verifies with the cost model that the rewritten plan is no
/// worse than the original; otherwise the original is returned. Rules
/// already encode the paper's safety barrier: operators never move across
/// an invocation of an *active* binding pattern.
class Rewriter {
 public:
  Rewriter(const Environment* env, const StreamStore* streams,
           std::vector<RewriteRulePtr> rules = DefaultRuleSet());

  /// Rewrites `plan` to an equivalent (Def. 9) plan of lower or equal
  /// estimated cost.
  Result<PlanPtr> Optimize(const PlanPtr& plan) const;

  /// One full bottom-up pass; `*changed` reports whether any rule fired.
  Result<PlanPtr> RewriteOnce(const PlanPtr& plan, bool* changed) const;

  const std::vector<RewriteRulePtr>& rules() const { return rules_; }

 private:
  RewriteContext ctx_;
  std::vector<RewriteRulePtr> rules_;
};

}  // namespace serena

#endif  // SERENA_REWRITE_REWRITER_H_
