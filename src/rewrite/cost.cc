#include "rewrite/cost.h"

namespace serena {

namespace {

/// Crude per-formula selectivity: conjunctions multiply, disjunctions
/// dampen, comparisons use the configured constants. We only look at the
/// rendered form to keep the estimator independent of formula internals.
double FormulaSelectivity(const FormulaPtr& formula,
                          const CostModelOptions& options) {
  const std::string repr = formula->ToString();
  // Count comparison operators as a proxy for conjunct count.
  double selectivity = 1.0;
  bool any = false;
  for (std::size_t i = 0; i < repr.size(); ++i) {
    if (repr[i] == '=' && (i == 0 || (repr[i - 1] != '!' &&
                                      repr[i - 1] != '<' &&
                                      repr[i - 1] != '>'))) {
      selectivity *= options.equality_selectivity;
      any = true;
    } else if (repr[i] == '<' || repr[i] == '>') {
      selectivity *= options.default_selectivity;
      any = true;
    }
  }
  return any ? selectivity : options.default_selectivity;
}

}  // namespace

Result<PlanCost> EstimateCost(const PlanPtr& plan, const Environment& env,
                              const StreamStore* streams,
                              const CostModelOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  PlanCost cost;
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto* node = static_cast<const ScanNode*>(plan.get());
      SERENA_ASSIGN_OR_RETURN(const XRelation* relation,
                              env.GetRelation(node->relation()));
      cost.cardinality = static_cast<double>(relation->size());
      cost.tuples = cost.cardinality;
      return cost;
    }
    case PlanKind::kWindow: {
      cost.cardinality = options.window_cardinality;
      cost.tuples = cost.cardinality;
      return cost;
    }
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference:
    case PlanKind::kJoin: {
      const auto children = plan->children();
      SERENA_ASSIGN_OR_RETURN(
          PlanCost left, EstimateCost(children[0], env, streams, options));
      SERENA_ASSIGN_OR_RETURN(
          PlanCost right, EstimateCost(children[1], env, streams, options));
      cost.invocations = left.invocations + right.invocations;
      cost.active_invocations =
          left.active_invocations + right.active_invocations;
      switch (plan->kind()) {
        case PlanKind::kUnion:
          cost.cardinality = left.cardinality + right.cardinality;
          break;
        case PlanKind::kIntersect:
          cost.cardinality = std::min(left.cardinality, right.cardinality) *
                             options.equality_selectivity;
          break;
        case PlanKind::kDifference:
          cost.cardinality = left.cardinality;
          break;
        default:  // Join: assume a key-ish join on the smaller side.
          cost.cardinality =
              std::max(left.cardinality, right.cardinality) *
              options.default_selectivity;
          break;
      }
      cost.tuples = left.tuples + right.tuples + cost.cardinality;
      return cost;
    }
    case PlanKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(plan.get());
      SERENA_ASSIGN_OR_RETURN(
          PlanCost child,
          EstimateCost(node->child(), env, streams, options));
      cost = child;
      cost.cardinality =
          child.cardinality * FormulaSelectivity(node->formula(), options);
      cost.tuples = child.tuples + child.cardinality;
      return cost;
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      SERENA_ASSIGN_OR_RETURN(
          PlanCost child,
          EstimateCost(node->child(), env, streams, options));
      cost = child;
      cost.tuples = child.tuples + child.cardinality;
      return cost;  // Cardinality may shrink with dedup; keep upper bound.
    }
    case PlanKind::kAggregate: {
      SERENA_ASSIGN_OR_RETURN(
          PlanCost child,
          EstimateCost(plan->children()[0], env, streams, options));
      cost = child;
      // Grouping compresses: assume a square-root-ish group count.
      cost.cardinality = std::max(1.0, child.cardinality *
                                           options.equality_selectivity);
      cost.tuples = child.tuples + child.cardinality;
      return cost;
    }
    case PlanKind::kRename:
    case PlanKind::kAssign:
    case PlanKind::kStreaming: {
      SERENA_ASSIGN_OR_RETURN(
          PlanCost child,
          EstimateCost(plan->children()[0], env, streams, options));
      cost = child;
      cost.tuples = child.tuples + child.cardinality;
      return cost;
    }
    case PlanKind::kInvoke: {
      const auto* node = static_cast<const InvokeNode*>(plan.get());
      SERENA_ASSIGN_OR_RETURN(
          PlanCost child,
          EstimateCost(node->child(), env, streams, options));
      cost = child;
      // One invocation per input tuple.
      cost.invocations = child.invocations + child.cardinality;
      if (node->IsActive(env, streams)) {
        cost.active_invocations =
            child.active_invocations + child.cardinality;
      }
      cost.cardinality = child.cardinality * options.invocation_fanout;
      cost.tuples = child.tuples + cost.cardinality;
      return cost;
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace serena
