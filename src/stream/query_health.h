#ifndef SERENA_STREAM_QUERY_HEALTH_H_
#define SERENA_STREAM_QUERY_HEALTH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace serena {

/// Per-query health signals the executor maintains for every registered
/// continuous query: last-completed instant, tick lag (logical watermark
/// vs. the executor clock), consecutive-error streak, step-latency
/// percentiles and tuple in/out rates. This is the alertable layer above
/// the raw metrics registry — surfaced through `\health` in the shell,
/// `PemsMetrics::ToJson`, and the `sys_query_health` meta-relation.
///
/// Thread-safe; `Observe` is called from the executor's serial merge
/// phase, snapshots may be taken from any thread.
class QueryHealth {
 public:
  struct QuerySnapshot {
    std::string name;
    /// Instant of the last successful step; -1 before the first one.
    Timestamp last_completed_instant = -1;
    /// Executor clock minus last completed instant (ticks the query is
    /// behind). 1 means "stepped last tick" — the healthy steady state.
    Timestamp lag = 0;
    /// Consecutive failed steps (0 for a healthy query).
    std::uint64_t error_streak = 0;
    std::uint64_t total_errors = 0;
    /// Completed (successful) steps.
    std::uint64_t steps = 0;
    std::uint64_t p50_step_ns = 0;
    std::uint64_t p99_step_ns = 0;
    /// Totals across all observed steps.
    std::uint64_t rows_in = 0;
    std::uint64_t rows_out = 0;
    /// Totals divided by observed steps (successful + failed).
    double rows_in_rate = 0.0;
    double rows_out_rate = 0.0;
  };

  QueryHealth() = default;
  QueryHealth(const QueryHealth&) = delete;
  QueryHealth& operator=(const QueryHealth&) = delete;

  /// Starts tracking `name`; lag is measured from `now` until the first
  /// completed step. Re-registering resets the entry.
  void Register(const std::string& name, Timestamp now);
  void Unregister(const std::string& name);

  /// Advances the lag baseline — the executor calls this with each tick's
  /// instant before stepping, so stalled queries show a growing lag.
  void SetNow(Timestamp now);

  /// Records one step outcome for `name` (no-op when untracked).
  void Observe(const std::string& name, Timestamp instant, bool ok,
               std::uint64_t step_ns, std::uint64_t rows_in,
               std::uint64_t rows_out);

  /// All tracked queries, sorted by name.
  std::vector<QuerySnapshot> Snapshots() const;

  void Clear();

 private:
  struct Entry {
    Timestamp registered_at = 0;
    Timestamp last_completed = -1;
    std::uint64_t error_streak = 0;
    std::uint64_t total_errors = 0;
    std::uint64_t steps = 0;
    std::uint64_t observed = 0;  ///< Successful + failed steps.
    std::uint64_t rows_in = 0;
    std::uint64_t rows_out = 0;
    obs::Histogram step_ns;
  };

  mutable std::mutex mu_;
  Timestamp now_ = 0;
  // unique_ptr: Entry holds atomics (non-movable).
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace serena

#endif  // SERENA_STREAM_QUERY_HEALTH_H_
