#include "stream/stream_store.h"

namespace serena {

Status StreamStore::AddStream(ExtendedSchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null stream schema");
  }
  if (schema->name().empty()) {
    return Status::InvalidArgument("stream schema must be named");
  }
  const std::string name = schema->name();
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace: XDRelation is non-movable (it owns a mutex), so it must
  // be constructed in place.
  if (!streams_.try_emplace(name, std::move(schema)).second) {
    return Status::AlreadyExists("stream '", name, "' already exists");
  }
  return Status::OK();
}

Result<XDRelation*> StreamStore::GetStream(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '", name, "' does not exist");
  }
  return &it->second;
}

Result<const XDRelation*> StreamStore::GetStream(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '", name, "' does not exist");
  }
  return &it->second;
}

bool StreamStore::HasStream(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.count(name) > 0;
}

Status StreamStore::DropStream(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (streams_.erase(name) == 0) {
    return Status::NotFound("stream '", name, "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> StreamStore::StreamNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) names.push_back(name);
  return names;
}

}  // namespace serena
