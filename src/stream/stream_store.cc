#include "stream/stream_store.h"

namespace serena {

Status StreamStore::AddStream(ExtendedSchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null stream schema");
  }
  if (schema->name().empty()) {
    return Status::InvalidArgument("stream schema must be named");
  }
  const std::string name = schema->name();
  if (streams_.count(name) > 0) {
    return Status::AlreadyExists("stream '", name, "' already exists");
  }
  streams_.emplace(name, XDRelation(std::move(schema)));
  return Status::OK();
}

Result<XDRelation*> StreamStore::GetStream(const std::string& name) {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '", name, "' does not exist");
  }
  return &it->second;
}

Result<const XDRelation*> StreamStore::GetStream(
    const std::string& name) const {
  const auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '", name, "' does not exist");
  }
  return &it->second;
}

bool StreamStore::HasStream(const std::string& name) const {
  return streams_.count(name) > 0;
}

Status StreamStore::DropStream(const std::string& name) {
  if (streams_.erase(name) == 0) {
    return Status::NotFound("stream '", name, "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> StreamStore::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) names.push_back(name);
  return names;
}

}  // namespace serena
