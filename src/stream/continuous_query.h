#ifndef SERENA_STREAM_CONTINUOUS_QUERY_H_
#define SERENA_STREAM_CONTINUOUS_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "algebra/tuple_batch.h"

namespace serena {

/// A registered continuous query (§4): a Serena plan evaluated once per
/// instant with delta-aware semantics — the Streaming operator emits
/// per-instant insertions/deletions and the invocation operator only
/// invokes services for newly inserted tuples (§4.2).
///
/// A query whose outermost operator is Streaming produces an infinite
/// XD-Relation (a stream of deltas, like Q4's photo stream); otherwise it
/// produces a finite XD-Relation whose instantaneous value is the step
/// result (like Q3).
class ContinuousQuery {
 public:
  /// Called after each step with the instant and the step's result.
  using Sink = std::function<void(Timestamp, const XRelation&)>;

  ContinuousQuery(std::string name, PlanPtr plan)
      : name_(std::move(name)), plan_(std::move(plan)) {}

  const std::string& name() const { return name_; }
  const PlanPtr& plan() const { return plan_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Streams this query's sink writes into (derived-stream pipelines,
  /// §5.1). The executor uses these declarations to schedule dependent
  /// queries after their producers within one tick; a query whose sink
  /// feeds a stream without declaring it here may race with concurrent
  /// readers of that stream under a parallel executor.
  void set_feeds(std::vector<std::string> feeds) {
    feeds_ = std::move(feeds);
  }
  const std::vector<std::string>& feeds() const { return feeds_; }

  /// Evaluates one instant. Invocation failures skip the affected tuple
  /// (a vanished sensor must not kill a standing query). Actions of this
  /// step are appended to `accumulated_actions`. `pool` is used for
  /// concurrent physical service calls (nullptr = the shared pool); the
  /// step result is deterministic regardless.
  Result<XRelation> Step(Environment* env, StreamStore* streams,
                         Timestamp instant, ThreadPool* pool = nullptr);

  /// All actions (active invocations) the query has triggered since
  /// registration (Def. 8, accumulated over instants). Being a *set*,
  /// identical actions at different instants collapse — see `action_log`
  /// for the full timestamped trace.
  const ActionSet& accumulated_actions() const {
    return accumulated_actions_;
  }

  /// One entry in the audit trail: when which action fired.
  struct LoggedAction {
    Timestamp instant;
    Action action;
  };

  /// The complete timestamped audit trail of active invocations, in
  /// firing order (every occurrence, no deduplication).
  const std::vector<LoggedAction>& action_log() const { return action_log_; }

  /// Number of completed steps.
  std::uint64_t steps() const { return steps_; }

  /// Rows that entered the plan's leaves (scans + windows) during the
  /// last step, and rows the last step emitted. Tracked while the global
  /// metrics registry is enabled (0 otherwise) — the tuples-in/out feed
  /// of the executor's QueryHealth.
  std::uint64_t last_rows_in() const { return last_rows_in_; }
  std::uint64_t last_rows_out() const { return last_rows_out_; }

  /// Per-node actuals accumulated over all steps (RenderPlanWithStats).
  const PlanStatsCollector& stats() const { return stats_; }

  /// Drops all per-node state (the query behaves as freshly registered).
  void ResetState() { state_.Clear(); }

 private:
  /// Sum of rows_out over the plan's leaf nodes in `stats_`.
  std::uint64_t LeafRowsTotal() const;

  std::string name_;
  PlanPtr plan_;
  std::vector<std::string> feeds_;
  Sink sink_;
  NodeStateStore state_;
  /// Reusable batch storage for the vectorized execution core: the same
  /// plan runs every tick, so after the first step the batch loop is
  /// allocation-free.
  vec::BatchPool batch_pool_;
  ActionSet accumulated_actions_;
  std::vector<LoggedAction> action_log_;
  std::uint64_t steps_ = 0;
  PlanStatsCollector stats_;
  std::uint64_t leaf_rows_total_ = 0;
  std::uint64_t last_rows_in_ = 0;
  std::uint64_t last_rows_out_ = 0;
};

using ContinuousQueryPtr = std::shared_ptr<ContinuousQuery>;

}  // namespace serena

#endif  // SERENA_STREAM_CONTINUOUS_QUERY_H_
