#ifndef SERENA_STREAM_XD_RELATION_H_
#define SERENA_STREAM_XD_RELATION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "schema/extended_schema.h"
#include "types/tuple.h"

namespace serena {

/// A borrowed stream tuple plus its content hash (`Tuple::Hash`),
/// computed once at append time. Windows over a stream re-read the same
/// physical entries every tick for every registered query; carrying the
/// stored hash lets the vectorized pipeline deduplicate window slices
/// and index its result relation without ever re-hashing a stream tuple.
struct HashedTupleRef {
  const Tuple* tuple = nullptr;
  std::uint64_t hash = 0;
};

/// An infinite eXtended Dynamic relation (XD-Relation, §4.1): an
/// append-only mapping from time instants to multisets of tuples over an
/// extended relation schema — a data stream in the CQL sense, extended
/// with virtual attributes and binding patterns.
///
/// Finite XD-Relations (dynamic tables) are represented by mutable
/// `XRelation`s inside the `Environment`; this class models only the
/// infinite/append-only case, which must pass through a Window operator
/// (W[period]) to re-enter the finite algebra.
///
/// The stream keeps a bounded history of insertions so windows can be
/// answered; `PruneBefore` discards entries no window can reach anymore.
///
/// Thread safety: the entry history is internally locked, so concurrent
/// appends and window reads (parallel executor ticks) are race-free.
/// *Ordering* between a writer and a reader within one instant is the
/// executor's job (its feed/read dependency levels).
class XDRelation {
 public:
  explicit XDRelation(ExtendedSchemaPtr schema);

  XDRelation(const XDRelation&) = delete;
  XDRelation& operator=(const XDRelation&) = delete;

  const ExtendedSchema& schema() const { return *schema_; }
  const ExtendedSchemaPtr& schema_ptr() const { return schema_; }

  /// Appends a tuple at instant `t`. Instants must be non-decreasing
  /// (append-only streams cannot rewrite the past). Validates the tuple
  /// against the schema's real attributes.
  Status Append(Timestamp t, Tuple tuple);

  /// Tuples inserted with instants in the half-open window
  /// (from_exclusive, to_inclusive] — exactly the content W[period]
  /// produces at τ with from = τ - period, to = τ.
  std::vector<Tuple> InsertedDuring(Timestamp from_exclusive,
                                    Timestamp to_inclusive) const;

  /// The last `count` tuples inserted at or before `to_inclusive` — the
  /// content of a row-based window W[rows count] at τ (CQL's ROWS n).
  std::vector<Tuple> LastInserted(std::size_t count,
                                  Timestamp to_inclusive) const;

  /// Pointer-borrowing variants of the window reads, for the vectorized
  /// window cursor: append pointers to the retained entries (with their
  /// stored content hashes) into `out` instead of copying tuples. The
  /// pointers stay valid until the next `Prune*` call — deque references
  /// survive `Append` — which the executor only issues after all query
  /// steps of a tick.
  void CollectInsertedDuring(Timestamp from_exclusive,
                             Timestamp to_inclusive,
                             std::vector<HashedTupleRef>* out) const;
  void CollectLastInserted(std::size_t count, Timestamp to_inclusive,
                           std::vector<HashedTupleRef>* out) const;

  /// Drops history strictly older than `t`. Returns the number of
  /// entries dropped.
  std::size_t PruneBefore(Timestamp t);

  /// Like PruneBefore, but always retains at least the newest
  /// `min_entries` insertions (needed while row-based windows are
  /// registered). Returns the number of entries dropped.
  std::size_t PruneBeforeKeeping(Timestamp t, std::size_t min_entries);

  /// Total retained entries.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Instant of the latest insertion, or `fallback` when empty.
  Timestamp LastInstant(Timestamp fallback = -1) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? fallback : entries_.back().instant;
  }

 private:
  /// One insertion: the tuple, its instant, and its content hash —
  /// computed once here so the window reads above can hand it out.
  struct Entry {
    Timestamp instant;
    Tuple tuple;
    std::uint64_t hash;
  };

  ExtendedSchemaPtr schema_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // Sorted by instant.
};

}  // namespace serena

#endif  // SERENA_STREAM_XD_RELATION_H_
