#include "stream/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace serena {

namespace {

/// The executor's registry-wide instruments, resolved once per process.
struct ExecutorInstruments {
  obs::Histogram* tick_ns;
  obs::Counter* ticks;
  obs::Counter* query_errors;
  obs::Counter* pruned_tuples;
};

const ExecutorInstruments& Instruments() {
  static const ExecutorInstruments instruments = [] {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    return ExecutorInstruments{
        &metrics.GetHistogram("serena.executor.tick_ns"),
        &metrics.GetCounter("serena.executor.ticks"),
        &metrics.GetCounter("serena.executor.query_errors"),
        &metrics.GetCounter("serena.executor.pruned_tuples")};
  }();
  return instruments;
}

}  // namespace

std::size_t ContinuousExecutor::AddSource(Source source) {
  const std::size_t token = next_source_token_++;
  sources_.emplace(token, std::move(source));
  return token;
}

void ContinuousExecutor::RemoveSource(std::size_t token) {
  sources_.erase(token);
}

Status ContinuousExecutor::Register(ContinuousQueryPtr query) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  const std::string name = query->name();
  if (name.empty()) {
    return Status::InvalidArgument("continuous query must be named");
  }
  for (const ContinuousQueryPtr& existing : queries_) {
    if (existing->name() == name) {
      return Status::AlreadyExists("continuous query '", name,
                                   "' already registered");
    }
  }
  queries_.push_back(std::move(query));
  return Status::OK();
}

Status ContinuousExecutor::Unregister(const std::string& name) {
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if ((*it)->name() == name) {
      queries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("continuous query '", name, "' not registered");
}

Result<ContinuousQueryPtr> ContinuousExecutor::GetQuery(
    const std::string& name) const {
  for (const ContinuousQueryPtr& query : queries_) {
    if (query->name() == name) return query;
  }
  return Status::NotFound("continuous query '", name, "' not registered");
}

std::vector<std::string> ContinuousExecutor::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const ContinuousQueryPtr& query : queries_) {
    names.push_back(query->name());
  }
  return names;
}

void ContinuousExecutor::CollectWindows(
    const PlanPtr& plan, std::map<std::string, WindowDemand>* demands) {
  if (plan == nullptr) return;
  if (plan->kind() == PlanKind::kWindow) {
    const auto* node = static_cast<const WindowNode*>(plan.get());
    WindowDemand& demand = (*demands)[node->stream()];
    if (node->mode() == WindowMode::kRows) {
      demand.max_rows = std::max(demand.max_rows,
                                 static_cast<std::size_t>(node->period()));
    } else {
      demand.max_period = std::max(demand.max_period, node->period());
    }
  }
  for (const PlanPtr& child : plan->children()) {
    CollectWindows(child, demands);
  }
}

ContinuousExecutor::WindowDemand ContinuousExecutor::MaxWindowDemand(
    const std::string& stream) const {
  WindowDemand demand;
  for (const ContinuousQueryPtr& query : queries_) {
    std::map<std::string, WindowDemand> demands;
    CollectWindows(query->plan(), &demands);
    const auto it = demands.find(stream);
    if (it != demands.end()) {
      demand.max_period = std::max(demand.max_period, it->second.max_period);
      demand.max_rows = std::max(demand.max_rows, it->second.max_rows);
    }
  }
  return demand;
}

Timestamp ContinuousExecutor::Tick() {
  const Timestamp now = env_->clock().Tick();
  const bool meter = obs::MetricsRegistry::Global().enabled();
  const std::uint64_t tick_start_ns = meter ? obs::MonotonicNowNs() : 0;
  obs::Span tick_span("executor.tick", now);
  last_errors_.clear();
  ++total_ticks_;

  for (const auto& [token, source] : sources_) {
    const Status status = source(now);
    if (!status.ok()) {
      SERENA_LOG(Warning) << "stream source failed at instant " << now
                          << ": " << status;
    }
  }

  for (const ContinuousQueryPtr& query : queries_) {
    obs::Histogram* step_histogram = nullptr;
    if (meter) {
      auto& slot = step_histograms_[query->name()];
      if (slot == nullptr) {
        slot = &obs::MetricsRegistry::Global().GetHistogram(
            "serena.executor.query." + query->name() + ".step_ns");
      }
      step_histogram = slot;
    }
    obs::Span step_span("executor.step", now, query->name());
    obs::ScopedLatencyTimer step_timer(step_histogram);
    const auto result = query->Step(env_, streams_, now);
    if (!result.ok()) {
      last_errors_.emplace(query->name(), result.status());
      ++total_query_errors_;
      if (meter) Instruments().query_errors->Increment();
      SERENA_LOG(Warning) << "continuous query '" << query->name()
                          << "' failed at instant " << now << ": "
                          << result.status();
    }
  }

  if (streams_ != nullptr) {
    std::uint64_t pruned = 0;
    for (const std::string& stream_name : streams_->StreamNames()) {
      auto stream = streams_->GetStream(stream_name);
      if (stream.ok()) {
        const WindowDemand demand = MaxWindowDemand(stream_name);
        pruned += (*stream)->PruneBeforeKeeping(
            now - demand.max_period - prune_slack_, demand.max_rows);
      }
    }
    total_pruned_tuples_ += pruned;
    if (meter && pruned > 0) Instruments().pruned_tuples->Increment(pruned);
  }

  if (meter) {
    Instruments().ticks->Increment();
    Instruments().tick_ns->Record(obs::MonotonicNowNs() - tick_start_ns);
  }
  return now;
}

Timestamp ContinuousExecutor::Run(int n) {
  Timestamp last = env_->clock().now();
  for (int i = 0; i < n; ++i) last = Tick();
  return last;
}

}  // namespace serena
