#include "stream/executor.h"

#include <algorithm>
#include <set>

#include "algebra/vectorized.h"
#include "common/logging.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace serena {

namespace {

/// The executor's registry-wide instruments, resolved once per process.
struct ExecutorInstruments {
  obs::Histogram* tick_ns;
  obs::Counter* ticks;
  obs::Counter* query_errors;
  obs::Counter* pruned_tuples;
  /// Effective rows-per-batch of the vectorized core (0 = vectorization
  /// off), refreshed every tick so dashboards see knob changes.
  obs::Gauge* batch_size;
};

const ExecutorInstruments& Instruments() {
  static const ExecutorInstruments instruments = [] {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    return ExecutorInstruments{
        &metrics.GetHistogram("serena.executor.tick_ns"),
        &metrics.GetCounter("serena.executor.ticks"),
        &metrics.GetCounter("serena.executor.query_errors"),
        &metrics.GetCounter("serena.executor.pruned_tuples"),
        &metrics.GetGauge("serena.executor.batch_size")};
  }();
  return instruments;
}

bool Intersects(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  for (const std::string& x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

}  // namespace

std::size_t ContinuousExecutor::AddSource(Source source) {
  return AddSource(std::move(source), {});
}

std::size_t ContinuousExecutor::AddSource(Source source,
                                          std::vector<std::string> feeds) {
  const std::size_t token = next_source_token_++;
  sources_.emplace(token, SourceEntry{std::move(source), std::move(feeds)});
  return token;
}

void ContinuousExecutor::RemoveSource(std::size_t token) {
  sources_.erase(token);
}

std::vector<std::string> ContinuousExecutor::SourceFedStreams() const {
  std::set<std::string> streams;
  for (const auto& [token, entry] : sources_) {
    streams.insert(entry.feeds.begin(), entry.feeds.end());
  }
  return {streams.begin(), streams.end()};
}

Status ContinuousExecutor::Register(ContinuousQueryPtr query) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  const std::string name = query->name();
  if (name.empty()) {
    return Status::InvalidArgument("continuous query must be named");
  }
  for (const Entry& existing : entries_) {
    if (existing.query->name() == name) {
      return Status::AlreadyExists("continuous query '", name,
                                   "' already registered");
    }
  }
  Entry entry;
  std::map<std::string, WindowDemand> demands;
  CollectWindows(query->plan(), &demands);
  for (const auto& [stream, demand] : demands) {
    entry.reads.push_back(stream);
  }
  entry.query = std::move(query);
  entries_.push_back(std::move(entry));
  RebuildSchedule();
  health_.Register(name, env_->clock().now());
  return Status::OK();
}

Status ContinuousExecutor::Unregister(const std::string& name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->query->name() == name) {
      entries_.erase(it);
      RebuildSchedule();
      health_.Unregister(name);
      return Status::OK();
    }
  }
  return Status::NotFound("continuous query '", name, "' not registered");
}

Result<ContinuousQueryPtr> ContinuousExecutor::GetQuery(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.query->name() == name) return entry.query;
  }
  return Status::NotFound("continuous query '", name, "' not registered");
}

std::vector<std::string> ContinuousExecutor::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    names.push_back(entry.query->name());
  }
  return names;
}

void ContinuousExecutor::CollectWindows(
    const PlanPtr& plan, std::map<std::string, WindowDemand>* demands) {
  if (plan == nullptr) return;
  if (plan->kind() == PlanKind::kWindow) {
    const auto* node = static_cast<const WindowNode*>(plan.get());
    WindowDemand& demand = (*demands)[node->stream()];
    if (node->mode() == WindowMode::kRows) {
      demand.max_rows = std::max(demand.max_rows,
                                 static_cast<std::size_t>(node->period()));
    } else {
      demand.max_period = std::max(demand.max_period, node->period());
    }
  }
  for (const PlanPtr& child : plan->children()) {
    CollectWindows(child, demands);
  }
}

void ContinuousExecutor::RebuildSchedule() {
  window_demand_.clear();
  for (const Entry& entry : entries_) {
    CollectWindows(entry.query->plan(), &window_demand_);
  }

  // Dependency levels: query j (registered earlier) must finish before
  // query i when j's sink feeds a stream that i reads or feeds, or when
  // both feed the same stream (append order), or when j reads a stream i
  // feeds (j must see the pre-append state, as it did serially). Levels
  // are barriers; within a level queries touch disjoint feed/read state
  // and may step concurrently.
  std::vector<std::size_t> level(entries_.size(), 0);
  schedule_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::vector<std::string>& reads_i = entries_[i].reads;
    const std::vector<std::string>& feeds_i = entries_[i].query->feeds();
    for (std::size_t j = 0; j < i; ++j) {
      const std::vector<std::string>& feeds_j = entries_[j].query->feeds();
      const bool dependent = Intersects(feeds_j, reads_i) ||
                             Intersects(feeds_j, feeds_i) ||
                             (!feeds_i.empty() &&
                              Intersects(entries_[j].reads, feeds_i));
      if (dependent) level[i] = std::max(level[i], level[j] + 1);
    }
    if (level[i] >= schedule_.size()) schedule_.resize(level[i] + 1);
    schedule_[level[i]].push_back(i);
  }
}

Timestamp ContinuousExecutor::Tick() {
  const Timestamp now = env_->clock().Tick();
  const bool meter = obs::MetricsRegistry::Global().enabled();
  const std::uint64_t tick_start_ns = meter ? obs::MonotonicNowNs() : 0;
  obs::Span tick_span("executor.tick", now);
  last_errors_.clear();
  ++total_ticks_;
  health_.SetNow(now);

  for (const auto& [token, entry] : sources_) {
    const Status status = entry.source(now);
    if (!status.ok()) {
      SERENA_LOG(Warning) << "stream source failed at instant " << now
                          << ": " << status;
    }
  }

  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Shared();
  std::vector<Status> step_status(entries_.size(), Status::OK());
  std::vector<std::uint64_t> step_ns(entries_.size(), 0);
  for (const std::vector<std::size_t>& level : schedule_) {
    // Resolve instruments serially: the metrics registry lookup and the
    // histogram cache are not on the step's concurrent path.
    if (meter) {
      for (const std::size_t i : level) {
        if (entries_[i].step_histogram == nullptr) {
          entries_[i].step_histogram =
              &obs::MetricsRegistry::Global().GetHistogram(
                  "serena.executor.query." + entries_[i].query->name() +
                  ".step_ns");
        }
      }
    }
    pool.ParallelFor(level.size(), [&](std::size_t k) {
      Entry& entry = entries_[level[k]];
      obs::Span step_span("executor.step", now, entry.query->name());
      const std::uint64_t step_start_ns = obs::MonotonicNowNs();
      const auto result = entry.query->Step(env_, streams_, now, &pool);
      const std::uint64_t elapsed_ns =
          obs::MonotonicNowNs() - step_start_ns;
      step_ns[level[k]] = elapsed_ns;
      if (meter && entry.step_histogram != nullptr) {
        entry.step_histogram->Record(elapsed_ns);
      }
      if (!result.ok()) step_status[level[k]] = result.status();
    });
  }

  // Merge failures and health observations serially, in registration
  // order.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const ContinuousQuery& query = *entries_[i].query;
    health_.Observe(query.name(), now, step_status[i].ok(), step_ns[i],
                    query.last_rows_in(), query.last_rows_out());
    if (step_status[i].ok()) continue;
    const std::string& name = query.name();
    last_errors_.emplace(name, step_status[i]);
    ++total_query_errors_;
    if (meter) Instruments().query_errors->Increment();
    SERENA_LOG(Warning) << "continuous query '" << name
                        << "' failed at instant " << now << ": "
                        << step_status[i];
  }

  if (streams_ != nullptr) {
    std::uint64_t pruned = 0;
    for (const std::string& stream_name : streams_->StreamNames()) {
      auto stream = streams_->GetStream(stream_name);
      if (stream.ok()) {
        WindowDemand demand;
        const auto it = window_demand_.find(stream_name);
        if (it != window_demand_.end()) demand = it->second;
        pruned += (*stream)->PruneBeforeKeeping(
            now - demand.max_period - prune_slack_, demand.max_rows);
      }
    }
    total_pruned_tuples_ += pruned;
    if (meter && pruned > 0) Instruments().pruned_tuples->Increment(pruned);
  }

  if (meter) {
    Instruments().ticks->Increment();
    Instruments().tick_ns->Record(obs::MonotonicNowNs() - tick_start_ns);
    Instruments().batch_size->Set(
        vec::Enabled() ? static_cast<std::int64_t>(vec::BatchSize()) : 0);
  }
  // Periodic Prometheus exposition to SERENA_METRICS_FILE (throttled
  // inside; a fast no-op when the variable is unset).
  obs::MaybeWriteMetricsFile();
  return now;
}

Timestamp ContinuousExecutor::Run(int n) {
  Timestamp last = env_->clock().now();
  for (int i = 0; i < n; ++i) last = Tick();
  return last;
}

}  // namespace serena
