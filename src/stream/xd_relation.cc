#include "stream/xd_relation.h"

#include <algorithm>

#include "common/logging.h"

namespace serena {

XDRelation::XDRelation(ExtendedSchemaPtr schema)
    : schema_(std::move(schema)) {
  SERENA_CHECK(schema_ != nullptr);
}

Status XDRelation::Append(Timestamp t, Tuple tuple) {
  SERENA_RETURN_NOT_OK(schema_->ValidateTuple(tuple));
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.empty() && t < entries_.back().instant) {
    return Status::FailedPrecondition(
        "stream '", schema_->name(), "' is append-only: instant ", t,
        " precedes last instant ", entries_.back().instant);
  }
  // Hash once at append: every window read over this entry — one per
  // registered query per tick — reuses it instead of re-hashing.
  const std::uint64_t hash = tuple.Hash();
  entries_.push_back(Entry{t, std::move(tuple), hash});
  return Status::OK();
}

std::vector<Tuple> XDRelation::InsertedDuring(Timestamp from_exclusive,
                                              Timestamp to_inclusive) const {
  std::vector<Tuple> result;
  std::lock_guard<std::mutex> lock(mu_);
  // Binary search the first entry with instant > from_exclusive.
  const auto begin = std::upper_bound(
      entries_.begin(), entries_.end(), from_exclusive,
      [](Timestamp t, const auto& entry) { return t < entry.instant; });
  for (auto it = begin;
       it != entries_.end() && it->instant <= to_inclusive; ++it) {
    result.push_back(it->tuple);
  }
  return result;
}

std::vector<Tuple> XDRelation::LastInserted(std::size_t count,
                                            Timestamp to_inclusive) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Find the end of the eligible range (instant <= to_inclusive).
  const auto end = std::upper_bound(
      entries_.begin(), entries_.end(), to_inclusive,
      [](Timestamp t, const auto& entry) { return t < entry.instant; });
  const std::size_t eligible =
      static_cast<std::size_t>(std::distance(entries_.begin(), end));
  const std::size_t take = std::min(count, eligible);
  std::vector<Tuple> result;
  result.reserve(take);
  for (auto it = end - static_cast<std::ptrdiff_t>(take); it != end; ++it) {
    result.push_back(it->tuple);
  }
  return result;
}

void XDRelation::CollectInsertedDuring(Timestamp from_exclusive,
                                       Timestamp to_inclusive,
                                       std::vector<HashedTupleRef>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto begin = std::upper_bound(
      entries_.begin(), entries_.end(), from_exclusive,
      [](Timestamp t, const auto& entry) { return t < entry.instant; });
  for (auto it = begin;
       it != entries_.end() && it->instant <= to_inclusive; ++it) {
    out->push_back(HashedTupleRef{&it->tuple, it->hash});
  }
}

void XDRelation::CollectLastInserted(std::size_t count,
                                     Timestamp to_inclusive,
                                     std::vector<HashedTupleRef>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto end = std::upper_bound(
      entries_.begin(), entries_.end(), to_inclusive,
      [](Timestamp t, const auto& entry) { return t < entry.instant; });
  const std::size_t eligible =
      static_cast<std::size_t>(std::distance(entries_.begin(), end));
  const std::size_t take = std::min(count, eligible);
  out->reserve(out->size() + take);
  for (auto it = end - static_cast<std::ptrdiff_t>(take); it != end; ++it) {
    out->push_back(HashedTupleRef{&it->tuple, it->hash});
  }
}

std::size_t XDRelation::PruneBefore(Timestamp t) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t pruned = 0;
  while (!entries_.empty() && entries_.front().instant < t) {
    entries_.pop_front();
    ++pruned;
  }
  return pruned;
}

std::size_t XDRelation::PruneBeforeKeeping(Timestamp t,
                                           std::size_t min_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t pruned = 0;
  while (entries_.size() > min_entries && entries_.front().instant < t) {
    entries_.pop_front();
    ++pruned;
  }
  return pruned;
}

}  // namespace serena
