#include "stream/query_health.h"

namespace serena {

void QueryHealth::Register(const std::string& name, Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = std::make_unique<Entry>();
  entry->registered_at = now;
  entries_[name] = std::move(entry);
  if (now > now_) now_ = now;
}

void QueryHealth::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(name);
}

void QueryHealth::SetNow(Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (now > now_) now_ = now;
}

void QueryHealth::Observe(const std::string& name, Timestamp instant,
                          bool ok, std::uint64_t step_ns,
                          std::uint64_t rows_in, std::uint64_t rows_out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  ++entry.observed;
  entry.step_ns.Record(step_ns);
  if (ok) {
    entry.last_completed = instant;
    entry.error_streak = 0;
    ++entry.steps;
    entry.rows_in += rows_in;
    entry.rows_out += rows_out;
  } else {
    ++entry.error_streak;
    ++entry.total_errors;
  }
  if (instant > now_) now_ = instant;
}

std::vector<QueryHealth::QuerySnapshot> QueryHealth::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QuerySnapshot> snapshots;
  snapshots.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    QuerySnapshot snapshot;
    snapshot.name = name;
    snapshot.last_completed_instant = entry->last_completed;
    // Before the first completed step the lag counts from registration.
    const Timestamp baseline = entry->last_completed >= 0
                                   ? entry->last_completed
                                   : entry->registered_at;
    snapshot.lag = now_ > baseline ? now_ - baseline : 0;
    snapshot.error_streak = entry->error_streak;
    snapshot.total_errors = entry->total_errors;
    snapshot.steps = entry->steps;
    const obs::HistogramSnapshot latency = entry->step_ns.Snapshot();
    snapshot.p50_step_ns = latency.ValueAtPercentile(50);
    snapshot.p99_step_ns = latency.ValueAtPercentile(99);
    snapshot.rows_in = entry->rows_in;
    snapshot.rows_out = entry->rows_out;
    if (entry->observed > 0) {
      const double steps = static_cast<double>(entry->observed);
      snapshot.rows_in_rate = static_cast<double>(entry->rows_in) / steps;
      snapshot.rows_out_rate = static_cast<double>(entry->rows_out) / steps;
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

void QueryHealth::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  now_ = 0;
}

}  // namespace serena
