#ifndef SERENA_STREAM_EXECUTOR_H_
#define SERENA_STREAM_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "stream/continuous_query.h"
#include "stream/query_health.h"

namespace serena {

/// The continuous-query executor: drives the environment's logical clock
/// and, at every tick, first runs the registered *sources* (callbacks that
/// feed streams — e.g. sensor pumps, RSS pollers), then steps every
/// registered continuous query, then prunes stream history no window can
/// reach anymore.
///
/// Queries can be registered and unregistered while the executor runs —
/// this is how the PEMS executes standing queries over a changing
/// environment (§5.1).
///
/// Parallel ticking: independent queries of one tick are stepped
/// concurrently on the configured pool. Queries are *dependent* when one
/// feeds (see `ContinuousQuery::set_feeds`) a stream another reads or
/// feeds; the executor schedules dependents into later barrier levels, in
/// registration order, so a derived-stream pipeline observes exactly the
/// serial executor's per-tick order. With a serial pool
/// (`SERENA_THREADS=0`) every query steps inline in registration order —
/// the pre-parallel behavior.
class ContinuousExecutor {
 public:
  /// A source feeds streams for the given instant (returns an error to
  /// surface a feeding failure; the executor keeps going).
  using Source = std::function<Status(Timestamp)>;

  ContinuousExecutor(Environment* env, StreamStore* streams)
      : env_(env), streams_(streams) {}

  ContinuousExecutor(const ContinuousExecutor&) = delete;
  ContinuousExecutor& operator=(const ContinuousExecutor&) = delete;

  /// Registers a stream-feeding source, returning its token. Sources
  /// always run serially, in token order, before any query steps.
  /// `feeds` names the streams the source appends to — declaring them
  /// lets the cross-query lint (SER041) know the streams have a
  /// producer; an empty list is allowed but leaves windows over the
  /// source's streams looking dangling to the analyzer.
  std::size_t AddSource(Source source);
  std::size_t AddSource(Source source, std::vector<std::string> feeds);
  void RemoveSource(std::size_t token);

  /// Streams any registered source declared it feeds, sorted and
  /// deduplicated.
  std::vector<std::string> SourceFedStreams() const;

  /// Registers a continuous query under its name. Dependent queries are
  /// evaluated in registration order each tick, so upstream stages of a
  /// derived-stream pipeline should be registered before their consumers.
  Status Register(ContinuousQueryPtr query);
  Status Unregister(const std::string& name);
  Result<ContinuousQueryPtr> GetQuery(const std::string& name) const;
  std::vector<std::string> QueryNames() const;

  /// Pool for stepping independent queries concurrently (nullptr = the
  /// shared pool). Not to be changed while a Tick is in flight.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Advances the clock one instant and evaluates sources + queries.
  /// Individual query failures are recorded (see `last_errors`) but do not
  /// stop other queries.
  Timestamp Tick();

  /// Runs `n` ticks.
  Timestamp Run(int n);

  /// Errors collected during the most recent tick (query name → status).
  const std::map<std::string, Status>& last_errors() const {
    return last_errors_;
  }

  /// Total query-step failures since construction. Unlike `last_errors`
  /// (which is wiped every tick), this counter is monotonic, so failures
  /// between two dashboard snapshots are never silently lost.
  std::uint64_t total_query_errors() const { return total_query_errors_; }

  /// Total ticks driven through this executor.
  std::uint64_t total_ticks() const { return total_ticks_; }

  /// Total stream entries pruned from history across all ticks.
  std::uint64_t total_pruned_tuples() const { return total_pruned_tuples_; }

  /// Extra instants of stream history retained beyond what the widest
  /// registered window needs (default 16) — keeps recent history around
  /// for inspection and late-registered queries while still bounding
  /// memory.
  void set_prune_slack(Timestamp slack) { prune_slack_ = slack; }
  Timestamp prune_slack() const { return prune_slack_; }

  /// Per-query health signals (lag, error streaks, step latency, tuple
  /// rates), maintained across ticks for every registered query.
  const QueryHealth& health() const { return health_; }
  QueryHealth& health() { return health_; }

 private:
  struct WindowDemand {
    Timestamp max_period = 0;    ///< Widest time window on the stream.
    std::size_t max_rows = 0;    ///< Largest row window on the stream.
  };

  /// One registered query plus its scheduling inputs, derived once at
  /// registration time.
  struct Entry {
    ContinuousQueryPtr query;
    /// Streams the query's plan reads through Window nodes.
    std::vector<std::string> reads;
    /// Cached per-query step-latency histogram (resolved lazily).
    obs::Histogram* step_histogram = nullptr;
  };

  static void CollectWindows(const PlanPtr& plan,
                             std::map<std::string, WindowDemand>* demands);

  /// Recomputes `schedule_` (dependency levels over `entries_`) and
  /// `window_demand_` (per-stream prune horizon). Called whenever the
  /// query set changes.
  void RebuildSchedule();

  struct SourceEntry {
    Source source;
    std::vector<std::string> feeds;
  };

  Environment* env_;
  StreamStore* streams_;
  ThreadPool* pool_ = nullptr;
  std::size_t next_source_token_ = 0;
  std::map<std::size_t, SourceEntry> sources_;
  // Registration order; within a schedule level this is evaluation order
  // under a serial pool.
  std::vector<Entry> entries_;
  // Barrier levels of entry indices: level k only starts once level k-1
  // finished; entries within one level are mutually independent.
  std::vector<std::vector<std::size_t>> schedule_;
  // Widest window any registered query places on each stream, maintained
  // at (un)registration instead of re-walking every plan per tick.
  std::map<std::string, WindowDemand> window_demand_;
  std::map<std::string, Status> last_errors_;
  QueryHealth health_;
  std::uint64_t total_query_errors_ = 0;
  std::uint64_t total_ticks_ = 0;
  std::uint64_t total_pruned_tuples_ = 0;
  Timestamp prune_slack_ = 16;
};

}  // namespace serena

#endif  // SERENA_STREAM_EXECUTOR_H_
