#include "stream/continuous_query.h"

#include "obs/metrics.h"
#include "obs/stats.h"

namespace serena {

namespace {

std::uint64_t SumLeafRows(const PlanPtr& plan,
                          const PlanStatsCollector& stats) {
  if (plan == nullptr) return 0;
  const std::vector<PlanPtr> children = plan->children();
  if (children.empty()) {
    const NodeRuntimeStats* node_stats = stats.Find(plan.get());
    return node_stats != nullptr ? node_stats->rows_out : 0;
  }
  std::uint64_t total = 0;
  for (const PlanPtr& child : children) total += SumLeafRows(child, stats);
  return total;
}

}  // namespace

std::uint64_t ContinuousQuery::LeafRowsTotal() const {
  return SumLeafRows(plan_, stats_);
}

Result<XRelation> ContinuousQuery::Step(Environment* env,
                                        StreamStore* streams,
                                        Timestamp instant,
                                        ThreadPool* pool) {
  if (env == nullptr) return Status::InvalidArgument("null environment");
  EvalContext ctx;
  ctx.env = env;
  ctx.streams = streams;
  ctx.instant = instant;
  ctx.pool = pool;
  ctx.actions = &accumulated_actions_;
  ctx.action_sink = [this, instant](const Action& action) {
    action_log_.push_back(LoggedAction{instant, action});
  };
  ctx.error_policy = InvocationErrorPolicy::kSkipTuple;
  ctx.state = &state_;
  ctx.batch_pool = &batch_pool_;
  // Collect per-node actuals while metrics are on: they power
  // RenderPlanWithStats and the rows-in figure below (leaf rows this step
  // = delta of the accumulated leaf totals). Each step evaluates into a
  // scratch collector whose deltas feed the global runtime statistics
  // store, then merges into the query-lifetime accumulation — recording
  // the accumulated collector wholesale every step would double-count.
  const bool track = obs::MetricsRegistry::Global().enabled();
  PlanStatsCollector step_stats;
  if (track) ctx.stats = &step_stats;
  Result<XRelation> evaluated = plan_->Evaluate(ctx);
  if (track) {
    obs::StatsStore::Global().RecordPlan(*plan_, step_stats);
    stats_.MergeFrom(step_stats);
  }
  SERENA_ASSIGN_OR_RETURN(XRelation result, std::move(evaluated));
  ++steps_;
  if (track) {
    const std::uint64_t leaf_total = LeafRowsTotal();
    last_rows_in_ = leaf_total - leaf_rows_total_;
    leaf_rows_total_ = leaf_total;
    last_rows_out_ = result.size();
  } else {
    last_rows_in_ = 0;
    last_rows_out_ = result.size();
  }
  if (sink_) sink_(instant, result);
  return result;
}

}  // namespace serena
