#include "stream/continuous_query.h"

namespace serena {

Result<XRelation> ContinuousQuery::Step(Environment* env,
                                        StreamStore* streams,
                                        Timestamp instant,
                                        ThreadPool* pool) {
  if (env == nullptr) return Status::InvalidArgument("null environment");
  EvalContext ctx;
  ctx.env = env;
  ctx.streams = streams;
  ctx.instant = instant;
  ctx.pool = pool;
  ctx.actions = &accumulated_actions_;
  ctx.action_sink = [this, instant](const Action& action) {
    action_log_.push_back(LoggedAction{instant, action});
  };
  ctx.error_policy = InvocationErrorPolicy::kSkipTuple;
  ctx.state = &state_;
  SERENA_ASSIGN_OR_RETURN(XRelation result, plan_->Evaluate(ctx));
  ++steps_;
  if (sink_) sink_(instant, result);
  return result;
}

}  // namespace serena
