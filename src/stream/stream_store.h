#ifndef SERENA_STREAM_STREAM_STORE_H_
#define SERENA_STREAM_STREAM_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/xd_relation.h"

namespace serena {

/// The named infinite XD-Relations of a relational pervasive environment
/// (§4.1) — e.g. the `temperatures` stream of the motivating example.
///
/// Kept separate from `Environment` (which owns finite relations) so the
/// one-shot algebra remains stream-agnostic; queries reach streams only
/// through the Window operator.
class StreamStore {
 public:
  StreamStore() = default;

  StreamStore(const StreamStore&) = delete;
  StreamStore& operator=(const StreamStore&) = delete;

  /// Creates an empty stream named after its schema.
  Status AddStream(ExtendedSchemaPtr schema);

  Result<XDRelation*> GetStream(const std::string& name);
  Result<const XDRelation*> GetStream(const std::string& name) const;
  bool HasStream(const std::string& name) const;

  Status DropStream(const std::string& name);

  /// All stream names, sorted.
  std::vector<std::string> StreamNames() const;

 private:
  std::map<std::string, XDRelation> streams_;
};

}  // namespace serena

#endif  // SERENA_STREAM_STREAM_STORE_H_
