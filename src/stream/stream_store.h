#ifndef SERENA_STREAM_STREAM_STORE_H_
#define SERENA_STREAM_STREAM_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/xd_relation.h"

namespace serena {

/// The named infinite XD-Relations of a relational pervasive environment
/// (§4.1) — e.g. the `temperatures` stream of the motivating example.
///
/// Kept separate from `Environment` (which owns finite relations) so the
/// one-shot algebra remains stream-agnostic; queries reach streams only
/// through the Window operator.
///
/// Thread safety: the name→stream map is internally locked and streams
/// have stable addresses (map nodes), so concurrent lookups while other
/// threads add streams are safe; the `XDRelation`s themselves are also
/// thread-safe. Dropping a stream while another thread still uses its
/// pointer is the caller's race to avoid (the executor never drops).
class StreamStore {
 public:
  StreamStore() = default;

  StreamStore(const StreamStore&) = delete;
  StreamStore& operator=(const StreamStore&) = delete;

  /// Creates an empty stream named after its schema.
  Status AddStream(ExtendedSchemaPtr schema);

  Result<XDRelation*> GetStream(const std::string& name);
  Result<const XDRelation*> GetStream(const std::string& name) const;
  bool HasStream(const std::string& name) const;

  Status DropStream(const std::string& name);

  /// All stream names, sorted.
  std::vector<std::string> StreamNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, XDRelation> streams_;
};

}  // namespace serena

#endif  // SERENA_STREAM_STREAM_STORE_H_
