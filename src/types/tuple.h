#ifndef SERENA_TYPES_TUPLE_H_
#define SERENA_TYPES_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "types/value.h"

namespace serena {

/// A tuple over a (real) relation schema: an element of D^n (§2.3.1).
///
/// For an extended relation schema R, tuples are elements of
/// D^|realSchema(R)| — virtual attributes carry no coordinate (Def. 3).
/// The mapping from attribute positions to coordinates (δ_R, Def. 4) is
/// owned by the schema classes; `Tuple` itself is positional.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(std::size_t i) const { return values_[i]; }
  Value& at(std::size_t i) { return values_[i]; }
  const Value& operator[](std::size_t i) const { return values_[i]; }
  Value& operator[](std::size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  void Append(Value value) { values_.push_back(std::move(value)); }

  /// Positional projection: the coordinates at `indices`, in order.
  Tuple Project(const std::vector<std::size_t>& indices) const;

  /// Concatenation (used by join / invocation to build wider tuples).
  Tuple Concat(const Tuple& other) const;

  /// "(v1, v2, ...)".
  std::string ToString() const;

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  /// Lexicographic order (deterministic relation printing / sorting).
  bool operator<(const Tuple& other) const;

  /// Stable hash consistent with operator==.
  std::uint64_t Hash() const;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHasher {
  std::size_t operator()(const Tuple& t) const {
    return static_cast<std::size_t>(t.Hash());
  }
};

}  // namespace serena

#endif  // SERENA_TYPES_TUPLE_H_
