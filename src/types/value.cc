#include "types/value.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"

namespace serena {

DataType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return DataType::kBool;
    case 1:
      return DataType::kInt;
    case 2:
      return DataType::kReal;
    case 3:
      return DataType::kString;
    default:
      return DataType::kBlob;
  }
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  return real_value();
}

bool Value::ConformsTo(DataType declared) const {
  switch (declared) {
    case DataType::kBool:
      return is_bool();
    case DataType::kInt:
      return is_int();
    case DataType::kReal:
      return is_numeric();
    case DataType::kString:
    case DataType::kService:
      return is_string();
    case DataType::kBlob:
      return is_blob();
  }
  return false;
}

Value Value::CoerceTo(DataType declared) const {
  if (declared == DataType::kReal && is_int()) {
    return Value::Real(static_cast<double>(int_value()));
  }
  return *this;
}

std::string Value::ToString() const {
  switch (repr_.index()) {
    case 0:
      return bool_value() ? "true" : "false";
    case 1:
      return std::to_string(int_value());
    case 2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", real_value());
      return buf;
    }
    case 3:
      return "'" + string_value() + "'";
    default:
      return StringFormat("<blob:%zu>", blob_value().size());
  }
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return int_value() == other.int_value();
    return AsDouble() == other.AsDouble();
  }
  return repr_ == other.repr_;
}

namespace {

// Rank used for cross-type ordering; numerics share a rank so that their
// ordering is by numeric value.
int TypeRank(const Value& v) {
  if (v.is_bool()) return 0;
  if (v.is_numeric()) return 1;
  if (v.is_string()) return 2;
  return 3;
}

}  // namespace

bool Value::operator<(const Value& other) const {
  const int ra = TypeRank(*this);
  const int rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return bool_value() < other.bool_value();
    case 1:
      if (is_int() && other.is_int()) return int_value() < other.int_value();
      return AsDouble() < other.AsDouble();
    case 2:
      return string_value() < other.string_value();
    default:
      return blob_value() < other.blob_value();
  }
}

std::uint64_t Value::Hash() const {
  switch (repr_.index()) {
    case 0:
      return Mix64(bool_value() ? 0x1001 : 0x1000);
    case 1:
    case 2: {
      // Hash ints and reals through the double bit pattern so that
      // Int(2) and Real(2.0) hash alike, consistent with operator==.
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0 to +0.0
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x2000);
    }
    case 3:
      return StableHash(string_value());
    default: {
      const Blob& b = blob_value();
      return StableHash(std::string_view(
          reinterpret_cast<const char*>(b.data()), b.size()));
    }
  }
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

Result<Value> ParseValueLiteral(std::string_view text, DataType declared) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::ParseError("empty literal");
  }
  // Quoted string literal.
  if (trimmed.front() == '\'' || trimmed.front() == '"') {
    if (trimmed.size() < 2 || trimmed.back() != trimmed.front()) {
      return Status::ParseError("unterminated string literal: ",
                                std::string(trimmed));
    }
    return Value::String(std::string(trimmed.substr(1, trimmed.size() - 2)));
  }
  switch (declared) {
    case DataType::kBool: {
      if (EqualsIgnoreCase(trimmed, "true")) return Value::Bool(true);
      if (EqualsIgnoreCase(trimmed, "false")) return Value::Bool(false);
      return Status::ParseError("invalid boolean literal: ",
                                std::string(trimmed));
    }
    case DataType::kInt: {
      char* end = nullptr;
      const std::string buf(trimmed);
      const long long v = std::strtoll(buf.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("invalid integer literal: ", buf);
      }
      return Value::Int(v);
    }
    case DataType::kReal: {
      char* end = nullptr;
      const std::string buf(trimmed);
      const double v = std::strtod(buf.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("invalid real literal: ", buf);
      }
      return Value::Real(v);
    }
    case DataType::kString:
    case DataType::kService:
      return Value::String(std::string(trimmed));
    case DataType::kBlob:
      return Status::ParseError("blob literals are not supported");
  }
  return Status::Internal("unreachable");
}

}  // namespace serena
