#ifndef SERENA_TYPES_DATA_TYPE_H_
#define SERENA_TYPES_DATA_TYPE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace serena {

/// The attribute data types of the Serena DDL (Table 1 / Table 2 of the
/// paper): BOOLEAN, INTEGER, REAL, STRING, BLOB and SERVICE.
///
/// `kService` is the declared type of attributes holding service references;
/// per §2.2 a service reference is a *classical data value* — we represent
/// it as a string at the value level, so `kService` values and `kString`
/// values share the same representation but remain distinct declared types.
enum class DataType {
  kBool = 0,
  kInt,
  kReal,
  kString,
  kBlob,
  kService,
};

/// DDL spelling of a type, e.g. "INTEGER".
const char* DataTypeToString(DataType type);

/// Parses a DDL type name (case-insensitive). Accepts BOOLEAN/BOOL,
/// INTEGER/INT, REAL/DOUBLE/FLOAT, STRING/VARCHAR, BLOB, SERVICE.
Result<DataType> DataTypeFromString(std::string_view name);

/// True if values of `from` can be stored in an attribute declared `to`
/// without loss of meaning (identity, int→real widening, string↔service).
bool IsAssignableTo(DataType from, DataType to);

}  // namespace serena

#endif  // SERENA_TYPES_DATA_TYPE_H_
