#include "types/tuple.h"

#include <ostream>

#include "common/hash.h"

namespace serena {

Tuple Tuple::Project(const std::vector<std::size_t>& indices) const {
  std::vector<Value> projected;
  projected.reserve(indices.size());
  for (std::size_t i : indices) {
    projected.push_back(values_[i]);
  }
  return Tuple(std::move(projected));
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> combined;
  combined.reserve(values_.size() + other.values_.size());
  combined.insert(combined.end(), values_.begin(), values_.end());
  combined.insert(combined.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(combined));
}

std::string Tuple::ToString() const {
  std::string result = "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) result += ", ";
    result += values_[i].ToString();
  }
  result += ")";
  return result;
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  const std::size_t n = std::min(values_.size(), other.values_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

std::uint64_t Tuple::Hash() const {
  std::uint64_t h = 0x5e7e9a5e7e9a5e7eULL;
  for (const Value& v : values_) {
    h = HashCombine(h, v.Hash());
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace serena
