#include "types/data_type.h"

#include "common/string_util.h"

namespace serena {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt:
      return "INTEGER";
    case DataType::kReal:
      return "REAL";
    case DataType::kString:
      return "STRING";
    case DataType::kBlob:
      return "BLOB";
    case DataType::kService:
      return "SERVICE";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "boolean" || lower == "bool") return DataType::kBool;
  if (lower == "integer" || lower == "int") return DataType::kInt;
  if (lower == "real" || lower == "double" || lower == "float") {
    return DataType::kReal;
  }
  if (lower == "string" || lower == "varchar") return DataType::kString;
  if (lower == "blob") return DataType::kBlob;
  if (lower == "service") return DataType::kService;
  return Status::ParseError("unknown data type: ", std::string(name));
}

bool IsAssignableTo(DataType from, DataType to) {
  if (from == to) return true;
  if (from == DataType::kInt && to == DataType::kReal) return true;
  if (from == DataType::kString && to == DataType::kService) return true;
  if (from == DataType::kService && to == DataType::kString) return true;
  return false;
}

}  // namespace serena
