#ifndef SERENA_TYPES_VALUE_H_
#define SERENA_TYPES_VALUE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace serena {

/// A binary payload (e.g. the `photo BLOB` output of takePhoto, Table 1).
using Blob = std::vector<std::uint8_t>;

/// One constant from the paper's countable domain D (§2.3.1).
///
/// A `Value` is a tagged union over the runtime representations of the DDL
/// types. Service references (§2.2) are plain string values; the SERVICE
/// tag lives at the schema level, not here.
class Value {
 public:
  /// Default-constructed value is the boolean `false`; prefer the typed
  /// factories below.
  Value() : repr_(false) {}

  static Value Bool(bool v) { return Value(Repr(std::in_place_index<0>, v)); }
  static Value Int(std::int64_t v) {
    return Value(Repr(std::in_place_index<1>, v));
  }
  static Value Real(double v) { return Value(Repr(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Repr(std::in_place_index<3>, std::move(v)));
  }
  static Value BlobValue(Blob v) {
    return Value(Repr(std::in_place_index<4>, std::move(v)));
  }

  /// The runtime type of the stored representation. String and Service
  /// share the string representation, so this never returns kService.
  DataType type() const;

  bool is_bool() const { return repr_.index() == 0; }
  bool is_int() const { return repr_.index() == 1; }
  bool is_real() const { return repr_.index() == 2; }
  bool is_string() const { return repr_.index() == 3; }
  bool is_blob() const { return repr_.index() == 4; }
  /// True for int or real.
  bool is_numeric() const { return is_int() || is_real(); }

  bool bool_value() const { return std::get<0>(repr_); }
  std::int64_t int_value() const { return std::get<1>(repr_); }
  double real_value() const { return std::get<2>(repr_); }
  const std::string& string_value() const { return std::get<3>(repr_); }
  const Blob& blob_value() const { return std::get<4>(repr_); }

  /// Numeric value widened to double (int or real only).
  double AsDouble() const;

  /// True if the value's runtime type may populate an attribute declared
  /// with `declared` (service attributes accept strings, reals accept ints).
  bool ConformsTo(DataType declared) const;

  /// Coerces to the declared type where lossless (int→real); otherwise
  /// returns the value unchanged.
  Value CoerceTo(DataType declared) const;

  /// Printable form; strings are quoted, blobs abbreviated as `<blob:N>`.
  std::string ToString() const;

  /// Equality: same runtime type and equal payload, except that numeric
  /// values compare by numeric value (Int(2) == Real(2.0)), matching the
  /// natural-join semantics over D.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for deterministic sorting of relations. Orders first by a
  /// type rank (numerics together), then by payload.
  bool operator<(const Value& other) const;

  /// Stable (cross-run) hash consistent with operator==.
  std::uint64_t Hash() const;

 private:
  using Repr = std::variant<bool, std::int64_t, double, std::string, Blob>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// Parses a literal: true/false, integer, real, or quoted/unquoted string.
Result<Value> ParseValueLiteral(std::string_view text, DataType declared);

}  // namespace serena

#endif  // SERENA_TYPES_VALUE_H_
