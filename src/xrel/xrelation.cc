#include "xrel/xrelation.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace serena {

XRelation::XRelation(ExtendedSchemaPtr schema) : schema_(std::move(schema)) {
  SERENA_CHECK(schema_ != nullptr);
}

Result<bool> XRelation::Insert(Tuple tuple) {
  SERENA_RETURN_NOT_OK(schema_->ValidateTuple(tuple));
  return InsertUnchecked(std::move(tuple));
}

bool XRelation::InsertUnchecked(Tuple tuple) {
  const std::uint64_t hash = tuple.Hash();
  return InsertHashed(std::move(tuple), hash);
}

bool XRelation::InsertHashed(Tuple tuple, std::uint64_t hash) {
  const auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (tuples_[it->second] == tuple) return false;
  }
  index_.emplace(hash, tuples_.size());
  tuples_.push_back(std::move(tuple));
  return true;
}

void XRelation::Reserve(std::size_t n) {
  tuples_.reserve(n);
  index_.reserve(n);
}

bool XRelation::Erase(const Tuple& tuple) {
  const std::uint64_t h = tuple.Hash();
  const auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (tuples_[it->second] == tuple) {
      const std::size_t victim = it->second;
      const std::size_t last = tuples_.size() - 1;
      index_.erase(it);
      if (victim != last) {
        // Move the last tuple into the hole and fix its index entry.
        const std::uint64_t last_hash = tuples_[last].Hash();
        tuples_[victim] = std::move(tuples_[last]);
        const auto [lb, le] = index_.equal_range(last_hash);
        for (auto jt = lb; jt != le; ++jt) {
          if (jt->second == last) {
            jt->second = victim;
            break;
          }
        }
      }
      tuples_.pop_back();
      return true;
    }
  }
  return false;
}

bool XRelation::Contains(const Tuple& tuple) const {
  const std::uint64_t h = tuple.Hash();
  const auto [begin, end] = index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (tuples_[it->second] == tuple) return true;
  }
  return false;
}

void XRelation::Clear() {
  tuples_.clear();
  index_.clear();
}

Result<Value> XRelation::ProjectValue(const Tuple& tuple,
                                      std::string_view attribute) const {
  const auto coord = schema_->CoordinateOf(attribute);
  if (!coord.has_value()) {
    return Status::InvalidArgument("cannot project tuple onto '",
                                   std::string(attribute),
                                   "': virtual or missing attribute");
  }
  if (*coord >= tuple.size()) {
    return Status::OutOfRange("tuple too short for coordinate ", *coord);
  }
  return tuple[*coord];
}

std::vector<Tuple> XRelation::Sorted() const {
  std::vector<Tuple> sorted = tuples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool XRelation::SetEquals(const XRelation& other) const {
  if (!schema_->SameAttributes(other.schema())) return false;
  if (size() != other.size()) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

std::string XRelation::ToTableString() const {
  std::ostringstream os;
  const auto& attrs = schema_->attributes();
  // Compute column widths from header and data.
  std::vector<std::size_t> widths(attrs.size());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    widths[i] = attrs[i].name.size();
  }
  for (const Tuple& t : Sorted()) {
    std::vector<std::string> row;
    row.reserve(attrs.size());
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      std::string cell;
      if (attrs[i].is_virtual()) {
        cell = "*";
      } else {
        const auto coord = schema_->CoordinateOf(attrs[i].name);
        cell = t[*coord].ToString();
      }
      widths[i] = std::max(widths[i], cell.size());
      row.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i] << std::string(widths[i] - cells[i].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  std::vector<std::string> header;
  header.reserve(attrs.size());
  for (const Attribute& attr : attrs) header.push_back(attr.name);
  emit_row(header);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

}  // namespace serena
