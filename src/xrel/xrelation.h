#ifndef SERENA_XREL_XRELATION_H_
#define SERENA_XREL_XRELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "schema/extended_schema.h"
#include "types/tuple.h"

namespace serena {

/// An extended relation, or X-Relation (Def. 3): a finite *set* of tuples
/// over an extended relation schema. Tuples are elements of
/// D^|realSchema(R)| — virtual attributes carry no coordinate.
///
/// Set semantics are maintained on insertion (duplicates are ignored),
/// matching the paper's definition. Iteration order is insertion order;
/// use `Sorted()` for canonical output.
class XRelation {
 public:
  /// An empty X-Relation over `schema` (must be non-null).
  explicit XRelation(ExtendedSchemaPtr schema);

  const ExtendedSchema& schema() const { return *schema_; }
  const ExtendedSchemaPtr& schema_ptr() const { return schema_; }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Validates the tuple against the schema's real attributes, then
  /// inserts it if not already present. Returns true if inserted.
  Result<bool> Insert(Tuple tuple);

  /// Insertion without validation for operator internals that construct
  /// tuples known to be schema-conformant. Still deduplicates.
  bool InsertUnchecked(Tuple tuple);

  /// Like `InsertUnchecked`, with the tuple's content hash supplied by a
  /// caller that already knows it (stream entries hash once at append
  /// time; the vectorized collect carries the hash through the
  /// pipeline). `hash` must equal `tuple.Hash()`.
  bool InsertHashed(Tuple tuple, std::uint64_t hash);

  /// Pre-sizes tuple storage and the dedup index for `n` insertions.
  void Reserve(std::size_t n);

  /// Removes a tuple. Returns true if it was present.
  bool Erase(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const;

  void Clear();

  /// t[A] for a real attribute A (Def. 4) on an arbitrary tuple of this
  /// relation's schema.
  Result<Value> ProjectValue(const Tuple& tuple,
                             std::string_view attribute) const;

  /// Tuples in canonical (lexicographic) order.
  std::vector<Tuple> Sorted() const;

  /// Set equality with another relation over an attribute-identical schema.
  bool SetEquals(const XRelation& other) const;

  /// ASCII table rendering: header row of all attributes (virtual ones
  /// shown with '*' values, as in the paper's examples), then tuples in
  /// canonical order.
  std::string ToTableString() const;

 private:
  ExtendedSchemaPtr schema_;
  std::vector<Tuple> tuples_;
  // Dedup index: hash of tuple -> indices into tuples_ with that hash.
  std::unordered_multimap<std::uint64_t, std::size_t> index_;
};

}  // namespace serena

#endif  // SERENA_XREL_XRELATION_H_
