#include "xrel/environment.h"

namespace serena {

Status Environment::AddPrototype(PrototypePtr prototype) {
  if (prototype == nullptr) {
    return Status::InvalidArgument("null prototype");
  }
  const std::string name = prototype->name();
  if (!prototypes_.emplace(name, std::move(prototype)).second) {
    return Status::AlreadyExists("prototype '", name, "' already declared");
  }
  return Status::OK();
}

Result<PrototypePtr> Environment::GetPrototype(const std::string& name) const {
  const auto it = prototypes_.find(name);
  if (it == prototypes_.end()) {
    return Status::NotFound("prototype '", name, "' is not declared");
  }
  return it->second;
}

bool Environment::HasPrototype(const std::string& name) const {
  return prototypes_.count(name) > 0;
}

std::vector<std::string> Environment::PrototypeNames() const {
  std::vector<std::string> names;
  names.reserve(prototypes_.size());
  for (const auto& [name, proto] : prototypes_) names.push_back(name);
  return names;
}

Status Environment::CheckUrsa(const ExtendedSchema& schema) const {
  for (const auto& [name, relation] : relations_) {
    if (relation.schema().name() == schema.name()) continue;
    for (const Attribute& attr : schema.attributes()) {
      const Attribute* existing = relation.schema().FindAttribute(attr.name);
      if (existing != nullptr && existing->type != attr.type) {
        return Status::FailedPrecondition(
            "URSA violation: attribute '", attr.name, "' has type ",
            DataTypeToString(attr.type), " in '", schema.name(),
            "' but type ", DataTypeToString(existing->type),
            " in existing relation '", name, "'");
      }
    }
  }
  return Status::OK();
}

Status Environment::AddRelation(ExtendedSchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null schema");
  }
  if (schema->name().empty()) {
    return Status::InvalidArgument("relation schema must be named");
  }
  if (relations_.count(schema->name()) > 0) {
    return Status::AlreadyExists("relation '", schema->name(),
                                 "' already exists");
  }
  SERENA_RETURN_NOT_OK(CheckUrsa(*schema));
  // Binding-pattern prototypes must be declared in the catalog.
  for (const BindingPattern& bp : schema->binding_patterns()) {
    if (!HasPrototype(bp.prototype().name())) {
      return Status::FailedPrecondition(
          "relation '", schema->name(), "' uses undeclared prototype '",
          bp.prototype().name(), "'");
    }
  }
  const std::string name = schema->name();
  relations_.emplace(name, XRelation(std::move(schema)));
  return Status::OK();
}

Status Environment::PutRelation(XRelation relation) {
  const std::string name = relation.schema().name();
  if (name.empty()) {
    return Status::InvalidArgument("relation schema must be named");
  }
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    SERENA_RETURN_NOT_OK(CheckUrsa(relation.schema()));
    relations_.emplace(name, std::move(relation));
  } else {
    it->second = std::move(relation);
  }
  return Status::OK();
}

Status Environment::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation '", name, "' does not exist");
  }
  return Status::OK();
}

Result<const XRelation*> Environment::GetRelation(
    const std::string& name) const {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '", name, "' does not exist");
  }
  return &it->second;
}

Result<XRelation*> Environment::GetMutableRelation(const std::string& name) {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '", name, "' does not exist");
  }
  return &it->second;
}

bool Environment::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Environment::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

}  // namespace serena
