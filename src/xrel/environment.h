#ifndef SERENA_XREL_ENVIRONMENT_H_
#define SERENA_XREL_ENVIRONMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "service/prototype.h"
#include "service/service_registry.h"
#include "xrel/xrelation.h"

namespace serena {

/// A relational pervasive environment (Def. 5/6 region of §2.3): the
/// extension of "database" to pervasive settings — a set of named
/// X-Relations plus the prototype catalog and the set of currently
/// available services.
///
/// The environment also owns the logical clock: all query evaluation is
/// pinned to `clock().now()` unless an explicit instant is supplied.
///
/// The Universal Relation Schema Assumption (URSA, §2.3.2) is enforced
/// opportunistically: when a relation is added, any attribute name shared
/// with an existing relation must carry the same type.
class Environment {
 public:
  Environment() = default;

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // --- Prototype catalog -------------------------------------------------

  /// Registers a prototype declaration. Fails on duplicate names.
  Status AddPrototype(PrototypePtr prototype);

  Result<PrototypePtr> GetPrototype(const std::string& name) const;
  bool HasPrototype(const std::string& name) const;
  /// All prototype names, sorted.
  std::vector<std::string> PrototypeNames() const;

  // --- X-Relations --------------------------------------------------------

  /// Creates an empty X-Relation named after its schema. Fails if a
  /// relation with this name exists or URSA is violated.
  Status AddRelation(ExtendedSchemaPtr schema);

  /// Replaces or creates a relation's contents wholesale.
  Status PutRelation(XRelation relation);

  Status DropRelation(const std::string& name);

  Result<const XRelation*> GetRelation(const std::string& name) const;
  Result<XRelation*> GetMutableRelation(const std::string& name);
  bool HasRelation(const std::string& name) const;
  /// All relation names, sorted.
  std::vector<std::string> RelationNames() const;

  // --- Services and time ---------------------------------------------------

  ServiceRegistry& registry() { return registry_; }
  const ServiceRegistry& registry() const { return registry_; }

  LogicalClock& clock() { return clock_; }
  const LogicalClock& clock() const { return clock_; }

 private:
  /// URSA: a shared attribute name must denote the same data (same type).
  Status CheckUrsa(const ExtendedSchema& schema) const;

  std::map<std::string, PrototypePtr> prototypes_;
  std::map<std::string, XRelation> relations_;
  ServiceRegistry registry_;
  LogicalClock clock_;
};

}  // namespace serena

#endif  // SERENA_XREL_ENVIRONMENT_H_
