#include "common/logging.h"

namespace serena {

LogLevel LogConfig::threshold_ = LogLevel::kWarning;

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= LogConfig::threshold()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace serena
