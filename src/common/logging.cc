#include "common/logging.h"

#include "common/string_util.h"

namespace serena {

std::optional<LogLevel> LogLevelFromName(std::string_view name) {
  if (EqualsIgnoreCase(name, "debug")) return LogLevel::kDebug;
  if (EqualsIgnoreCase(name, "info")) return LogLevel::kInfo;
  if (EqualsIgnoreCase(name, "warning") || EqualsIgnoreCase(name, "warn")) {
    return LogLevel::kWarning;
  }
  if (EqualsIgnoreCase(name, "error")) return LogLevel::kError;
  return std::nullopt;
}

namespace {

LogLevel ThresholdFromEnv() {
  const char* level = std::getenv("SERENA_LOG");
  if (level == nullptr) return LogLevel::kWarning;
  return LogLevelFromName(level).value_or(LogLevel::kWarning);
}

}  // namespace

LogLevel LogConfig::threshold_ = ThresholdFromEnv();

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= LogConfig::threshold()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace serena
