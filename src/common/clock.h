#ifndef SERENA_COMMON_CLOCK_H_
#define SERENA_COMMON_CLOCK_H_

#include <cstdint>

namespace serena {

/// A discrete time instant τ from the paper's ordered time domain T (§3.2).
///
/// All query evaluation — including every service invocation a query
/// triggers — happens "at" one logical instant; services are deterministic
/// within an instant.
using Timestamp = std::int64_t;

/// The logical clock driving a relational pervasive environment.
///
/// The clock only moves forward. Continuous queries are evaluated once per
/// instant; one-shot queries are evaluated at the instant current when they
/// are submitted.
class LogicalClock {
 public:
  LogicalClock() = default;
  explicit LogicalClock(Timestamp start) : now_(start) {}

  /// The current instant.
  Timestamp now() const { return now_; }

  /// Advances to the next instant and returns it.
  Timestamp Tick() { return ++now_; }

  /// Advances by `delta` (>= 0) instants and returns the new instant.
  Timestamp Advance(Timestamp delta) {
    if (delta > 0) now_ += delta;
    return now_;
  }

 private:
  Timestamp now_ = 0;
};

}  // namespace serena

#endif  // SERENA_COMMON_CLOCK_H_
