#ifndef SERENA_COMMON_STATUS_H_
#define SERENA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace serena {

/// Canonical error codes used throughout the Serena library.
///
/// The library never throws exceptions: every fallible operation returns a
/// `Status` (or a `Result<T>`, see result.h). The codes mirror the usual
/// database-engine taxonomy (Arrow / RocksDB style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kTypeMismatch,
  kParseError,
  kUnimplemented,
  kUnavailable,
  kTimeout,
  kInternal,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A `Status` carries either success (`ok()`) or an error code plus message.
///
/// Usage:
/// ```
/// Status DoThing() {
///   if (bad) return Status::InvalidArgument("bad thing: ", detail);
///   return Status::OK();
/// }
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

  // Factory helpers, one per error code. Each concatenates its arguments
  // into the message.
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status TypeMismatch(Args&&... args) {
    return Make(StatusCode::kTypeMismatch, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Timeout(Args&&... args) {
    return Make(StatusCode::kTimeout, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string message;
    (AppendToMessage(&message, std::forward<Args>(args)), ...);
    return Status(code, std::move(message));
  }

  static void AppendToMessage(std::string* message, const std::string& part) {
    message->append(part);
  }
  static void AppendToMessage(std::string* message, const char* part) {
    message->append(part);
  }
  static void AppendToMessage(std::string* message, char part) {
    message->push_back(part);
  }
  template <typename T>
  static void AppendToMessage(std::string* message, const T& part) {
    message->append(std::to_string(part));
  }

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace serena

/// Propagates a non-OK `Status` to the caller.
#define SERENA_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::serena::Status serena_status_ = (expr);      \
    if (!serena_status_.ok()) return serena_status_; \
  } while (false)

#endif  // SERENA_COMMON_STATUS_H_
