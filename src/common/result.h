#ifndef SERENA_COMMON_RESULT_H_
#define SERENA_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace serena {

/// `Result<T>` holds either a value of type `T` or a non-OK `Status`.
///
/// This is the library's equivalent of `arrow::Result` / `absl::StatusOr`.
/// Constructing a `Result` from an OK status is a programming error and is
/// converted to an Internal error.
///
/// ```
/// Result<int> ParsePort(std::string_view s);
/// ...
/// SERENA_ASSIGN_OR_RETURN(int port, ParsePort(arg));
/// ```
template <typename T>
class Result {
 public:
  /// Constructs from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result<T> constructed from an OK status");
    }
  }

  /// Constructs from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Accesses the value. Requires `ok()`.
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    EnsureOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out. Requires `ok()`.
  T MoveValueOrDie() { return std::get<T>(std::move(repr_)); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error status: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

}  // namespace serena

#define SERENA_CONCAT_IMPL_(x, y) x##y
#define SERENA_CONCAT_(x, y) SERENA_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a `Result<T>`); on error returns the status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define SERENA_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  SERENA_ASSIGN_OR_RETURN_IMPL_(                                     \
      SERENA_CONCAT_(serena_result_, __LINE__), lhs, rexpr)

#define SERENA_ASSIGN_OR_RETURN_IMPL_(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                  \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).ValueOrDie()

#endif  // SERENA_COMMON_RESULT_H_
