#include "common/random.h"

namespace serena {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words with successive SplitMix64 outputs.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Irwin-Hall approximation: sum of 12 uniforms minus 6 has mean 0,
  // variance 1. Adequate for simulated sensor noise.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += NextDouble();
  return sum - 6.0;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace serena
