#ifndef SERENA_COMMON_RANDOM_H_
#define SERENA_COMMON_RANDOM_H_

#include <cstdint>

namespace serena {

/// Mixes a 64-bit value (the SplitMix64 finalizer). Used both for seeding
/// and for stateless "hash of (service, input, instant)" determinism in the
/// simulated services.
std::uint64_t Mix64(std::uint64_t x);

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Every stochastic component of the simulation (network latency, sensor
/// random walks, workload generators) draws from an explicitly seeded
/// `Rng`, so whole-system runs are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Approximately standard-normal double (sum-of-uniforms method).
  double NextGaussian();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace serena

#endif  // SERENA_COMMON_RANDOM_H_
