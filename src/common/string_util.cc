#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace serena {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> result;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      result.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return result;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StringFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<std::size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

}  // namespace serena
