#ifndef SERENA_COMMON_THREAD_POOL_H_
#define SERENA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace serena {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// A bounded, joinable worker pool — the substrate of every concurrent
/// code path in the engine (batched service invocation, parallel query
/// steps).
///
/// Design rules that keep the engine deterministic and deadlock-free:
///  - A pool with 0 workers is *serial*: every task runs inline on the
///    calling thread, in submission order. This is the `SERENA_THREADS=0`
///    fallback that reproduces pre-parallel behavior exactly.
///  - `ParallelFor` makes the calling thread participate in the work, so
///    it may be called from inside a pool task (nested parallelism, e.g.
///    a parallel executor tick whose query steps run parallel invokes)
///    without ever deadlocking on pool capacity.
///  - The task queue is bounded (`kMaxQueuedTasks`); beyond the bound the
///    submitting thread runs the task inline — backpressure that cannot
///    deadlock.
class ThreadPool {
 public:
  /// Queue bound beyond which `Execute` degrades to inline execution.
  static constexpr std::size_t kMaxQueuedTasks = 4096;

  /// A pool with `num_threads` workers; 0 = serial mode (see above).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// True when the pool has no workers and runs everything inline.
  bool serial() const { return workers_.empty(); }

  /// Enqueues `task` for execution on a worker. Runs it inline when the
  /// pool is serial, shutting down, or the queue is at its bound.
  void Execute(std::function<void()> task);

  /// Futures flavor of `Execute`: returns a future for the task's result;
  /// exceptions propagate through the future.
  template <typename F>
  auto Submit(F f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> future = task->get_future();
    Execute([task] { (*task)(); });
    return future;
  }

  /// Runs `body(0) .. body(n-1)`, returning once all iterations finished.
  /// Iterations may run on any thread and in any order — callers write
  /// into pre-sized, index-addressed slots for deterministic results. The
  /// calling thread participates, so nested ParallelFor cannot deadlock.
  ///
  /// If iterations throw, the exception of the smallest throwing index is
  /// rethrown after all iterations completed (serial mode instead stops
  /// at the first throwing iteration, like a plain loop).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

  /// The thread count requested via the `SERENA_THREADS` environment
  /// variable: 0 = serial, any other integer = that many workers; unset
  /// or unparseable = the hardware concurrency.
  static std::size_t ConfiguredThreadCount();

  /// The process-wide pool, sized by `ConfiguredThreadCount()` on first
  /// use. All engine-internal parallelism defaults to this pool.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // serena.pool.* instruments, resolved once at construction.
  obs::Counter* tasks_counter_;
  obs::Gauge* queue_depth_gauge_;
};

}  // namespace serena

#endif  // SERENA_COMMON_THREAD_POOL_H_
