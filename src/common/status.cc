#include "common/status.h"

namespace serena {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace serena
