#ifndef SERENA_COMMON_LOGGING_H_
#define SERENA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace serena {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Parses a level name ("debug", "info", "warning"/"warn", "error";
/// case-insensitive). nullopt for anything else.
std::optional<LogLevel> LogLevelFromName(std::string_view name);

/// Global log configuration. Messages below `threshold` are dropped.
///
/// The initial threshold honors the `SERENA_LOG` environment variable
/// (debug/info/warning/error, read once at startup); unset or
/// unrecognized values fall back to warning.
class LogConfig {
 public:
  static LogLevel threshold() { return threshold_; }
  static void set_threshold(LogLevel level) { threshold_ = level; }

 private:
  static LogLevel threshold_;
};

/// One log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace serena

#define SERENA_LOG(level)                                              \
  ::serena::LogMessage(::serena::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal invariant check: aborts with a message when `condition` is false.
#define SERENA_CHECK(condition)                                          \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__     \
                << ": " #condition << std::endl;                         \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#endif  // SERENA_COMMON_LOGGING_H_
