#ifndef SERENA_COMMON_STRING_UTIL_H_
#define SERENA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace serena {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII lower-casing.
std::string ToLower(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace serena

#endif  // SERENA_COMMON_STRING_UTIL_H_
