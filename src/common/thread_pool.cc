#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace serena {

ThreadPool::ThreadPool(std::size_t num_threads) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  tasks_counter_ = &metrics.GetCounter("serena.pool.tasks");
  queue_depth_gauge_ = &metrics.GetGauge("serena.pool.queue_depth");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping, so joining never abandons an
      // accepted task.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::MetricsRegistry::Global().enabled()) {
      queue_depth_gauge_->Add(-1);
    }
    task();
  }
}

void ThreadPool::Execute(std::function<void()> task) {
  if (obs::MetricsRegistry::Global().enabled()) {
    tasks_counter_->Increment();
  }
  // Capture the submitter's span context so work that lands on a worker
  // thread still parents under the span that caused it (the causal-trace
  // propagation point for every concurrent code path, ParallelFor
  // helpers included). Only pay the wrapper while tracing is on.
  if (obs::TraceBuffer::Global().enabled()) {
    if (const obs::SpanContext context = obs::CurrentSpanContext();
        context.valid()) {
      task = [context, inner = std::move(task)] {
        obs::ScopedSpanContext scope(context);
        inner();
      };
    }
  }
  if (!serial()) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_ && queue_.size() < kMaxQueuedTasks) {
      queue_.push_back(std::move(task));
      lock.unlock();
      if (obs::MetricsRegistry::Global().enabled()) {
        queue_depth_gauge_->Add(1);
      }
      cv_.notify_one();
      return;
    }
  }
  // Serial mode, saturated queue, or shutting down: run on the caller.
  task();
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (serial() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Helpers and the caller all pull indices from one atomic cursor. The
  // state is shared-owned so a helper that wakes up after the loop is
  // finished (it will see next >= n) still has valid memory to read.
  struct SharedState {
    SharedState(std::size_t n, const std::function<void(std::size_t)>& body)
        : n(n), body(body) {}
    const std::size_t n;
    // Safe to hold by reference: every dereference happens before the
    // blocking wait below returns (done == n).
    const std::function<void(std::size_t)>& body;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
  };
  auto state = std::make_shared<SharedState>(n, body);

  auto drain = [state] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      try {
        state->body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (i < state->error_index) {
          state->error_index = i;
          state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(num_threads(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) Execute(drain);
  drain();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

std::size_t ThreadPool::ConfiguredThreadCount() {
  if (const char* env = std::getenv("SERENA_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<std::size_t>(std::min<unsigned long>(value, 256));
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 4 : hardware;
}

ThreadPool& ThreadPool::Shared() {
  // Function-local static: constructed after (and therefore destroyed
  // before) the metrics registry its constructor resolves instruments
  // from, so workers never outlive the instruments they record into.
  static ThreadPool pool(ConfiguredThreadCount());
  return pool;
}

}  // namespace serena
