#ifndef SERENA_COMMON_HASH_H_
#define SERENA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace serena {

/// Combines a hash value into an accumulator (boost::hash_combine style,
/// strengthened with a 64-bit mix).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// FNV-1a over a byte string; stable across runs (unlike std::hash).
inline std::uint64_t StableHash(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace serena

#endif  // SERENA_COMMON_HASH_H_
