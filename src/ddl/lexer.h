#ifndef SERENA_DDL_LEXER_H_
#define SERENA_DDL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace serena {

/// Token categories of the Serena languages (DDL and Algebra Language).
enum class TokenType {
  kIdentifier,  // sendMessage, contacts, VIRTUAL (keywords resolved later)
  kString,      // 'Bonjour!'
  kInteger,     // 42
  kReal,        // 35.5
  kSymbol,      // ( ) [ ] , ; : := -> = != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // Identifier/symbol spelling or literal payload.
  std::size_t line = 1;
  std::size_t column = 1;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive identifier/keyword match.
  bool IsIdent(std::string_view ident) const;
  bool IsSymbol(std::string_view symbol) const {
    return type == TokenType::kSymbol && text == symbol;
  }

  std::string Describe() const;
};

/// Tokenizes Serena DDL / Algebra Language input. Comments run from `--`
/// to end of line. Strings use single quotes with `''` as the escape.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// A cursor over a token stream with the usual recursive-descent helpers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(std::size_t ahead = 0) const;
  const Token& Next();
  bool AtEnd() const { return Peek().Is(TokenType::kEnd); }

  /// Consumes the next token if it matches; returns whether it did.
  bool ConsumeIdent(std::string_view ident);
  bool ConsumeSymbol(std::string_view symbol);

  /// Consumes a required token or returns a ParseError mentioning it.
  Result<Token> ExpectIdentifier(const char* what);
  Status ExpectSymbol(std::string_view symbol);
  Status ExpectIdent(std::string_view ident);

  Status ErrorHere(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace serena

#endif  // SERENA_DDL_LEXER_H_
