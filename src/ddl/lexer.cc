#include "ddl/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace serena {

bool Token::IsIdent(std::string_view ident) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, ident);
}

std::string Token::Describe() const {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kString:
      return "string '" + text + "'";
    case TokenType::kInteger:
      return "integer " + text;
    case TokenType::kReal:
      return "real " + text;
    case TokenType::kSymbol:
      return "'" + text + "'";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;

  auto make = [&](TokenType type, std::string text) {
    Token token;
    token.type = type;
    token.text = std::move(text);
    token.line = line;
    token.column = column;
    tokens.push_back(std::move(token));
  };
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < input.size(); ++k, ++i) {
      if (input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment: -- ... \n
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    // String literal with '' escape.
    if (c == '\'') {
      std::string value;
      std::size_t j = i + 1;
      bool closed = false;
      while (j < input.size()) {
        if (input[j] == '\'') {
          if (j + 1 < input.size() && input[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          break;
        }
        value.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line ",
                                  line);
      }
      make(TokenType::kString, value);
      advance(j + 1 - i);
      continue;
    }
    // Numbers (integers and reals); a leading '-' is handled as a symbol
    // and folded by the parser where a signed literal is expected.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < input.size() && input[j] == '.' && j + 1 < input.size() &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_real = true;
        ++j;
        while (j < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      make(is_real ? TokenType::kReal : TokenType::kInteger,
           std::string(input.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_' || input[j] == '@' || input[j] == '.')) {
        ++j;
      }
      make(TokenType::kIdentifier, std::string(input.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    // Multi-character symbols first.
    const std::string_view rest = input.substr(i);
    const char* two_char[] = {":=", "->", "!=", "<=", ">=", "<>"};
    bool matched = false;
    for (const char* sym : two_char) {
      if (rest.substr(0, 2) == sym) {
        make(TokenType::kSymbol, sym == std::string_view("<>") ? "!=" : sym);
        advance(2);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    const std::string single(1, c);
    if (single.find_first_of("()[],;:=<>-") != std::string::npos) {
      make(TokenType::kSymbol, single);
      advance(1);
      continue;
    }
    return Status::ParseError("unexpected character '", single, "' at line ",
                              line, " column ", column);
  }
  make(TokenType::kEnd, "");
  return tokens;
}

const Token& TokenCursor::Peek(std::size_t ahead) const {
  const std::size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[index];
}

const Token& TokenCursor::Next() {
  const Token& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool TokenCursor::ConsumeIdent(std::string_view ident) {
  if (Peek().IsIdent(ident)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::ConsumeSymbol(std::string_view symbol) {
  if (Peek().IsSymbol(symbol)) {
    Next();
    return true;
  }
  return false;
}

Result<Token> TokenCursor::ExpectIdentifier(const char* what) {
  if (!Peek().Is(TokenType::kIdentifier)) {
    return Status::ParseError("expected ", what, " but found ",
                              Peek().Describe(), " at line ", Peek().line);
  }
  return Next();
}

Status TokenCursor::ExpectSymbol(std::string_view symbol) {
  if (!ConsumeSymbol(symbol)) {
    return Status::ParseError("expected '", std::string(symbol),
                              "' but found ", Peek().Describe(), " at line ",
                              Peek().line);
  }
  return Status::OK();
}

Status TokenCursor::ExpectIdent(std::string_view ident) {
  if (!ConsumeIdent(ident)) {
    return Status::ParseError("expected keyword '", std::string(ident),
                              "' but found ", Peek().Describe(), " at line ",
                              Peek().line);
  }
  return Status::OK();
}

Status TokenCursor::ErrorHere(const std::string& message) const {
  return Status::ParseError(message, " at line ", Peek().line, " (found ",
                            Peek().Describe(), ")");
}

}  // namespace serena
