#ifndef SERENA_DDL_CATALOG_H_
#define SERENA_DDL_CATALOG_H_

#include <functional>
#include <string>
#include <vector>

#include "ddl/ddl_parser.h"
#include "stream/stream_store.h"
#include "xrel/environment.h"

namespace serena {

/// Executes Serena DDL against an environment — the Extended Table
/// Manager's language front end (§5.1).
///
/// - PROTOTYPE declarations populate the environment's prototype catalog.
/// - SERVICE declarations instantiate a service through the configurable
///   `ServiceResolver` and register it; the default resolver builds a
///   `SyntheticService`, so a pure-DDL environment is fully executable.
/// - EXTENDED RELATION creates an empty X-Relation.
/// - EXTENDED STREAM creates an infinite XD-Relation in the stream store.
class SerenaCatalog {
 public:
  /// Produces a service implementation for a SERVICE declaration.
  using ServiceResolver = std::function<Result<ServicePtr>(
      const std::string& id, const std::vector<PrototypePtr>& prototypes)>;

  SerenaCatalog(Environment* env, StreamStore* streams);

  /// Replaces the default (synthetic) resolver.
  void set_service_resolver(ServiceResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// Parses and applies a DDL script (one or more `;`-separated
  /// statements). Statements apply in order; the first failure aborts.
  Status Execute(std::string_view ddl);

  /// Applies one parsed statement.
  Status Apply(const DdlStatement& statement);

 private:
  Status ApplyPrototype(const DdlStatement& statement);
  Status ApplyService(const DdlStatement& statement);
  Status ApplyRelationOrStream(const DdlStatement& statement);
  Status ApplyInsert(const DdlStatement& statement);
  Status ApplyDelete(const DdlStatement& statement);

  Environment* env_;
  StreamStore* streams_;
  ServiceResolver resolver_;
};

}  // namespace serena

#endif  // SERENA_DDL_CATALOG_H_
