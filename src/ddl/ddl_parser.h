#ifndef SERENA_DDL_DDL_PARSER_H_
#define SERENA_DDL_DDL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/extended_schema.h"
#include "service/prototype.h"

namespace serena {

/// Parsed form of the Serena DDL statements (the pseudo-DDL of Tables 1-2,
/// plus a STREAM form for infinite XD-Relations):
///
///   PROTOTYPE sendMessage(address STRING, text STRING)
///       : (sent BOOLEAN) ACTIVE;
///   SERVICE email IMPLEMENTS sendMessage;
///   EXTENDED RELATION contacts (
///     name STRING, address STRING, text STRING VIRTUAL,
///     messenger SERVICE, sent BOOLEAN VIRTUAL
///   ) USING BINDING PATTERNS (
///     sendMessage[messenger](address, text) : (sent)
///   );
///   EXTENDED STREAM temperatures (location STRING, temperature REAL);
///   INSERT INTO contacts VALUES ('Carla', 'carla@elysee.fr', 'email');
///   DELETE FROM contacts WHERE name = 'Carla';
///   DROP RELATION contacts;   DROP STREAM temperatures;
struct DdlStatement {
  enum class Kind {
    kPrototype,
    kService,
    kRelation,
    kStream,
    kInsert,
    kDelete,
    kDropRelation,
    kDropStream,
  };
  Kind kind;

  // kPrototype.
  std::string prototype_name;
  std::vector<Attribute> input_attributes;
  std::vector<Attribute> output_attributes;
  bool active = false;
  bool streaming = false;  ///< §7 streaming binding-pattern extension.

  // kService.
  std::string service_name;
  std::vector<std::string> implemented_prototypes;

  // kRelation / kStream.
  std::string relation_name;
  std::vector<Attribute> attributes;
  struct BindingPatternDecl {
    std::string prototype;
    std::string service_attribute;
    std::vector<std::string> inputs;   // Informative; checked vs prototype.
    std::vector<std::string> outputs;  // Informative; checked vs prototype.
  };
  std::vector<BindingPatternDecl> binding_patterns;

  // kInsert: one row per VALUES group; literals are raw token texts,
  // typed against the target relation's real schema by the catalog.
  struct Literal {
    std::string text;
    bool quoted = false;  // String literal (skip numeric/bool parsing).
  };
  std::vector<std::vector<Literal>> rows;

  // kDelete: the WHERE condition (raw text, parsed as a selection formula
  // by the catalog; empty = delete everything).
  std::string where;
};

/// Parses a sequence of `;`-terminated DDL statements.
Result<std::vector<DdlStatement>> ParseDdl(std::string_view input);

}  // namespace serena

#endif  // SERENA_DDL_DDL_PARSER_H_
