#include "ddl/ddl_parser.h"

#include "ddl/lexer.h"

namespace serena {

namespace {

/// attr_list := [ name TYPE [VIRTUAL] { ',' name TYPE [VIRTUAL] } ]
/// Parses until the closing ')' (not consumed).
Result<std::vector<Attribute>> ParseAttributeList(TokenCursor* cursor,
                                                  bool allow_virtual) {
  std::vector<Attribute> attributes;
  if (cursor->Peek().IsSymbol(")")) return attributes;  // Empty list.
  for (;;) {
    SERENA_ASSIGN_OR_RETURN(Token name,
                            cursor->ExpectIdentifier("attribute name"));
    SERENA_ASSIGN_OR_RETURN(Token type_token,
                            cursor->ExpectIdentifier("attribute type"));
    SERENA_ASSIGN_OR_RETURN(DataType type,
                            DataTypeFromString(type_token.text));
    AttributeKind kind = AttributeKind::kReal;
    if (cursor->ConsumeIdent("VIRTUAL")) {
      if (!allow_virtual) {
        return cursor->ErrorHere(
            "VIRTUAL attributes are not allowed in prototype schemas");
      }
      kind = AttributeKind::kVirtual;
    }
    attributes.emplace_back(name.text, type, kind);
    if (!cursor->ConsumeSymbol(",")) break;
  }
  return attributes;
}

/// name_list := [ name { ',' name } ], until ')' (not consumed).
Result<std::vector<std::string>> ParseNameList(TokenCursor* cursor) {
  std::vector<std::string> names;
  if (cursor->Peek().IsSymbol(")")) return names;
  for (;;) {
    SERENA_ASSIGN_OR_RETURN(Token name, cursor->ExpectIdentifier("name"));
    names.push_back(name.text);
    if (!cursor->ConsumeSymbol(",")) break;
  }
  return names;
}

Result<DdlStatement> ParsePrototype(TokenCursor* cursor) {
  DdlStatement stmt;
  stmt.kind = DdlStatement::Kind::kPrototype;
  SERENA_ASSIGN_OR_RETURN(Token name,
                          cursor->ExpectIdentifier("prototype name"));
  stmt.prototype_name = name.text;
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(stmt.input_attributes,
                          ParseAttributeList(cursor, /*allow_virtual=*/false));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(":"));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(stmt.output_attributes,
                          ParseAttributeList(cursor, /*allow_virtual=*/false));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  // Trailing flags in any order: ACTIVE / PASSIVE / STREAMING.
  for (;;) {
    if (cursor->ConsumeIdent("ACTIVE")) {
      stmt.active = true;
    } else if (cursor->ConsumeIdent("PASSIVE")) {
      stmt.active = false;
    } else if (cursor->ConsumeIdent("STREAMING")) {
      stmt.streaming = true;
    } else {
      break;
    }
  }
  return stmt;
}

Result<DdlStatement> ParseService(TokenCursor* cursor) {
  DdlStatement stmt;
  stmt.kind = DdlStatement::Kind::kService;
  SERENA_ASSIGN_OR_RETURN(Token name,
                          cursor->ExpectIdentifier("service name"));
  stmt.service_name = name.text;
  SERENA_RETURN_NOT_OK(cursor->ExpectIdent("IMPLEMENTS"));
  for (;;) {
    SERENA_ASSIGN_OR_RETURN(Token proto,
                            cursor->ExpectIdentifier("prototype name"));
    stmt.implemented_prototypes.push_back(proto.text);
    if (!cursor->ConsumeSymbol(",")) break;
  }
  return stmt;
}

Result<DdlStatement::BindingPatternDecl> ParseBindingPatternDecl(
    TokenCursor* cursor) {
  DdlStatement::BindingPatternDecl decl;
  SERENA_ASSIGN_OR_RETURN(Token proto,
                          cursor->ExpectIdentifier("prototype name"));
  decl.prototype = proto.text;
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
  SERENA_ASSIGN_OR_RETURN(
      Token service_attr,
      cursor->ExpectIdentifier("service reference attribute"));
  decl.service_attribute = service_attr.text;
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(decl.inputs, ParseNameList(cursor));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(":"));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(decl.outputs, ParseNameList(cursor));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  return decl;
}

Result<DdlStatement> ParseRelationOrStream(TokenCursor* cursor) {
  DdlStatement stmt;
  if (cursor->ConsumeIdent("RELATION")) {
    stmt.kind = DdlStatement::Kind::kRelation;
  } else if (cursor->ConsumeIdent("STREAM")) {
    stmt.kind = DdlStatement::Kind::kStream;
  } else {
    return cursor->ErrorHere("expected RELATION or STREAM after EXTENDED");
  }
  SERENA_ASSIGN_OR_RETURN(Token name,
                          cursor->ExpectIdentifier("relation name"));
  stmt.relation_name = name.text;
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(stmt.attributes,
                          ParseAttributeList(cursor, /*allow_virtual=*/true));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  if (cursor->ConsumeIdent("USING")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectIdent("BINDING"));
    SERENA_RETURN_NOT_OK(cursor->ExpectIdent("PATTERNS"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
    for (;;) {
      SERENA_ASSIGN_OR_RETURN(DdlStatement::BindingPatternDecl decl,
                              ParseBindingPatternDecl(cursor));
      stmt.binding_patterns.push_back(std::move(decl));
      if (!cursor->ConsumeSymbol(",")) break;
    }
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  }
  return stmt;
}

Result<DdlStatement> ParseInsert(TokenCursor* cursor) {
  DdlStatement stmt;
  stmt.kind = DdlStatement::Kind::kInsert;
  SERENA_RETURN_NOT_OK(cursor->ExpectIdent("INTO"));
  SERENA_ASSIGN_OR_RETURN(Token name,
                          cursor->ExpectIdentifier("relation name"));
  stmt.relation_name = name.text;
  SERENA_RETURN_NOT_OK(cursor->ExpectIdent("VALUES"));
  for (;;) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
    std::vector<DdlStatement::Literal> row;
    if (!cursor->Peek().IsSymbol(")")) {
      for (;;) {
        DdlStatement::Literal literal;
        const Token& token = cursor->Peek();
        if (token.Is(TokenType::kString)) {
          literal.text = token.text;
          literal.quoted = true;
          cursor->Next();
        } else if (token.Is(TokenType::kInteger) ||
                   token.Is(TokenType::kReal) ||
                   token.Is(TokenType::kIdentifier)) {
          literal.text = token.text;
          cursor->Next();
        } else if (token.IsSymbol("-")) {
          cursor->Next();
          const Token& number = cursor->Peek();
          if (!number.Is(TokenType::kInteger) &&
              !number.Is(TokenType::kReal)) {
            return cursor->ErrorHere("expected number after '-'");
          }
          literal.text = "-" + number.text;
          cursor->Next();
        } else {
          return cursor->ErrorHere("expected literal value");
        }
        row.push_back(std::move(literal));
        if (!cursor->ConsumeSymbol(",")) break;
      }
    }
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
    if (!cursor->ConsumeSymbol(",")) break;
  }
  return stmt;
}

/// Re-renders one token as source text (for capturing raw WHERE clauses).
std::string TokenToSource(const Token& token) {
  if (token.type != TokenType::kString) return token.text;
  std::string quoted = "'";
  for (char c : token.text) {
    if (c == '\'') quoted += "''";
    else quoted += c;
  }
  quoted += '\'';
  return quoted;
}

Result<DdlStatement> ParseDelete(TokenCursor* cursor) {
  DdlStatement stmt;
  stmt.kind = DdlStatement::Kind::kDelete;
  SERENA_RETURN_NOT_OK(cursor->ExpectIdent("FROM"));
  SERENA_ASSIGN_OR_RETURN(Token name,
                          cursor->ExpectIdentifier("relation name"));
  stmt.relation_name = name.text;
  if (cursor->ConsumeIdent("WHERE")) {
    // Capture the raw condition up to the statement terminator; the
    // catalog parses it as a selection formula against the schema.
    while (!cursor->AtEnd() && !cursor->Peek().IsSymbol(";")) {
      if (!stmt.where.empty()) stmt.where += ' ';
      stmt.where += TokenToSource(cursor->Next());
    }
    if (stmt.where.empty()) {
      return cursor->ErrorHere("expected condition after WHERE");
    }
  }
  return stmt;
}

Result<DdlStatement> ParseDrop(TokenCursor* cursor) {
  DdlStatement stmt;
  if (cursor->ConsumeIdent("RELATION") || cursor->ConsumeIdent("TABLE")) {
    stmt.kind = DdlStatement::Kind::kDropRelation;
  } else if (cursor->ConsumeIdent("STREAM")) {
    stmt.kind = DdlStatement::Kind::kDropStream;
  } else {
    return cursor->ErrorHere("expected RELATION or STREAM after DROP");
  }
  SERENA_ASSIGN_OR_RETURN(Token name, cursor->ExpectIdentifier("name"));
  stmt.relation_name = name.text;
  return stmt;
}

}  // namespace

Result<std::vector<DdlStatement>> ParseDdl(std::string_view input) {
  SERENA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cursor(std::move(tokens));
  std::vector<DdlStatement> statements;
  while (!cursor.AtEnd()) {
    Result<DdlStatement> stmt = Status::OK();
    if (cursor.ConsumeIdent("PROTOTYPE")) {
      stmt = ParsePrototype(&cursor);
    } else if (cursor.ConsumeIdent("SERVICE")) {
      stmt = ParseService(&cursor);
    } else if (cursor.ConsumeIdent("EXTENDED")) {
      stmt = ParseRelationOrStream(&cursor);
    } else if (cursor.ConsumeIdent("INSERT")) {
      stmt = ParseInsert(&cursor);
    } else if (cursor.ConsumeIdent("DELETE")) {
      stmt = ParseDelete(&cursor);
    } else if (cursor.ConsumeIdent("DROP")) {
      stmt = ParseDrop(&cursor);
    } else {
      return cursor.ErrorHere(
          "expected PROTOTYPE, SERVICE, EXTENDED RELATION/STREAM, INSERT, "
          "DELETE or DROP");
    }
    SERENA_RETURN_NOT_OK(stmt.status());
    SERENA_RETURN_NOT_OK(cursor.ExpectSymbol(";"));
    statements.push_back(std::move(*stmt));
  }
  return statements;
}

}  // namespace serena
