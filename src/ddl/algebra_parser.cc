#include "ddl/algebra_parser.h"

#include <cstdlib>

#include "ddl/lexer.h"

namespace serena {

namespace {

// Formula grammar:
//   or_expr   := and_expr { OR and_expr }
//   and_expr  := unary { AND unary }
//   unary     := NOT unary | '(' or_expr ')' | comparison
//   comparison := operand cmp_op operand
//   operand   := identifier | literal
Result<FormulaPtr> ParseOrExpr(TokenCursor* cursor);

Result<Value> ParseLiteral(TokenCursor* cursor) {
  const Token& token = cursor->Peek();
  if (token.Is(TokenType::kString)) {
    cursor->Next();
    return Value::String(token.text);
  }
  bool negative = false;
  if (token.IsSymbol("-")) {
    cursor->Next();
    negative = true;
  }
  const Token& number = cursor->Peek();
  if (number.Is(TokenType::kInteger)) {
    cursor->Next();
    const long long v = std::strtoll(number.text.c_str(), nullptr, 10);
    return Value::Int(negative ? -v : v);
  }
  if (number.Is(TokenType::kReal)) {
    cursor->Next();
    const double v = std::strtod(number.text.c_str(), nullptr);
    return Value::Real(negative ? -v : v);
  }
  if (!negative && number.IsIdent("true")) {
    cursor->Next();
    return Value::Bool(true);
  }
  if (!negative && number.IsIdent("false")) {
    cursor->Next();
    return Value::Bool(false);
  }
  return cursor->ErrorHere("expected literal");
}

bool IsLiteralStart(const Token& token) {
  return token.Is(TokenType::kString) || token.Is(TokenType::kInteger) ||
         token.Is(TokenType::kReal) || token.IsSymbol("-") ||
         token.IsIdent("true") || token.IsIdent("false");
}

Result<Operand> ParseOperand(TokenCursor* cursor) {
  if (cursor->ConsumeSymbol(":")) {
    SERENA_ASSIGN_OR_RETURN(Token name,
                            cursor->ExpectIdentifier("parameter name"));
    return Operand::Param(name.text);
  }
  if (IsLiteralStart(cursor->Peek())) {
    SERENA_ASSIGN_OR_RETURN(Value value, ParseLiteral(cursor));
    return Operand::Const(std::move(value));
  }
  SERENA_ASSIGN_OR_RETURN(Token name,
                          cursor->ExpectIdentifier("attribute name"));
  return Operand::Attr(name.text);
}

Result<CompareOp> ParseCompareOp(TokenCursor* cursor) {
  const Token& token = cursor->Peek();
  if (token.IsSymbol("=")) {
    cursor->Next();
    return CompareOp::kEq;
  }
  if (token.IsSymbol("!=")) {
    cursor->Next();
    return CompareOp::kNe;
  }
  if (token.IsSymbol("<=")) {
    cursor->Next();
    return CompareOp::kLe;
  }
  if (token.IsSymbol(">=")) {
    cursor->Next();
    return CompareOp::kGe;
  }
  if (token.IsSymbol("<")) {
    cursor->Next();
    return CompareOp::kLt;
  }
  if (token.IsSymbol(">")) {
    cursor->Next();
    return CompareOp::kGt;
  }
  if (token.IsIdent("contains")) {
    cursor->Next();
    return CompareOp::kContains;
  }
  return cursor->ErrorHere("expected comparison operator");
}

Result<FormulaPtr> ParseUnary(TokenCursor* cursor) {
  if (cursor->ConsumeIdent("not")) {
    SERENA_ASSIGN_OR_RETURN(FormulaPtr inner, ParseUnary(cursor));
    return Formula::Not(std::move(inner));
  }
  if (cursor->ConsumeSymbol("(")) {
    SERENA_ASSIGN_OR_RETURN(FormulaPtr inner, ParseOrExpr(cursor));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
    return inner;
  }
  SERENA_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(cursor));
  SERENA_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(cursor));
  SERENA_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(cursor));
  return Formula::Compare(std::move(lhs), op, std::move(rhs));
}

Result<FormulaPtr> ParseAndExpr(TokenCursor* cursor) {
  SERENA_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary(cursor));
  while (cursor->ConsumeIdent("and")) {
    SERENA_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUnary(cursor));
    lhs = Formula::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<FormulaPtr> ParseOrExpr(TokenCursor* cursor) {
  SERENA_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAndExpr(cursor));
  while (cursor->ConsumeIdent("or")) {
    SERENA_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAndExpr(cursor));
    lhs = Formula::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

// ---------------------------------------------------------------------------

Result<PlanPtr> ParseExpr(TokenCursor* cursor);

Result<PlanPtr> ParseUnaryOperand(TokenCursor* cursor) {
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseExpr(cursor));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  return child;
}

Result<std::pair<PlanPtr, PlanPtr>> ParseBinaryOperands(TokenCursor* cursor) {
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
  SERENA_ASSIGN_OR_RETURN(PlanPtr left, ParseExpr(cursor));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(","));
  SERENA_ASSIGN_OR_RETURN(PlanPtr right, ParseExpr(cursor));
  SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
  return std::make_pair(std::move(left), std::move(right));
}

Result<PlanPtr> ParseExpr(TokenCursor* cursor) {
  SERENA_ASSIGN_OR_RETURN(Token head,
                          cursor->ExpectIdentifier("operator or relation"));

  if (head.IsIdent("project")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    std::vector<std::string> attributes;
    for (;;) {
      SERENA_ASSIGN_OR_RETURN(Token attr,
                              cursor->ExpectIdentifier("attribute"));
      attributes.push_back(attr.text);
      if (!cursor->ConsumeSymbol(",")) break;
    }
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Project(std::move(child), std::move(attributes));
  }

  if (head.IsIdent("select")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    SERENA_ASSIGN_OR_RETURN(FormulaPtr formula, ParseOrExpr(cursor));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Select(std::move(child), std::move(formula));
  }

  if (head.IsIdent("rename")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    SERENA_ASSIGN_OR_RETURN(Token from,
                            cursor->ExpectIdentifier("attribute"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("->"));
    SERENA_ASSIGN_OR_RETURN(Token to, cursor->ExpectIdentifier("attribute"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Rename(std::move(child), from.text, to.text);
  }

  if (head.IsIdent("assign")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    SERENA_ASSIGN_OR_RETURN(Token target,
                            cursor->ExpectIdentifier("attribute"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(":="));
    PlanPtr plan;
    if (cursor->ConsumeSymbol(":")) {
      SERENA_ASSIGN_OR_RETURN(Token param,
                              cursor->ExpectIdentifier("parameter name"));
      SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
      SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
      return AssignParam(std::move(child), target.text, param.text);
    }
    if (IsLiteralStart(cursor->Peek())) {
      SERENA_ASSIGN_OR_RETURN(Value constant, ParseLiteral(cursor));
      SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
      SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
      return Assign(std::move(child), target.text, std::move(constant));
    }
    SERENA_ASSIGN_OR_RETURN(Token source,
                            cursor->ExpectIdentifier("attribute or literal"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Assign(std::move(child), target.text, source.text);
  }

  if (head.IsIdent("invoke")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    SERENA_ASSIGN_OR_RETURN(Token proto,
                            cursor->ExpectIdentifier("prototype"));
    std::string service_attribute;
    if (cursor->ConsumeSymbol("[")) {
      SERENA_ASSIGN_OR_RETURN(
          Token service_attr,
          cursor->ExpectIdentifier("service reference attribute"));
      service_attribute = service_attr.text;
      SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    }
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Invoke(std::move(child), proto.text, service_attribute);
  }

  if (head.IsIdent("aggregate")) {
    // aggregate[g1, g2; fn(attr) -> name, ...](expr); the group list may
    // be empty: aggregate[; count() -> n](expr).
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    std::vector<std::string> group_by;
    if (!cursor->Peek().IsSymbol(";")) {
      for (;;) {
        SERENA_ASSIGN_OR_RETURN(Token attr,
                                cursor->ExpectIdentifier("group attribute"));
        group_by.push_back(attr.text);
        if (!cursor->ConsumeSymbol(",")) break;
      }
    }
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(";"));
    std::vector<AggregateSpec> aggregates;
    for (;;) {
      SERENA_ASSIGN_OR_RETURN(Token fn_token,
                              cursor->ExpectIdentifier("aggregate function"));
      AggregateSpec spec;
      SERENA_ASSIGN_OR_RETURN(spec.fn,
                              AggregateFnFromString(fn_token.text));
      SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
      if (!cursor->Peek().IsSymbol(")")) {
        SERENA_ASSIGN_OR_RETURN(Token input,
                                cursor->ExpectIdentifier("attribute"));
        spec.input = input.text;
      }
      SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
      SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("->"));
      SERENA_ASSIGN_OR_RETURN(Token output,
                              cursor->ExpectIdentifier("output name"));
      spec.output = output.text;
      aggregates.push_back(std::move(spec));
      if (!cursor->ConsumeSymbol(",")) break;
    }
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Aggregate(std::move(child), std::move(group_by),
                     std::move(aggregates));
  }

  if (head.IsIdent("window")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    const WindowMode mode =
        cursor->ConsumeIdent("rows") ? WindowMode::kRows : WindowMode::kTime;
    const Token& period_token = cursor->Peek();
    if (!period_token.Is(TokenType::kInteger)) {
      return cursor->ErrorHere("expected window period (integer)");
    }
    cursor->Next();
    const Timestamp period =
        std::strtoll(period_token.text.c_str(), nullptr, 10);
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("("));
    SERENA_ASSIGN_OR_RETURN(Token stream,
                            cursor->ExpectIdentifier("stream name"));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol(")"));
    return Window(stream.text, period, mode);
  }

  if (head.IsIdent("stream")) {
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("["));
    SERENA_ASSIGN_OR_RETURN(Token type_token,
                            cursor->ExpectIdentifier("streaming type"));
    SERENA_ASSIGN_OR_RETURN(StreamingType type,
                            StreamingTypeFromString(type_token.text));
    SERENA_RETURN_NOT_OK(cursor->ExpectSymbol("]"));
    SERENA_ASSIGN_OR_RETURN(PlanPtr child, ParseUnaryOperand(cursor));
    return Streaming(std::move(child), type);
  }

  if (head.IsIdent("join") || head.IsIdent("union") ||
      head.IsIdent("intersect") || head.IsIdent("difference")) {
    SERENA_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(cursor));
    if (head.IsIdent("join")) {
      return Join(std::move(operands.first), std::move(operands.second));
    }
    if (head.IsIdent("union")) {
      return UnionOf(std::move(operands.first), std::move(operands.second));
    }
    if (head.IsIdent("intersect")) {
      return IntersectOf(std::move(operands.first),
                         std::move(operands.second));
    }
    return DifferenceOf(std::move(operands.first),
                        std::move(operands.second));
  }

  // Plain identifier: a scan of a named X-Relation.
  return Scan(head.text);
}

}  // namespace

Result<PlanPtr> ParseAlgebra(std::string_view input) {
  SERENA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cursor(std::move(tokens));
  SERENA_ASSIGN_OR_RETURN(PlanPtr plan, ParseExpr(&cursor));
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("unexpected trailing input");
  }
  return plan;
}

Result<FormulaPtr> ParseFormula(std::string_view input) {
  SERENA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cursor(std::move(tokens));
  SERENA_ASSIGN_OR_RETURN(FormulaPtr formula, ParseOrExpr(&cursor));
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("unexpected trailing input");
  }
  return formula;
}

}  // namespace serena
