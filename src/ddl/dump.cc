#include "ddl/dump.h"

#include "common/string_util.h"

namespace serena {

namespace {

std::string ValueToDdlLiteral(const Value& value) {
  if (value.is_string()) {
    // Single quotes, '' escape (lexer convention).
    std::string quoted = "'";
    for (char c : value.string_value()) {
      if (c == '\'') quoted += "''";
      else quoted += c;
    }
    quoted += '\'';
    return quoted;
  }
  return value.ToString();
}

}  // namespace

std::string DumpEnvironment(const Environment& env,
                            const StreamStore* streams) {
  std::string out;

  for (const std::string& name : env.PrototypeNames()) {
    out += env.GetPrototype(name).ValueOrDie()->ToString();
    out += ";\n";
  }
  out += '\n';

  for (const std::string& ref : env.registry().ServiceRefs()) {
    auto service = env.registry().Lookup(ref).ValueOrDie();
    std::vector<std::string> protos;
    for (const PrototypePtr& proto : service->prototypes()) {
      protos.push_back(proto->name());
    }
    out += "SERVICE " + ref + " IMPLEMENTS " + Join(protos, ", ") + ";\n";
  }
  out += '\n';

  for (const std::string& name : env.RelationNames()) {
    const XRelation* relation = env.GetRelation(name).ValueOrDie();
    out += relation->schema().ToString();
    out += ";\n";
    if (!relation->empty()) {
      out += "INSERT INTO " + name + " VALUES\n";
      const auto sorted = relation->Sorted();
      for (std::size_t r = 0; r < sorted.size(); ++r) {
        out += "  (";
        for (std::size_t i = 0; i < sorted[r].size(); ++i) {
          if (i > 0) out += ", ";
          out += ValueToDdlLiteral(sorted[r][i]);
        }
        out += r + 1 < sorted.size() ? "),\n" : ");\n";
      }
    }
    out += '\n';
  }

  if (streams != nullptr) {
    for (const std::string& name : streams->StreamNames()) {
      const XDRelation* stream = streams->GetStream(name).ValueOrDie();
      std::string decl = stream->schema().ToString();
      // Rewrite the leading keyword: streams use EXTENDED STREAM.
      const std::string prefix = "EXTENDED RELATION ";
      if (decl.rfind(prefix, 0) == 0) {
        decl = "EXTENDED STREAM " + decl.substr(prefix.size());
      }
      out += decl + ";\n";
    }
  }
  return out;
}

}  // namespace serena
