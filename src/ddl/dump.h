#ifndef SERENA_DDL_DUMP_H_
#define SERENA_DDL_DUMP_H_

#include <string>

#include "stream/stream_store.h"
#include "xrel/environment.h"

namespace serena {

/// Serializes a relational pervasive environment back to a Serena DDL
/// script: PROTOTYPE declarations, SERVICE declarations (by reference and
/// implemented prototypes — implementations are not serializable),
/// EXTENDED RELATION / EXTENDED STREAM definitions, and INSERT statements
/// for current relation contents.
///
/// The output re-executes through `SerenaCatalog::Execute` (services come
/// back as synthetic simulations), giving `environment ≈
/// Load(Dump(environment))` — the shell's `\dump`.
std::string DumpEnvironment(const Environment& env,
                            const StreamStore* streams);

}  // namespace serena

#endif  // SERENA_DDL_DUMP_H_
