#include "ddl/catalog.h"

#include <algorithm>

#include "ddl/algebra_parser.h"
#include "env/synthetic_service.h"

namespace serena {

SerenaCatalog::SerenaCatalog(Environment* env, StreamStore* streams)
    : env_(env), streams_(streams) {
  resolver_ = [](const std::string& id,
                 const std::vector<PrototypePtr>& prototypes)
      -> Result<ServicePtr> {
    return ServicePtr(std::make_shared<SyntheticService>(id, prototypes));
  };
}

Status SerenaCatalog::Execute(std::string_view ddl) {
  SERENA_ASSIGN_OR_RETURN(std::vector<DdlStatement> statements,
                          ParseDdl(ddl));
  for (const DdlStatement& statement : statements) {
    SERENA_RETURN_NOT_OK(Apply(statement));
  }
  return Status::OK();
}

Status SerenaCatalog::Apply(const DdlStatement& statement) {
  switch (statement.kind) {
    case DdlStatement::Kind::kPrototype:
      return ApplyPrototype(statement);
    case DdlStatement::Kind::kService:
      return ApplyService(statement);
    case DdlStatement::Kind::kRelation:
    case DdlStatement::Kind::kStream:
      return ApplyRelationOrStream(statement);
    case DdlStatement::Kind::kInsert:
      return ApplyInsert(statement);
    case DdlStatement::Kind::kDelete:
      return ApplyDelete(statement);
    case DdlStatement::Kind::kDropRelation:
      return env_->DropRelation(statement.relation_name);
    case DdlStatement::Kind::kDropStream:
      if (streams_ == nullptr) {
        return Status::FailedPrecondition("no stream store configured");
      }
      return streams_->DropStream(statement.relation_name);
  }
  return Status::Internal("unknown DDL statement kind");
}

Status SerenaCatalog::ApplyDelete(const DdlStatement& statement) {
  SERENA_ASSIGN_OR_RETURN(XRelation * relation,
                          env_->GetMutableRelation(statement.relation_name));
  if (statement.where.empty()) {
    relation->Clear();
    return Status::OK();
  }
  SERENA_ASSIGN_OR_RETURN(FormulaPtr condition,
                          ParseFormula(statement.where));
  SERENA_RETURN_NOT_OK(condition->Validate(relation->schema()));
  std::vector<Tuple> victims;
  for (const Tuple& t : relation->tuples()) {
    SERENA_ASSIGN_OR_RETURN(bool matches,
                            condition->Evaluate(relation->schema(), t));
    if (matches) victims.push_back(t);
  }
  for (const Tuple& t : victims) relation->Erase(t);
  return Status::OK();
}

Status SerenaCatalog::ApplyInsert(const DdlStatement& statement) {
  SERENA_ASSIGN_OR_RETURN(XRelation * relation,
                          env_->GetMutableRelation(statement.relation_name));
  const ExtendedSchema& schema = relation->schema();
  // Literal values are typed by the relation's real attributes in order.
  std::vector<DataType> types;
  for (const Attribute& attr : schema.attributes()) {
    if (attr.is_real()) types.push_back(attr.type);
  }
  for (const auto& row : statement.rows) {
    if (row.size() != types.size()) {
      return Status::InvalidArgument(
          "INSERT INTO ", statement.relation_name, ": ", row.size(),
          " value(s) for ", types.size(), " real attribute(s)");
    }
    std::vector<Value> values;
    values.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].quoted) {
        values.push_back(Value::String(row[i].text));
      } else {
        SERENA_ASSIGN_OR_RETURN(Value value,
                                ParseValueLiteral(row[i].text, types[i]));
        values.push_back(std::move(value));
      }
    }
    SERENA_RETURN_NOT_OK(relation->Insert(Tuple(std::move(values))).status());
  }
  return Status::OK();
}

Status SerenaCatalog::ApplyPrototype(const DdlStatement& statement) {
  SERENA_ASSIGN_OR_RETURN(RelationSchema input,
                          RelationSchema::Create(statement.input_attributes));
  SERENA_ASSIGN_OR_RETURN(
      RelationSchema output,
      RelationSchema::Create(statement.output_attributes));
  SERENA_ASSIGN_OR_RETURN(
      PrototypePtr prototype,
      Prototype::Create(statement.prototype_name, std::move(input),
                        std::move(output), statement.active,
                        statement.streaming));
  return env_->AddPrototype(std::move(prototype));
}

Status SerenaCatalog::ApplyService(const DdlStatement& statement) {
  std::vector<PrototypePtr> prototypes;
  prototypes.reserve(statement.implemented_prototypes.size());
  for (const std::string& name : statement.implemented_prototypes) {
    SERENA_ASSIGN_OR_RETURN(PrototypePtr prototype,
                            env_->GetPrototype(name));
    prototypes.push_back(std::move(prototype));
  }
  SERENA_ASSIGN_OR_RETURN(
      ServicePtr service,
      resolver_(statement.service_name, prototypes));
  return env_->registry().Register(std::move(service));
}

Status SerenaCatalog::ApplyRelationOrStream(const DdlStatement& statement) {
  std::vector<BindingPattern> binding_patterns;
  for (const auto& decl : statement.binding_patterns) {
    SERENA_ASSIGN_OR_RETURN(PrototypePtr prototype,
                            env_->GetPrototype(decl.prototype));
    // When the DDL spells out input/output lists (Table 2 syntax), they
    // must match the prototype declaration.
    if (!decl.inputs.empty() &&
        decl.inputs != prototype->input().Names()) {
      return Status::InvalidArgument(
          "binding pattern for '", decl.prototype,
          "' lists inputs that do not match the prototype declaration");
    }
    if (!decl.outputs.empty() &&
        decl.outputs != prototype->output().Names()) {
      return Status::InvalidArgument(
          "binding pattern for '", decl.prototype,
          "' lists outputs that do not match the prototype declaration");
    }
    binding_patterns.emplace_back(std::move(prototype),
                                  decl.service_attribute);
  }
  SERENA_ASSIGN_OR_RETURN(
      ExtendedSchemaPtr schema,
      ExtendedSchema::Create(statement.relation_name, statement.attributes,
                             std::move(binding_patterns)));
  if (statement.kind == DdlStatement::Kind::kRelation) {
    return env_->AddRelation(std::move(schema));
  }
  if (streams_ == nullptr) {
    return Status::FailedPrecondition(
        "EXTENDED STREAM requires a stream store");
  }
  return streams_->AddStream(std::move(schema));
}

}  // namespace serena
