#ifndef SERENA_DDL_ALGEBRA_PARSER_H_
#define SERENA_DDL_ALGEBRA_PARSER_H_

#include <string>

#include "algebra/plan.h"
#include "common/result.h"

namespace serena {

/// Parses the Serena Algebra Language (§5.1) — the textual form of Serena
/// algebra expressions. The grammar matches `PlanNode::ToString`, so plans
/// round-trip:
///
///   contacts
///   select[name != 'Carla'](contacts)
///   project[photo](invoke[takePhoto](assign[quality := 5](cameras)))
///   invoke[sendMessage[messenger]](...)
///   rename[location -> area](...)
///   join(a, b)   union(a, b)   intersect(a, b)   difference(a, b)
///   window[1](temperatures)
///   stream[insertion](...)
///
/// Formulas support =, !=, <, <=, >, >=, contains, and/or/not and
/// parentheses; operands are attribute names or literals (integers, reals,
/// 'strings', true/false).
Result<PlanPtr> ParseAlgebra(std::string_view input);

/// Parses a standalone selection formula (exposed for tests and tools).
Result<FormulaPtr> ParseFormula(std::string_view input);

}  // namespace serena

#endif  // SERENA_DDL_ALGEBRA_PARSER_H_
