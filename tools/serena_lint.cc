// serena_lint: offline static analysis of `.serena` scripts.
//
//   $ serena_lint [--json] [--werror] script.serena [more.serena ...]
//   $ serena_lint < script.serena
//
// DDL statements build up the catalog (nothing is queried or invoked);
// every one-shot query and `\register`ed continuous query is analyzed
// with the full multi-pass analyzer, and the accumulated continuous
// query set is linted for cycles, dangling sources, and writer/writer
// conflicts. See docs/ANALYSIS.md for the diagnostic catalog.
//
// Exit status: 0 clean, 1 findings of severity error (or any finding
// under --werror), 2 usage / IO failure. Designed for CI.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint_runner.h"

namespace {

struct FileReport {
  std::string name;
  serena::LintResult result;
};

int Usage() {
  std::cerr << "usage: serena_lint [--json] [--werror] [script.serena ...]\n"
               "       serena_lint < script.serena\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  std::vector<FileReport> reports;
  if (files.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    auto result = serena::LintScript(buffer.str());
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 2;
    }
    reports.push_back(FileReport{"<stdin>", std::move(*result)});
  }
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto result = serena::LintScript(buffer.str());
    if (!result.ok()) {
      std::cerr << file << ": " << result.status() << "\n";
      return 2;
    }
    reports.push_back(FileReport{file, std::move(*result)});
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const FileReport& report : reports) {
    errors += serena::CountErrors(report.result.diagnostics);
    warnings += serena::CountWarnings(report.result.diagnostics);
  }

  if (json) {
    // One object per file keeps the output greppable in CI logs.
    std::cout << "[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) std::cout << ",";
      std::cout << "{\"file\":\"" << reports[i].name << "\",\"statements\":"
                << reports[i].result.statements << ",\"diagnostics\":"
                << serena::DiagnosticsToJson(reports[i].result.diagnostics)
                << "}";
    }
    std::cout << "]\n";
  } else {
    for (const FileReport& report : reports) {
      for (const serena::Diagnostic& d : report.result.diagnostics) {
        std::cout << report.name << ": " << d.ToString() << "\n";
      }
    }
    std::cout << reports.size() << " file(s), " << errors << " error(s), "
              << warnings << " warning(s)\n";
  }

  if (errors > 0 || (werror && warnings > 0)) return 1;
  return 0;
}
