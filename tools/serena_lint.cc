// serena_lint: offline static analysis of `.serena` scripts.
//
//   $ serena_lint [--json] [--werror[=CODES]] [--no-warn=CODES]
//                 script.serena [more.serena ...]
//   $ serena_lint --fix [--dry-run] script.serena
//   $ serena_lint < script.serena
//
// DDL statements build up the catalog (nothing is queried or invoked);
// every one-shot query and `\register`ed continuous query is analyzed
// with the full multi-pass analyzer, and the accumulated continuous
// query set is linted for cycles, dangling sources, and writer/writer
// conflicts. See docs/ANALYSIS.md for the diagnostic catalog.
//
// --fix rewrites each script in place, applying the structured fix-its
// the diagnostics carry (misspelled names, windowless stream scans);
// with --dry-run it prints a unified diff instead of writing. On stdin,
// --fix writes the fixed script to stdout (--dry-run still diffs).
//
// Severity configuration: `--werror` promotes every warning to an
// error, `--werror=SER030,SER052` promotes just those codes, and
// `--no-warn=SER041` suppresses codes (unknown codes exit 2). Without
// flags, `SERENA_WERROR` / `SERENA_NO_WARN` apply (same syntax).
//
// Exit status: 0 clean, 1 findings of severity error after severity
// configuration (under --fix, errors *remaining after* the fixes),
// 2 usage / IO failure. Designed for CI.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint_runner.h"
#include "analysis/session.h"

namespace {

struct FileReport {
  std::string name;
  serena::LintResult result;
};

int Usage() {
  std::cerr << "usage: serena_lint [--json] [--werror[=CODES]] "
               "[--no-warn=CODES] [script.serena ...]\n"
               "       serena_lint --fix [--dry-run] [script.serena ...]\n"
               "       serena_lint < script.serena\n";
  return 2;
}

/// Applies --fix to one script text: rewrites `text`, reports what was
/// applied, and prints/writes per mode. Returns false on IO failure.
bool ApplyFixes(const std::string& name, const std::string& text,
                const serena::analysis::SeverityConfig& severity,
                bool dry_run, bool to_stdout, std::string* fixed_out) {
  auto fixed = serena::FixScript(text, severity);
  if (!fixed.ok()) {
    std::cerr << name << ": " << fixed.status() << "\n";
    return false;
  }
  *fixed_out = fixed->script;
  if (dry_run) {
    // git-style a/ b/ prefixes, except on absolute paths.
    const bool absolute = !name.empty() && name[0] == '/';
    const std::string diff = serena::UnifiedDiff(
        text, fixed->script, absolute ? name : "a/" + name,
        absolute ? name : "b/" + name);
    if (!diff.empty()) std::cout << diff;
    std::cerr << name << ": " << fixed->fixes_applied
              << " fix(es) available\n";
    return true;
  }
  if (to_stdout) {
    std::cout << fixed->script;
  } else if (fixed->fixes_applied > 0) {
    std::ofstream out(name, std::ios::trunc);
    if (!out || !(out << fixed->script)) {
      std::cerr << "cannot write " << name << "\n";
      return false;
    }
  }
  std::cerr << name << ": " << fixed->fixes_applied << " fix(es) applied\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fix = false;
  bool dry_run = false;
  bool severity_flags = false;
  std::string werror_list;
  std::string no_warn_list;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror_list = "all";
      severity_flags = true;
    } else if (arg.rfind("--werror=", 0) == 0) {
      werror_list = arg.substr(9);
      severity_flags = true;
    } else if (arg.rfind("--no-warn=", 0) == 0) {
      no_warn_list = arg.substr(10);
      severity_flags = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (dry_run && !fix) {
    std::cerr << "--dry-run requires --fix\n";
    return Usage();
  }
  // Flags win over the environment; a typo in either is a hard error so
  // CI configs fail loudly instead of silently linting at the wrong
  // severity.
  serena::analysis::SeverityConfig severity;
  if (severity_flags) {
    auto parsed =
        serena::analysis::SeverityConfig::Parse(werror_list, no_warn_list);
    if (!parsed.ok()) {
      std::cerr << parsed.status() << "\n";
      return 2;
    }
    severity = *parsed;
  } else {
    severity = serena::analysis::SeverityConfig::FromEnv();
  }

  std::vector<FileReport> reports;
  if (files.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    std::string text = buffer.str();
    if (fix) {
      std::string fixed;
      if (!ApplyFixes("<stdin>", text, severity, dry_run, /*to_stdout=*/true,
                      &fixed)) {
        return 2;
      }
      text = std::move(fixed);
    }
    auto result = serena::LintScript(text, severity);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 2;
    }
    reports.push_back(FileReport{"<stdin>", std::move(*result)});
  }
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    in.close();
    if (fix) {
      std::string fixed;
      if (!ApplyFixes(file, text, severity, dry_run, /*to_stdout=*/false,
                      &fixed)) {
        return 2;
      }
      // Report the diagnostics that remain after the rewrite (the file on
      // disk under --fix, the hypothetical rewrite under --dry-run).
      text = std::move(fixed);
    }
    auto result = serena::LintScript(text, severity);
    if (!result.ok()) {
      std::cerr << file << ": " << result.status() << "\n";
      return 2;
    }
    reports.push_back(FileReport{file, std::move(*result)});
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const FileReport& report : reports) {
    errors += serena::CountErrors(report.result.diagnostics);
    warnings += serena::CountWarnings(report.result.diagnostics);
  }

  if (json) {
    // One object per file keeps the output greppable in CI logs.
    std::cout << "[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) std::cout << ",";
      std::cout << "{\"file\":\"" << reports[i].name << "\",\"statements\":"
                << reports[i].result.statements << ",\"diagnostics\":"
                << serena::DiagnosticsToJson(reports[i].result.diagnostics)
                << "}";
    }
    std::cout << "]\n";
  } else {
    for (const FileReport& report : reports) {
      for (const serena::Diagnostic& d : report.result.diagnostics) {
        std::cout << report.name << ": " << d.ToString() << "\n";
      }
    }
    std::cout << reports.size() << " file(s), " << errors << " error(s), "
              << warnings << " warning(s)\n";
  }

  // Promotion already happened inside the lint (severity config), so
  // the error count alone decides the exit status.
  return errors > 0 ? 1 : 0;
}
