// serena_bench: the scenario perf harness (docs/BENCHMARKING.md).
//
// Deterministically replays `.serena` scripts — the shell's language —
// against a fresh PEMS per scenario and emits one BENCH_<scenario>.json
// per script in the shared schema of bench/bench_util.h. Exact records
// (rows, ticks, invocations, memo hits) are the determinism gate; the
// wall-clock records per scenario (whole replay plus \tick-loop time) are
// the perf gate, compared against committed baselines with a noise
// threshold. `--repeat=N` replays each scenario N times and reports
// median timings:
//
//   serena_bench --list
//   serena_bench --out=/tmp/bench                     # emit reports
//   serena_bench --repeat=5 --compare=bench/baselines # CI gate
//   serena_bench --compare=bench/baselines --update   # refresh baselines
//
// Determinism comes from three choices: SERENA_THREADS=0 (serial query
// stepping, stable memo-hit counts), synthetic services answering
// hash(service, prototype, input, instant), and stream pumps appending
// hash-derived tuples per tick. Replaying a scenario twice must produce
// bit-identical exact records (`--check-determinism` verifies this).
//
// SERENA_BENCH_INJECT_SLEEP_NS (or --inject-sleep-ns) adds an artificial
// per-tick delay inside the timed region — CI uses it to prove the
// regression gate actually fails on a slowdown.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "analysis/lint_runner.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "obs/meta.h"
#include "obs/stats.h"
#include "pems/monitor.h"
#include "pems/pems.h"

namespace serena {
namespace {

#ifndef SERENA_BENCH_SCENARIO_DIR
#define SERENA_BENCH_SCENARIO_DIR "examples/scripts"
#endif

struct HarnessOptions {
  std::string scenario_dir = SERENA_BENCH_SCENARIO_DIR;
  std::string out_dir;      // Write BENCH_<scenario>.json here.
  std::string compare_dir;  // Gate against baselines here.
  std::string only;         // Run a single scenario by name.
  bool update = false;      // Rewrite the compared baselines.
  bool list = false;
  bool check_determinism = false;
  /// Replays per scenario: exact records come from the first replay (they
  /// are deterministic, so any replay would do), timing records become the
  /// median across all replays — the noise reduction CI relies on.
  int repeat = 1;
  std::int64_t inject_sleep_ns = 0;
  bench::CompareOptions compare;
};

/// Integer finalizer (splitmix64) for deriving per-row / per-attribute
/// pump hashes without any string formatting on the hot pump path.
std::uint64_t MixHash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic, schema-conformant value for a stream pump: the same
/// (stream, attribute, instant, row) always yields the same value, so a
/// replay is bit-identical and standing queries see stable selectivities.
Value PumpValue(const Attribute& attr, std::uint64_t h) {
  switch (attr.type) {
    case DataType::kBool:
      return Value::Bool(h % 2 == 0);
    case DataType::kInt:
      return Value::Int(static_cast<std::int64_t>(h % 100));
    case DataType::kReal:
      return Value::Real(static_cast<double>(h % 1000) / 10.0);
    case DataType::kBlob:
      return Value::BlobValue(Blob{static_cast<std::uint8_t>(h % 256)});
    case DataType::kService:
    case DataType::kString:
      break;
  }
  // A small vocabulary shared with the example scripts' areas, so pumped
  // tuples actually join against catalog relations.
  static constexpr const char* kWords[] = {"office", "kitchen", "roof",
                                           "lobby",  "garage",  "corridor",
                                           "lab",    "hall"};
  return Value::String(kWords[h % (sizeof(kWords) / sizeof(kWords[0]))]);
}

/// A \source rate token: all digits, e.g. "250" in `\source telemetry 250`.
bool IsAllDigits(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Is this statement DDL (executed by the table manager) rather than a
/// one-shot algebra query? Mirrors the shell's dispatch.
bool IsDdl(const std::string& text) {
  std::istringstream in(text);
  std::string head;
  in >> head;
  const std::string lower = ToLower(head);
  return lower == "prototype" || lower == "service" || lower == "extended" ||
         lower == "insert" || lower == "delete" || lower == "drop";
}

/// Everything one replay counted. All fields must be deterministic
/// functions of the script — they become the exact records.
struct ReplayCounters {
  std::int64_t statements = 0;
  std::int64_t ddl_statements = 0;
  std::int64_t oneshot_queries = 0;
  std::int64_t oneshot_rows = 0;
  std::int64_t oneshot_actions = 0;
  std::int64_t continuous_registered = 0;
  std::int64_t ticks = 0;
  std::int64_t stream_tuples = 0;
  std::int64_t statement_errors = 0;
  std::int64_t ignored_directives = 0;
};

constexpr int kPumpRowsPerTick = 4;

/// Registers a deterministic pump for `stream`: every tick appends
/// `rows_per_tick` hash-derived tuples. Declared `feeds` so SER041 sees
/// a producer, exactly like an embedding application would.
void AddPump(Pems& pems, const std::string& stream, int rows_per_tick,
             std::int64_t* stream_tuples) {
  // Hash the stream name once at registration; per row the pump only does
  // integer mixing, so high-rate pumps don't drown the dataflow cost the
  // benchmark is measuring under string formatting.
  const std::uint64_t stream_seed = StableHash(stream);
  pems.queries().executor().AddSource(
      [&pems, stream, stream_seed, rows_per_tick,
       stream_tuples](Timestamp t) -> Status {
        SERENA_ASSIGN_OR_RETURN(XDRelation * xd,
                                pems.streams().GetStream(stream));
        for (int k = 0; k < rows_per_tick; ++k) {
          const std::uint64_t row_seed =
              MixHash(stream_seed ^ MixHash(static_cast<std::uint64_t>(t) *
                                                0x10001ULL +
                                            static_cast<std::uint64_t>(k)));
          std::vector<Value> values;
          std::uint64_t attr_index = 0;
          for (const Attribute& attr : xd->schema().attributes()) {
            if (!attr.is_real()) continue;
            values.push_back(PumpValue(attr, MixHash(row_seed + attr_index)));
            ++attr_index;
          }
          const Status append = xd->Append(t, Tuple(std::move(values)));
          if (!append.ok()) return append;
          ++*stream_tuples;
        }
        return Status::OK();
      },
      {stream});
}

/// Replays one script statement-by-statement and returns the BENCH
/// report (kind "scenario"). Directives beyond \register / \source /
/// \tick are display commands in the shell — counted and skipped here.
Result<bench::BenchReport> RunScenario(const std::string& name,
                                       const std::string& script,
                                       const HarnessOptions& options) {
  SERENA_ASSIGN_OR_RETURN(std::unique_ptr<Pems> pems, Pems::Create());
  // sys_* meta-relations, as in the shell: scripts like
  // self_monitoring.serena query the runtime's own telemetry.
  const Status meta = obs::RegisterMetaRelations(
      &pems->env(), &pems->queries().executor());
  if (!meta.ok()) return meta;

  // Per-scenario slate for the operator statistics store (it is
  // process-global; fingerprint counts must not leak across scenarios).
  obs::StatsStore::Global().Clear();

  ReplayCounters counters;
  // Nanoseconds spent inside \tick loops only: the per-tick dataflow
  // cost, excluding parsing, DDL and one-shot queries — the number the
  // vectorization speedup is measured on.
  std::int64_t tick_wall_ns = 0;
  const auto start = std::chrono::steady_clock::now();

  for (const std::string& statement : SplitScript(script)) {
    ++counters.statements;
    if (statement[0] != '\\') {
      if (IsDdl(statement)) {
        ++counters.ddl_statements;
        if (!pems->tables().ExecuteDdl(statement).ok()) {
          ++counters.statement_errors;
        }
      } else {
        ++counters.oneshot_queries;
        // SplitScript keeps the ';' terminator; algebra carries none.
        std::string expr = statement;
        if (!expr.empty() && expr.back() == ';') expr.pop_back();
        auto result = pems->queries().ExecuteOneShot(expr);
        if (result.ok()) {
          counters.oneshot_rows +=
              static_cast<std::int64_t>(result->relation.size());
          counters.oneshot_actions +=
              static_cast<std::int64_t>(result->actions.size());
        } else {
          ++counters.statement_errors;
        }
      }
      continue;
    }

    std::istringstream in(statement);
    std::string directive;
    in >> directive;
    if (directive == "\\register") {
      std::string query_name;
      in >> query_name;
      std::string rest;
      std::getline(in, rest);
      std::string expr(Trim(rest));
      std::string stream;
      if (expr.rfind("into ", 0) == 0) {  // \register NAME into STREAM EXPR
        std::istringstream tail(expr.substr(5));
        tail >> stream;
        std::string remainder;
        std::getline(tail, remainder);
        expr = std::string(Trim(remainder));
      }
      const Status status =
          stream.empty()
              ? pems->queries().RegisterContinuous(query_name, expr)
              : pems->queries().RegisterContinuousInto(query_name, expr,
                                                       stream);
      if (status.ok()) {
        ++counters.continuous_registered;
      } else {
        std::fprintf(stderr, "[%s] \\register %s: %s\n", name.c_str(),
                     query_name.c_str(), status.ToString().c_str());
        ++counters.statement_errors;
      }
    } else if (directive == "\\source") {
      // \source STREAM [ROWS] [STREAM [ROWS] ...] — an all-digit token
      // after a stream name overrides the default pump rate, letting
      // perf scenarios drive heavy tick workloads (fleet_telemetry).
      std::string token;
      std::string pending;
      while (in >> token) {
        if (!pending.empty() && IsAllDigits(token)) {
          const int rate = std::max(1, std::atoi(token.c_str()));
          AddPump(*pems, pending, rate, &counters.stream_tuples);
          pending.clear();
          continue;
        }
        if (!pending.empty()) {
          AddPump(*pems, pending, kPumpRowsPerTick, &counters.stream_tuples);
        }
        pending = token;
      }
      if (!pending.empty()) {
        AddPump(*pems, pending, kPumpRowsPerTick, &counters.stream_tuples);
      }
    } else if (directive == "\\tick") {
      int n = 1;
      in >> n;
      if (n < 1) n = 1;
      const auto tick_start = std::chrono::steady_clock::now();
      for (int i = 0; i < n; ++i) {
        if (options.inject_sleep_ns > 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.inject_sleep_ns));
        }
        pems->Tick();
        ++counters.ticks;
      }
      tick_wall_ns +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - tick_start)
              .count();
    } else {
      ++counters.ignored_directives;  // \show, \health, \metrics, ...
    }
  }

  const double wall_ms =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
      1e6;

  const PemsMetrics metrics = SnapshotMetrics(*pems);
  std::int64_t continuous_actions = 0;
  for (const PemsMetrics::QueryInfo& query : metrics.queries) {
    continuous_actions += static_cast<std::int64_t>(query.actions);
  }

  bench::BenchReport report;
  report.name = name;
  report.kind = "scenario";
  auto exact = [&report](std::string record_name, std::int64_t value,
                         std::string unit) {
    report.records.push_back(bench::ReproRecord{
        std::move(record_name), static_cast<double>(value), std::move(unit),
        bench::RecordMode::kExact});
  };
  exact("statements", counters.statements, "statements");
  exact("ddl_statements", counters.ddl_statements, "statements");
  exact("oneshot_queries", counters.oneshot_queries, "queries");
  exact("oneshot_rows", counters.oneshot_rows, "tuples");
  exact("oneshot_actions", counters.oneshot_actions, "actions");
  exact("continuous_queries", counters.continuous_registered, "queries");
  exact("continuous_actions", continuous_actions, "actions");
  exact("ticks", counters.ticks, "ticks");
  exact("stream_tuples", counters.stream_tuples, "tuples");
  exact("logical_invocations",
        static_cast<std::int64_t>(metrics.invocations.logical_invocations),
        "invocations");
  exact("physical_invocations",
        static_cast<std::int64_t>(metrics.invocations.physical_invocations),
        "invocations");
  exact("memo_hits",
        static_cast<std::int64_t>(metrics.invocations.memo_hits), "hits");
  exact("statement_errors", counters.statement_errors, "errors");
  exact("operator_fingerprints",
        static_cast<std::int64_t>(obs::StatsStore::Global().size()),
        "operators");
  report.records.push_back(bench::ReproRecord{
      "wall_ms", wall_ms, "ms", bench::RecordMode::kTiming});
  report.records.push_back(bench::ReproRecord{
      "tick_wall_ms", static_cast<double>(tick_wall_ns) / 1e6, "ms",
      bench::RecordMode::kTiming});
  return report;
}

/// Runs a scenario `options.repeat` times. The first replay supplies the
/// report (exact records are deterministic); each timing record's value
/// is replaced by its median across the replays, trimming scheduler
/// noise out of the regression gate.
Result<bench::BenchReport> RunScenarioRepeated(const std::string& name,
                                               const std::string& script,
                                               const HarnessOptions& options) {
  SERENA_ASSIGN_OR_RETURN(bench::BenchReport report,
                          RunScenario(name, script, options));
  if (options.repeat <= 1) return report;

  std::vector<std::vector<double>> timings(report.records.size());
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    if (report.records[i].mode == bench::RecordMode::kTiming) {
      timings[i].push_back(report.records[i].value);
    }
  }
  for (int run = 1; run < options.repeat; ++run) {
    SERENA_ASSIGN_OR_RETURN(bench::BenchReport replay,
                            RunScenario(name, script, options));
    for (std::size_t i = 0; i < report.records.size(); ++i) {
      if (report.records[i].mode != bench::RecordMode::kTiming) continue;
      for (const bench::ReproRecord& record : replay.records) {
        if (record.name == report.records[i].name) {
          timings[i].push_back(record.value);
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    std::vector<double>& values = timings[i];
    if (values.empty()) continue;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    report.records[i].value = values.size() % 2 == 1
                                  ? values[mid]
                                  : (values[mid - 1] + values[mid]) / 2.0;
  }
  return report;
}

Result<std::string> ReadFileToString(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open ", path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Scenario scripts, sorted by name. `lint_errors.serena` is the
/// deliberately broken lint fixture, never a runnable scenario.
std::vector<std::filesystem::path> FindScenarios(
    const HarnessOptions& options) {
  std::vector<std::filesystem::path> scripts;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.scenario_dir, ec)) {
    if (entry.path().extension() != ".serena") continue;
    const std::string stem = entry.path().stem().string();
    if (stem == "lint_errors") continue;
    if (!options.only.empty() && stem != options.only) continue;
    scripts.push_back(entry.path());
  }
  std::sort(scripts.begin(), scripts.end());
  return scripts;
}

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string* value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = std::string(arg.substr(prefix.size()));
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: serena_bench [options]\n"
      "  --list                   list scenarios and exit\n"
      "  --scenario=NAME          run one scenario only\n"
      "  --scenario-dir=DIR       script directory (default: %s)\n"
      "  --out=DIR                write BENCH_<scenario>.json reports\n"
      "  --compare=DIR            gate against baselines in DIR\n"
      "  --update                 rewrite the compared baselines\n"
      "  --threshold=X            relative timing slack (default 2.5)\n"
      "  --floor=MS               absolute timing slack in ms (default 5)\n"
      "  --repeat=N               replay N times; timing records report "
      "the median\n"
      "  --check-determinism      replay twice, require identical exact "
      "records\n"
      "  --inject-sleep-ns=N      artificial per-tick delay (gate test)\n",
      SERENA_BENCH_SCENARIO_DIR);
  return 2;
}

int Main(int argc, char** argv) {
  HarnessOptions options;
  if (const char* inject = std::getenv("SERENA_BENCH_INJECT_SLEEP_NS")) {
    options.inject_sleep_ns = std::atoll(inject);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--update") {
      options.update = true;
    } else if (arg == "--check-determinism") {
      options.check_determinism = true;
    } else if (ParseFlag(arg, "--scenario", &value)) {
      options.only = value;
    } else if (ParseFlag(arg, "--scenario-dir", &value)) {
      options.scenario_dir = value;
    } else if (ParseFlag(arg, "--out", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(arg, "--compare", &value)) {
      options.compare_dir = value;
    } else if (ParseFlag(arg, "--repeat", &value)) {
      options.repeat = std::max(1, std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--threshold", &value)) {
      options.compare.threshold = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--floor", &value)) {
      options.compare.floor_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--inject-sleep-ns", &value)) {
      options.inject_sleep_ns = std::atoll(value.c_str());
    } else {
      return Usage();
    }
  }

  const std::vector<std::filesystem::path> scripts = FindScenarios(options);
  if (scripts.empty()) {
    std::fprintf(stderr, "no scenarios found in %s\n",
                 options.scenario_dir.c_str());
    return 1;
  }
  if (options.list) {
    for (const auto& path : scripts) {
      std::printf("%s\n", path.stem().string().c_str());
    }
    return 0;
  }

  std::vector<std::string> failures;
  for (const auto& path : scripts) {
    const std::string name = path.stem().string();
    auto script = ReadFileToString(path);
    if (!script.ok()) {
      failures.push_back(name + ": " + script.status().ToString());
      continue;
    }
    auto report = RunScenarioRepeated(name, *script, options);
    if (!report.ok()) {
      failures.push_back(name + ": " + report.status().ToString());
      continue;
    }

    if (options.check_determinism) {
      // A second replay on a fresh PEMS must land the same exact records
      // — the shared-schema `mode` field makes "exact" machine-checkable.
      auto replay = RunScenario(name, *script, options);
      if (!replay.ok()) {
        failures.push_back(name + ": replay: " + replay.status().ToString());
      } else {
        bench::CompareOptions strict;
        strict.threshold = 1e9;  // Timing records never flag here.
        for (std::string& failure :
             bench::CompareBenchReports(*report, *replay, strict)) {
          failures.push_back("determinism: " + failure);
        }
      }
    }

    std::printf("%-24s", name.c_str());
    for (const bench::ReproRecord& record : report->records) {
      if (record.name == "ticks" || record.name == "oneshot_rows" ||
          record.name == "physical_invocations") {
        std::printf("  %s=%.0f", record.name.c_str(), record.value);
      }
      if (record.name == "wall_ms") {
        std::printf("  wall=%.2fms", record.value);
      }
      if (record.name == "tick_wall_ms" && record.value > 0) {
        std::printf("  tick_wall=%.2fms", record.value);
      }
    }
    std::printf("\n");

    if (!options.out_dir.empty()) {
      bench::WriteBenchReport(
          options.out_dir + "/BENCH_" + name + ".json", *report);
    }
    if (!options.compare_dir.empty()) {
      const std::string baseline_path =
          options.compare_dir + "/BENCH_" + name + ".json";
      if (options.update) {
        bench::WriteBenchReport(baseline_path, *report);
        std::printf("  baseline updated: %s\n", baseline_path.c_str());
        continue;
      }
      auto baseline = bench::LoadBenchReport(baseline_path);
      if (!baseline.ok()) {
        failures.push_back(name + ": " + baseline.status().ToString());
        continue;
      }
      for (std::string& failure : bench::CompareBenchReports(
               *baseline, *report, options.compare)) {
        failures.push_back(std::move(failure));
      }
    }
  }

  if (!failures.empty()) {
    std::fprintf(stderr, "\n%zu regression(s):\n", failures.size());
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "  FAIL %s\n", failure.c_str());
    }
    return 1;
  }
  std::printf("all %zu scenario(s) pass\n", scripts.size());
  return 0;
}

}  // namespace
}  // namespace serena

int main(int argc, char** argv) {
  // Serial stepping by default: memo-hit counts and per-tick order are
  // reproducible. An explicit SERENA_THREADS in the environment wins.
  setenv("SERENA_THREADS", "0", /*overwrite=*/0);
  return serena::Main(argc, argv);
}
