// serena_scale_smoke: registration-scaling smoke test for CI.
//
//   $ serena_scale_smoke [N]      (default N = 1000)
//
// Registers N standing queries against the standard scenario and checks
// — via the `serena.analyze.*` counters — that registering the i-th
// query analyzed only that query: the incremental session lint must
// keep total plan analyses within a constant factor of N (gate +
// registration lint per query, never a re-lint of the committed set)
// and must walk no dependency frontier at all for independent queries.
// A quadratic regression in the registration path fails loudly here
// long before it would show up as wall-clock noise.
//
// Exit status: 0 when the counters scale linearly, 1 otherwise,
// 2 on setup failure.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "env/scenario.h"
#include "obs/metrics.h"
#include "pems/query_processor.h"

int main(int argc, char** argv) {
  std::size_t n = 1000;
  if (argc > 1) {
    n = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
    if (n == 0) {
      std::cerr << "usage: serena_scale_smoke [N>0]\n";
      return 2;
    }
  }

  auto scenario = serena::TemperatureScenario::Build();
  if (!scenario.ok()) {
    std::cerr << "scenario: " << scenario.status() << "\n";
    return 2;
  }
  serena::QueryProcessor processor(&(*scenario)->env(),
                                   &(*scenario)->streams());
  processor.executor().AddSource(
      [&scenario](serena::Timestamp t) {
        return (*scenario)->PumpTemperatureStream(t);
      },
      /*feeds=*/{"temperatures"});

  serena::obs::MetricsRegistry& metrics =
      serena::obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  const std::uint64_t plans_before =
      metrics.GetCounter("serena.analyze.plans").value();
  const std::uint64_t frontier_before =
      metrics.GetCounter("serena.analyze.frontier_queries").value();

  for (std::size_t i = 0; i < n; ++i) {
    std::string name = "w";
    name += std::to_string(i);
    const serena::Status status =
        processor.RegisterContinuous(name, "window[1](temperatures)");
    if (!status.ok()) {
      std::cerr << "registration " << i << ": " << status << "\n";
      return 2;
    }
  }

  const std::uint64_t plans =
      metrics.GetCounter("serena.analyze.plans").value() - plans_before;
  const std::uint64_t frontier =
      metrics.GetCounter("serena.analyze.frontier_queries").value() -
      frontier_before;

  std::cout << n << " registrations: " << plans << " plan analyses ("
            << (static_cast<double>(plans) / static_cast<double>(n))
            << " per query), " << frontier << " frontier visits\n";

  bool ok = true;
  if (plans > 3 * n) {
    std::cerr << "FAIL: " << plans << " plan analyses for " << n
              << " registrations — registration is no longer O(new query)\n";
    ok = false;
  }
  if (frontier != 0) {
    std::cerr << "FAIL: " << frontier << " frontier visits for independent "
              << "queries (expected 0)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
