#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace serena {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsTasksInlineInSubmissionOrder) {
  ThreadPool pool(0);
  EXPECT_TRUE(pool.serial());
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> order;
  pool.Execute([&] { order.push_back(1); });
  pool.Execute([&] { order.push_back(2); });
  pool.Execute([&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesIndexedSlotsDeterministically) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::size_t> out(kN, 0);
  pool.ParallelFor(kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, SerialParallelForRunsInIndexOrder) {
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  pool.ParallelFor(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForPropagatesSmallestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(100, [&](std::size_t i) {
      if (i == 17 || i == 63) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 17");
  }
  // All non-throwing iterations still ran (the loop never abandons work).
  EXPECT_EQ(completed.load(), 98);
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 40 + 2; });
  auto f2 = pool.Submit([]() -> std::string { return "ok"; });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Caller participation: an outer iteration issuing an inner ParallelFor
  // must complete even when every worker is busy with outer iterations.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::set<std::thread::id> ids;
  std::mutex mu;
  pool.ParallelFor(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // Caller + at least one worker participated.
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ConfiguredThreadCountParsesEnvironment) {
  // Note: test-local environment mutation; tests in this binary run in
  // one process, so restore the variable.
  const char* saved = std::getenv("SERENA_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("SERENA_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 0u);
  ::setenv("SERENA_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 7u);
  ::setenv("SERENA_THREADS", "not-a-number", 1);
  EXPECT_GT(ThreadPool::ConfiguredThreadCount(), 0u);  // Hardware fallback.

  if (saved != nullptr) {
    ::setenv("SERENA_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("SERENA_THREADS");
  }
}

}  // namespace
}  // namespace serena
