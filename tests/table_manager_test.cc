#include "pems/table_manager.h"

#include <gtest/gtest.h>

#include "algebra/plan.h"

namespace serena {
namespace {

class TableManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<ExtendedTableManager>(&env_, &streams_);
    ASSERT_TRUE(manager_
                    ->ExecuteDdl(
                        "EXTENDED RELATION t (a STRING, b INTEGER); "
                        "EXTENDED STREAM s (x REAL);")
                    .ok());
  }

  Environment env_;
  StreamStore streams_;
  std::unique_ptr<ExtendedTableManager> manager_;
};

TEST_F(TableManagerTest, InsertDeleteLifecycle) {
  const Tuple row{Value::String("k"), Value::Int(1)};
  EXPECT_TRUE(manager_->InsertTuple("t", row).ValueOrDie());
  EXPECT_FALSE(manager_->InsertTuple("t", row).ValueOrDie());  // Dup.
  EXPECT_EQ(manager_->RelationSize("t").ValueOrDie(), 1u);
  EXPECT_TRUE(manager_->DeleteTuple("t", row).ValueOrDie());
  EXPECT_FALSE(manager_->DeleteTuple("t", row).ValueOrDie());
  EXPECT_EQ(manager_->RelationSize("t").ValueOrDie(), 0u);
}

TEST_F(TableManagerTest, TypeValidationOnInsert) {
  EXPECT_FALSE(
      manager_->InsertTuple("t", Tuple{Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(manager_->InsertTuple("t", Tuple{Value::String("x")}).ok());
}

TEST_F(TableManagerTest, UnknownTargetsFail) {
  EXPECT_EQ(manager_->InsertTuple("ghost", Tuple{}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager_->RelationSize("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager_->AppendToStream("ghost", 1, Tuple{}).code(),
            StatusCode::kNotFound);
}

TEST_F(TableManagerTest, StreamAppendsAreOrdered) {
  EXPECT_TRUE(
      manager_->AppendToStream("s", 1, Tuple{Value::Real(1.0)}).ok());
  EXPECT_TRUE(
      manager_->AppendToStream("s", 2, Tuple{Value::Real(2.0)}).ok());
  // Appending into the past violates append-only streams.
  EXPECT_EQ(manager_->AppendToStream("s", 1, Tuple{Value::Real(3.0)}).code(),
            StatusCode::kFailedPrecondition);
  const XDRelation* stream = streams_.GetStream("s").ValueOrDie();
  EXPECT_EQ(stream->InsertedDuring(0, 10).size(), 2u);
}

TEST_F(TableManagerTest, DdlErrorsPropagate) {
  EXPECT_EQ(manager_->ExecuteDdl("EXTENDED RELATION t (a STRING);").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(manager_->ExecuteDdl("garbage;").code(),
            StatusCode::kParseError);
}

TEST_F(TableManagerTest, WindowBoundarySemantics) {
  // W[p] at τ covers the half-open interval (τ-p, τ]: W[1] is the CQL
  // "NOW" window (exactly instant τ) and W[0] is empty.
  ASSERT_TRUE(
      manager_->AppendToStream("s", 1, Tuple{Value::Real(1.0)}).ok());
  ASSERT_TRUE(
      manager_->AppendToStream("s", 2, Tuple{Value::Real(2.0)}).ok());
  EvalContext ctx;
  ctx.env = &env_;
  ctx.streams = &streams_;
  ctx.instant = 2;
  XRelation now_window = Window("s", 1)->Evaluate(ctx).ValueOrDie();
  ASSERT_EQ(now_window.size(), 1u);
  EXPECT_EQ(now_window.tuples()[0][0], Value::Real(2.0));
  EXPECT_TRUE(Window("s", 0)->Evaluate(ctx).ValueOrDie().empty());
  EXPECT_EQ(Window("s", 2)->Evaluate(ctx).ValueOrDie().size(), 2u);
}

}  // namespace
}  // namespace serena
