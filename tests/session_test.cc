// Tests for the unified analysis facade (analysis::Session): parity with
// the raw analyzer entry points, severity configuration (promote /
// suppress, flags and environment), and the incremental registration
// lint that keeps query registration O(new query).

#include "analysis/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/query_set.h"
#include "ddl/algebra_parser.h"
#include "env/scenario.h"
#include "obs/metrics.h"

namespace serena {
namespace {

using analysis::AnalyzeOptions;
using analysis::ApplySeverity;
using analysis::Session;
using analysis::SeverityConfig;

bool HasCode(const std::vector<Diagnostic>& diagnostics, DiagCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& FindCode(const std::vector<Diagnostic>& diagnostics,
                           DiagCode code) {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return d;
  }
  static const Diagnostic missing{};
  ADD_FAILURE() << "no diagnostic with code " << DiagCodeId(code);
  return missing;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  PlanPtr Parse(const std::string& algebra) {
    return ParseAlgebra(algebra).ValueOrDie();
  }

  void AddStream(const std::string& name) {
    auto schema = ExtendedSchema::Create(
        name, {{"location", DataType::kString},
               {"temperature", DataType::kReal}});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(scenario_->streams().AddStream(*schema).ok());
  }

  Session MakeSession(AnalyzeOptions options = {}) {
    return Session(&scenario_->env(), &scenario_->streams(), options);
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

// --- DiagCodeFromId / SeverityConfig parsing -------------------------------

TEST(DiagCodeFromIdTest, RoundTripsEveryIdAndRejectsUnknown) {
  EXPECT_EQ(DiagCodeFromId("SER021"), DiagCode::kDeadRealization);
  EXPECT_EQ(DiagCodeFromId("ser052"), DiagCode::kPatternlessProjection);
  EXPECT_EQ(DiagCodeFromId("SER060"), DiagCode::kScriptStatement);
  EXPECT_FALSE(DiagCodeFromId("SER999").has_value());
  EXPECT_FALSE(DiagCodeFromId("bogus").has_value());
  EXPECT_FALSE(DiagCodeFromId("").has_value());
}

TEST(SeverityConfigTest, ParsesCodeLists) {
  const SeverityConfig config =
      SeverityConfig::Parse("ser021, SER052", "SER041").ValueOrDie();
  EXPECT_FALSE(config.werror_all);
  EXPECT_EQ(config.promote.count(DiagCode::kDeadRealization), 1u);
  EXPECT_EQ(config.promote.count(DiagCode::kPatternlessProjection), 1u);
  EXPECT_EQ(config.suppress.count(DiagCode::kDanglingSource), 1u);
  EXPECT_FALSE(config.empty());
}

TEST(SeverityConfigTest, AllAndStarPromoteEverything) {
  EXPECT_TRUE(SeverityConfig::Parse("all", "").ValueOrDie().werror_all);
  EXPECT_TRUE(SeverityConfig::Parse("*", "").ValueOrDie().werror_all);
  EXPECT_TRUE(SeverityConfig::Parse("", "").ValueOrDie().empty());
}

TEST(SeverityConfigTest, UnknownCodesAreLoudErrors) {
  EXPECT_EQ(SeverityConfig::Parse("SER999", "").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SeverityConfig::Parse("", "typo").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SeverityConfigTest, FromEnvReadsAndIgnoresMalformed) {
  setenv("SERENA_WERROR", "SER030", 1);
  setenv("SERENA_NO_WARN", "SER041", 1);
  SeverityConfig config = SeverityConfig::FromEnv();
  EXPECT_EQ(config.promote.count(DiagCode::kActiveUnderFilter), 1u);
  EXPECT_EQ(config.suppress.count(DiagCode::kDanglingSource), 1u);

  setenv("SERENA_WERROR", "not-a-code", 1);
  config = SeverityConfig::FromEnv();
  EXPECT_TRUE(config.empty());

  unsetenv("SERENA_WERROR");
  unsetenv("SERENA_NO_WARN");
}

TEST(SeverityConfigTest, ApplySeverityPromotesAndSuppresses) {
  SeverityConfig config;
  config.promote.insert(DiagCode::kDeadRealization);
  config.suppress.insert(DiagCode::kDanglingSource);
  std::vector<Diagnostic> diagnostics = {
      {DiagCode::kUnknownRelation, Diagnostic::Severity::kError, "", "e"},
      {DiagCode::kDeadRealization, Diagnostic::Severity::kWarning, "", "w1"},
      {DiagCode::kDanglingSource, Diagnostic::Severity::kWarning, "", "w2"},
      {DiagCode::kCartesianJoin, Diagnostic::Severity::kWarning, "", "w3"},
  };
  ApplySeverity(config, &diagnostics);
  ASSERT_EQ(diagnostics.size(), 3u);
  EXPECT_TRUE(diagnostics[0].is_error());   // untouched error
  EXPECT_TRUE(diagnostics[1].is_error());   // promoted
  EXPECT_FALSE(diagnostics[2].is_error());  // w3, still a warning
  EXPECT_FALSE(HasCode(diagnostics, DiagCode::kDanglingSource));
  // The kept diagnostics survive intact — the in-place compaction must
  // not clear messages via self-move when nothing was suppressed yet.
  EXPECT_EQ(diagnostics[0].message, "e");
  EXPECT_EQ(diagnostics[1].message, "w1");
  EXPECT_EQ(diagnostics[2].message, "w3");
}

// --- Facade parity ---------------------------------------------------------

TEST_F(SessionTest, AnalyzePlanMatchesRawAnalyzer) {
  const std::vector<PlanPtr> plans = {
      Scan("ghost"),
      scenario_->Q1Prime(),
      Parse("project[area](invoke[checkPhoto](cameras))"),
  };
  const Session session = MakeSession();
  for (const PlanPtr& plan : plans) {
    const auto via_session = session.AnalyzePlan(plan).ValueOrDie();
    const auto direct =
        AnalyzePlan(plan, scenario_->env(), &scenario_->streams())
            .ValueOrDie();
    ASSERT_EQ(via_session.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(via_session[i].code, direct[i].code);
      EXPECT_EQ(via_session[i].severity, direct[i].severity);
      EXPECT_EQ(via_session[i].message, direct[i].message);
      EXPECT_EQ(via_session[i].node, direct[i].node);
    }
  }
}

TEST_F(SessionTest, GateStylePromotionSurvivesErrorsOnlyFilter) {
  // The dead passive invocation is a warning: invisible to an
  // errors-only session...
  const PlanPtr plan = Parse("project[area](invoke[checkPhoto](cameras))");
  AnalyzeOptions gate;
  gate.include_warnings = false;
  EXPECT_TRUE(MakeSession(gate).AnalyzePlan(plan).ValueOrDie().empty());

  // ...until severity config promotes it — then it surfaces as an error
  // even though warnings stay filtered.
  gate.severity = SeverityConfig::Parse("SER021", "").ValueOrDie();
  const auto promoted = MakeSession(gate).AnalyzePlan(plan).ValueOrDie();
  EXPECT_TRUE(FindCode(promoted, DiagCode::kDeadRealization).is_error());
  EXPECT_FALSE(IsValid(promoted));
}

TEST_F(SessionTest, SuppressedWarningsDisappear) {
  const PlanPtr plan = Parse("project[area](invoke[checkPhoto](cameras))");
  EXPECT_TRUE(HasCode(MakeSession().AnalyzePlan(plan).ValueOrDie(),
                      DiagCode::kDeadRealization));
  AnalyzeOptions options;
  options.severity = SeverityConfig::Parse("", "SER021").ValueOrDie();
  EXPECT_FALSE(HasCode(MakeSession(options).AnalyzePlan(plan).ValueOrDie(),
                       DiagCode::kDeadRealization));
}

// --- Committed-query lifecycle ---------------------------------------------

TEST_F(SessionTest, CommitRemoveLifecycle) {
  Session session = MakeSession();
  const PlanPtr plan = Parse("window[1](temperatures)");
  session.CommitQuery("a", plan, {});
  session.CommitQuery("b", plan, {"derived"});
  EXPECT_EQ(session.query_count(), 2u);
  EXPECT_EQ(session.QueryNames(), (std::vector<std::string>{"a", "b"}));

  // Re-commit replaces, remove erases, clear empties.
  session.CommitQuery("a", plan, {"other"});
  EXPECT_EQ(session.query_count(), 2u);
  session.RemoveQuery("b");
  EXPECT_EQ(session.QueryNames(), (std::vector<std::string>{"a"}));
  session.Clear();
  EXPECT_EQ(session.query_count(), 0u);
}

// --- Incremental registration lint -----------------------------------------

TEST_F(SessionTest, WriterConflictMatchesQuerySetWording) {
  const PlanPtr plan = Parse("window[1](temperatures)");
  Session session = MakeSession();
  session.CommitQuery("a", plan, {"derived"});
  const auto incremental =
      session.LintRegistration("b", plan, {"derived"}).ValueOrDie();
  const Diagnostic& from_session =
      FindCode(incremental, DiagCode::kWriterConflict);

  // The full (non-incremental) set lint must produce the identical
  // message — the facade's contract is byte-equal diagnostics.
  const std::vector<QuerySetEntry> entries = {
      {"a", plan, {"derived"}}, {"b", plan, {"derived"}}};
  const auto full = AnalyzeQuerySet(entries, {}).ValueOrDie();
  const Diagnostic& from_set = FindCode(full, DiagCode::kWriterConflict);
  EXPECT_EQ(from_session.message, from_set.message);
  EXPECT_EQ(from_session.hint, from_set.hint);
  EXPECT_TRUE(from_session.is_error());
}

TEST_F(SessionTest, DanglingSourceMatchesQuerySetWording) {
  AddStream("s1");
  const PlanPtr reader = Parse("window[1](s1)");
  Session session = MakeSession();
  const auto incremental =
      session.LintRegistration("r", reader, {}).ValueOrDie();
  const Diagnostic& from_session =
      FindCode(incremental, DiagCode::kDanglingSource);

  const std::vector<QuerySetEntry> entries = {{"r", reader, {}}};
  const auto full = AnalyzeQuerySet(entries, {}).ValueOrDie();
  const Diagnostic& from_set = FindCode(full, DiagCode::kDanglingSource);
  EXPECT_EQ(from_session.message, from_set.message);
  EXPECT_EQ(from_session.hint, from_set.hint);

  // Declaring the stream as source-fed clears the warning.
  AnalyzeOptions options;
  options.source_fed_streams = {"s1"};
  Session fed = MakeSession(options);
  EXPECT_FALSE(HasCode(fed.LintRegistration("r", reader, {}).ValueOrDie(),
                       DiagCode::kDanglingSource));
}

TEST_F(SessionTest, CycleThroughCommittedFrontierDetected) {
  AddStream("s1");
  AddStream("s2");
  Session session = MakeSession();
  // Committed: a reads s1, feeds s2. Candidate: reads s2, feeds s1 —
  // the cycle closes through the committed query.
  session.CommitQuery("a", Parse("window[1](s1)"), {"s2"});
  const auto diagnostics =
      session.LintRegistration("b", Parse("window[1](s2)"), {"s1"})
          .ValueOrDie();
  const Diagnostic& cycle = FindCode(diagnostics, DiagCode::kQueryCycle);
  EXPECT_TRUE(cycle.is_error());
  EXPECT_NE(cycle.message.find("b -> a -> b"), std::string::npos);

  // Self-loop: candidate feeds what it reads.
  const auto self_loop =
      session.LintRegistration("loop", Parse("window[1](s1)"), {"s1"})
          .ValueOrDie();
  EXPECT_TRUE(HasCode(self_loop, DiagCode::kQueryCycle));
}

TEST_F(SessionTest, FrontierLintTouchesOnlyTheDependencyFrontier) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  for (int i = 1; i <= 6; ++i) AddStream("s" + std::to_string(i));

  Session session = MakeSession();
  // A five-query chain: q_i reads s_i and feeds s_{i+1} ...
  for (int i = 1; i <= 5; ++i) {
    session.CommitQuery("q" + std::to_string(i),
                        Parse("window[1](s" + std::to_string(i) + ")"),
                        {"s" + std::to_string(i + 1)});
  }
  // ... plus fifty unrelated queries off the temperatures stream.
  for (int i = 0; i < 50; ++i) {
    session.CommitQuery("t" + std::to_string(i),
                        Parse("window[1](temperatures)"), {});
  }

  const std::uint64_t before =
      metrics.GetCounter("serena.analyze.frontier_queries").value();
  // A candidate feeding the chain's head visits exactly the five chain
  // queries — never the fifty unrelated ones.
  const auto diagnostics =
      session.LintRegistration("head", Parse("window[1](temperatures)"),
                               {"s1"})
          .ValueOrDie();
  EXPECT_FALSE(HasCode(diagnostics, DiagCode::kQueryCycle));
  EXPECT_EQ(
      metrics.GetCounter("serena.analyze.frontier_queries").value() - before,
      5u);
}

// --- Whole-set lint / CheckAll ---------------------------------------------

TEST_F(SessionTest, CheckAllTagsQueriesAndAppendsSetFindings) {
  AddStream("s1");
  Session session = MakeSession();
  // A plan with a warning (dead passive invocation) plus a dangling read.
  session.CommitQuery("dead",
                      Parse("project[area](invoke[checkPhoto](cameras))"),
                      {});
  session.CommitQuery("dangling", Parse("window[1](s1)"), {});
  const auto diagnostics = session.CheckAll().ValueOrDie();
  EXPECT_EQ(FindCode(diagnostics, DiagCode::kDeadRealization).query, "dead");
  EXPECT_EQ(FindCode(diagnostics, DiagCode::kDanglingSource).query,
            "dangling");
  // Per-plan findings come first (registration order), set findings last.
  EXPECT_EQ(diagnostics.back().code, DiagCode::kDanglingSource);
}

TEST_F(SessionTest, AnalyzePlanCounterGrowsPerPlanNotPerSetSize) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  Session session = MakeSession();
  const PlanPtr plan = Parse("window[1](temperatures)");

  const std::uint64_t plans_before =
      metrics.GetCounter("serena.analyze.plans").value();
  const std::uint64_t registrations_before =
      metrics.GetCounter("serena.analyze.registrations").value();
  constexpr std::uint64_t kQueries = 40;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    const std::string name = "q" + std::to_string(i);
    ASSERT_TRUE(session.LintRegistration(name, plan, {}).ok());
    session.CommitQuery(name, plan, {});
  }
  // One plan analysis per registration — the committed set's size never
  // multiplies back in (the old gate re-linted all N plans each time).
  EXPECT_EQ(metrics.GetCounter("serena.analyze.plans").value() - plans_before,
            kQueries);
  EXPECT_EQ(metrics.GetCounter("serena.analyze.registrations").value() -
                registrations_before,
            kQueries);
}

}  // namespace
}  // namespace serena
