#include "algebra/formula.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ddl/algebra_parser.h"
#include "ddl/ddl_parser.h"

namespace serena {
namespace {

ExtendedSchemaPtr Schema() {
  return ExtendedSchema::Create(
             "t", {{"i", DataType::kInt},
                   {"r", DataType::kReal},
                   {"s", DataType::kString},
                   {"b", DataType::kBool},
                   {"v", DataType::kString, AttributeKind::kVirtual}})
      .ValueOrDie();
}

Tuple Row(std::int64_t i, double r, const char* s, bool b) {
  return Tuple{Value::Int(i), Value::Real(r), Value::String(s),
               Value::Bool(b)};
}

TEST(FormulaTest, ComparisonSemantics) {
  auto schema = Schema();
  const Tuple row = Row(5, 2.5, "abc", true);
  struct Case {
    const char* text;
    bool expected;
  };
  const Case cases[] = {
      {"i = 5", true},        {"i != 5", false},
      {"i < 6", true},        {"i <= 5", true},
      {"i > 5", false},       {"i >= 6", false},
      {"i = r", false},       {"i > r", true},
      {"r = 2.5", true},      {"s = 'abc'", true},
      {"s < 'abd'", true},    {"s contains 'bc'", true},
      {"s contains 'x'", false},
      {"b = true", true},     {"i = -5", false},
  };
  for (const Case& c : cases) {
    FormulaPtr f = ParseFormula(c.text).ValueOrDie();
    ASSERT_TRUE(f->Validate(*schema).ok()) << c.text;
    EXPECT_EQ(f->Evaluate(*schema, row).ValueOrDie(), c.expected) << c.text;
  }
}

TEST(FormulaTest, ConnectivesShortCircuitCorrectly) {
  auto schema = Schema();
  const Tuple row = Row(5, 2.5, "abc", true);
  EXPECT_TRUE(ParseFormula("i = 5 and s = 'abc'")
                  .ValueOrDie()
                  ->Evaluate(*schema, row)
                  .ValueOrDie());
  EXPECT_FALSE(ParseFormula("i = 5 and s = 'x'")
                   .ValueOrDie()
                   ->Evaluate(*schema, row)
                   .ValueOrDie());
  EXPECT_TRUE(ParseFormula("i = 9 or s = 'abc'")
                  .ValueOrDie()
                  ->Evaluate(*schema, row)
                  .ValueOrDie());
  EXPECT_TRUE(ParseFormula("not i = 9")
                  .ValueOrDie()
                  ->Evaluate(*schema, row)
                  .ValueOrDie());
}

TEST(FormulaTest, ValidateRejectsVirtualAndMissing) {
  auto schema = Schema();
  EXPECT_FALSE(
      ParseFormula("v = 'x'").ValueOrDie()->Validate(*schema).ok());
  EXPECT_FALSE(
      ParseFormula("ghost = 1").ValueOrDie()->Validate(*schema).ok());
  EXPECT_TRUE(ParseFormula("i = 1 and r > 0")
                  .ValueOrDie()
                  ->Validate(*schema)
                  .ok());
}

TEST(FormulaTest, TypeErrorsOnOrdering) {
  auto schema = Schema();
  const Tuple row = Row(5, 2.5, "abc", true);
  // Ordering across string/int is a type error; equality is just false.
  EXPECT_FALSE(
      ParseFormula("s < 5").ValueOrDie()->Evaluate(*schema, row).ok());
  EXPECT_FALSE(ParseFormula("s contains 5")
                   .ValueOrDie()
                   ->Evaluate(*schema, row)
                   .ok());
  EXPECT_FALSE(
      ParseFormula("s = 5").ValueOrDie()->Evaluate(*schema, row)
          .ValueOrDie());
}

TEST(FormulaTest, CollectAttributesAndReferences) {
  FormulaPtr f =
      ParseFormula("i = 1 and (s = 'x' or not r > 2)").ValueOrDie();
  std::set<std::string> attrs;
  f->CollectAttributes(&attrs);
  EXPECT_EQ(attrs, (std::set<std::string>{"i", "s", "r"}));
  EXPECT_TRUE(FormulaReferences(*f, "s"));
  EXPECT_FALSE(FormulaReferences(*f, "b"));
}

TEST(FormulaTest, SplitAndCombineConjuncts) {
  FormulaPtr f =
      ParseFormula("i = 1 and s = 'x' and r > 2").ValueOrDie();
  const auto conjuncts = SplitConjuncts(f);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), "i = 1");
  EXPECT_EQ(conjuncts[2]->ToString(), "r > 2");
  // Disjunction is a single conjunct.
  FormulaPtr g = ParseFormula("i = 1 or s = 'x'").ValueOrDie();
  EXPECT_EQ(SplitConjuncts(g).size(), 1u);
  // Recombination preserves semantics structurally.
  FormulaPtr combined = CombineConjuncts(conjuncts);
  EXPECT_TRUE(combined->Equals(*f));
  EXPECT_EQ(CombineConjuncts({}), nullptr);
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

TEST(FormulaTest, WithRenamedAttribute) {
  FormulaPtr f =
      ParseFormula("area = 'office' and not (area contains 'x' or i = "
                   "1)")
          .ValueOrDie();
  FormulaPtr renamed = f->WithRenamedAttribute("area", "location");
  EXPECT_EQ(renamed->ToString(),
            "(location = 'office' and not ((location contains 'x' or i = "
            "1)))");
  // Untouched formula unchanged (immutability).
  EXPECT_NE(f->ToString().find("area"), std::string::npos);
}

TEST(FormulaTest, EqualsIsStructural) {
  FormulaPtr a = ParseFormula("i = 1 and s = 'x'").ValueOrDie();
  FormulaPtr b = ParseFormula("i = 1 and s = 'x'").ValueOrDie();
  FormulaPtr c = ParseFormula("s = 'x' and i = 1").ValueOrDie();
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));  // Structural, not semantic.
}

/// Parser robustness sweep: mutated inputs must never crash — they parse
/// or fail with ParseError.
class ParserRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParserRobustnessTest, MutatedAlgebraNeverCrashes) {
  const std::string base =
      "project[photo](invoke[takePhoto](select[quality >= 5 and area = "
      "'office'](assign[quality := 5](cameras))))";
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.NextBounded(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(32 + rng.NextBounded(95)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto plan = ParseAlgebra(mutated);
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kParseError) << mutated;
    }
  }
}

TEST_P(ParserRobustnessTest, MutatedDdlNeverCrashes) {
  const std::string base =
      "PROTOTYPE checkPhoto(area STRING) : (quality INTEGER, delay REAL); "
      "EXTENDED RELATION cameras (camera SERVICE, area STRING, quality "
      "INTEGER VIRTUAL, delay REAL VIRTUAL) USING BINDING PATTERNS ("
      "checkPhoto[camera](area) : (quality, delay));";
  Rng rng(GetParam() ^ 0x9999);
  for (int round = 0; round < 50; ++round) {
    std::string mutated = base;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.NextBounded(95));
    auto statements = ParseDdl(mutated);
    if (!statements.ok()) {
      EXPECT_EQ(statements.status().code(), StatusCode::kParseError)
          << mutated;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace serena
