#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"

namespace serena {
namespace {

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\na b\r "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("ViRtUaL"), "virtual");
  EXPECT_TRUE(EqualsIgnoreCase("PROTOTYPE", "prototype"));
  EXPECT_FALSE(EqualsIgnoreCase("proto", "prototype"));
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StringFormat("s%04d", 7), "s0007");
  EXPECT_EQ(StringFormat("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(StringFormat("no args"), "no args");
}

TEST(ClockTest, MonotoneAdvance) {
  LogicalClock clock;
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.Tick(), 1);
  EXPECT_EQ(clock.Tick(), 2);
  EXPECT_EQ(clock.Advance(5), 7);
  EXPECT_EQ(clock.Advance(-3), 7);  // Never moves backwards.
  LogicalClock started(100);
  EXPECT_EQ(started.now(), 100);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.NextUint64();
    if (va != b.NextUint64()) all_equal = false;
    if (va != c.NextUint64()) any_diff_from_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(RngTest, BoundedAndRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    const auto v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.NextInt(3, 3), 3);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.NextBool(0.5) ? 1 : 0;
  EXPECT_GT(heads, 800);
  EXPECT_LT(heads, 1200);
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sq / n, 1.0, 0.15);
}

TEST(HashTest, StableHashIsStable) {
  // Values pinned: StableHash must not change across runs/platforms, it
  // keys persistent artifacts like memo tables in tests.
  EXPECT_EQ(StableHash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(StableHash("a"), StableHash("a"));
  EXPECT_NE(StableHash("a"), StableHash("b"));
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should change many output bits.
  const std::uint64_t a = Mix64(0x1234);
  const std::uint64_t b = Mix64(0x1235);
  int differing = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (((a ^ b) >> bit) & 1) ++differing;
  }
  EXPECT_GT(differing, 16);
}

}  // namespace
}  // namespace serena
