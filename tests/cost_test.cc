#include "rewrite/cost.h"

#include <gtest/gtest.h>

#include "env/scenario.h"

namespace serena {
namespace {

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TemperatureScenarioOptions options;
    options.extra_sensors = 96;  // 100 sensors total.
    scenario_ = TemperatureScenario::Build(options).MoveValueOrDie();
  }

  PlanCost Cost(const PlanPtr& plan) {
    return EstimateCost(plan, scenario_->env(), &scenario_->streams())
        .ValueOrDie();
  }

  std::unique_ptr<TemperatureScenario> scenario_;
};

TEST_F(CostTest, ScanUsesActualCardinality) {
  EXPECT_DOUBLE_EQ(Cost(Scan("sensors")).cardinality, 100.0);
  EXPECT_DOUBLE_EQ(Cost(Scan("contacts")).cardinality, 3.0);
  EXPECT_DOUBLE_EQ(Cost(Scan("sensors")).invocations, 0.0);
}

TEST_F(CostTest, SelectionShrinksCardinality) {
  PlanPtr scan = Scan("sensors");
  PlanPtr eq = Select(scan, Formula::Compare(
                                Operand::Attr("location"), CompareOp::kEq,
                                Operand::Const(Value::String("office"))));
  PlanPtr range =
      Select(scan, Formula::Compare(Operand::Attr("location"),
                                    CompareOp::kLt,
                                    Operand::Const(Value::String("z"))));
  EXPECT_LT(Cost(eq).cardinality, Cost(scan).cardinality);
  // Equality assumed more selective than a range predicate.
  EXPECT_LT(Cost(eq).cardinality, Cost(range).cardinality);
}

TEST_F(CostTest, InvokeChargesPerInputTuple) {
  PlanPtr invoke_all = Invoke(Scan("sensors"), "getTemperature");
  const PlanCost all = Cost(invoke_all);
  EXPECT_DOUBLE_EQ(all.invocations, 100.0);
  EXPECT_DOUBLE_EQ(all.active_invocations, 0.0);  // Passive.

  // Filtering first cuts the estimated invocations.
  PlanPtr invoke_few = Invoke(
      Select(Scan("sensors"),
             Formula::Compare(Operand::Attr("location"), CompareOp::kEq,
                              Operand::Const(Value::String("office")))),
      "getTemperature");
  EXPECT_LT(Cost(invoke_few).invocations, all.invocations);
}

TEST_F(CostTest, ActiveInvocationsTracked) {
  PlanPtr q1 = scenario_->Q1();
  const PlanCost cost = Cost(q1);
  EXPECT_GT(cost.active_invocations, 0.0);
  EXPECT_LE(cost.active_invocations, cost.invocations);
}

TEST_F(CostTest, TotalWeighsInvocationsOverTuples) {
  // 100 invocations must dominate thousands of local tuples.
  PlanPtr heavy_local = Join(Scan("sensors"), Scan("surveillance"));
  PlanPtr few_remote = Invoke(Scan("contacts"), "sendMessage");
  // Q1-ish shape (3 invocations) vs a local join: both estimable;
  // invocations are priced 100x.
  EXPECT_GT(Cost(few_remote).Total() / 3.0, 90.0);
  (void)heavy_local;
}

TEST_F(CostTest, WindowAndStreamingEstimable) {
  PlanPtr plan = Streaming(
      Select(Window("temperatures", 1),
             Formula::Compare(Operand::Attr("temperature"), CompareOp::kGt,
                              Operand::Const(Value::Real(35.5)))),
      StreamingType::kInsertion);
  const PlanCost cost = Cost(plan);
  EXPECT_GT(cost.cardinality, 0.0);
  EXPECT_DOUBLE_EQ(cost.invocations, 0.0);
}

TEST_F(CostTest, AggregateCompressesCardinality) {
  PlanPtr base = Scan("sensors");
  PlanPtr agg = Aggregate(base, {"location"},
                          {{AggregateFn::kCount, "", "n"}});
  EXPECT_LT(Cost(agg).cardinality, Cost(base).cardinality);
  EXPECT_GE(Cost(agg).cardinality, 1.0);
}

TEST_F(CostTest, ErrorsOnUnknownRelationOrNull) {
  EXPECT_FALSE(
      EstimateCost(Scan("ghost"), scenario_->env(), nullptr).ok());
  EXPECT_FALSE(
      EstimateCost(nullptr, scenario_->env(), nullptr).ok());
}

TEST_F(CostTest, CustomOptionsChangeEstimates) {
  CostModelOptions pessimistic;
  pessimistic.invocation_fanout = 4.0;
  PlanPtr plan = Invoke(Scan("sensors"), "getTemperature");
  auto normal =
      EstimateCost(plan, scenario_->env(), nullptr).ValueOrDie();
  auto fanout =
      EstimateCost(plan, scenario_->env(), nullptr, pessimistic)
          .ValueOrDie();
  EXPECT_GT(fanout.cardinality, normal.cardinality);
}

}  // namespace
}  // namespace serena
