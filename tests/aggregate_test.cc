#include "algebra/aggregate.h"

#include <gtest/gtest.h>

#include "ddl/algebra_parser.h"
#include "env/scenario.h"
#include "stream/executor.h"

namespace serena {
namespace {

XRelation MakeReadings() {
  auto schema =
      ExtendedSchema::Create("readings",
                             {{"location", DataType::kString},
                              {"temperature", DataType::kReal},
                              {"note", DataType::kString,
                               AttributeKind::kVirtual}})
          .ValueOrDie();
  XRelation r(schema);
  auto add = [&](const char* loc, double temp) {
    (void)r.Insert(Tuple{Value::String(loc), Value::Real(temp)})
        .ValueOrDie();
  };
  add("office", 20.0);
  add("office", 22.0);
  add("office", 24.0);
  add("roof", 10.0);
  add("roof", 14.0);
  return r;
}

TEST(AggregateTest, MeanTemperaturePerLocation) {
  // §1.2: "compute a mean temperature for a given location".
  XRelation result =
      Aggregate(MakeReadings(), {"location"},
                {{AggregateFn::kAvg, "temperature", "mean_temp"}})
          .ValueOrDie();
  ASSERT_EQ(result.size(), 2u);
  const auto rows = result.Sorted();
  EXPECT_EQ(rows[0][0], Value::String("office"));
  EXPECT_EQ(rows[0][1], Value::Real(22.0));
  EXPECT_EQ(rows[1][0], Value::String("roof"));
  EXPECT_EQ(rows[1][1], Value::Real(12.0));
}

TEST(AggregateTest, AllFunctions) {
  XRelation result =
      Aggregate(MakeReadings(), {"location"},
                {{AggregateFn::kCount, "", "n"},
                 {AggregateFn::kSum, "temperature", "total"},
                 {AggregateFn::kMin, "temperature", "lo"},
                 {AggregateFn::kMax, "temperature", "hi"}})
          .ValueOrDie();
  const auto rows = result.Sorted();
  ASSERT_EQ(rows.size(), 2u);
  // office: n=3, total=66, lo=20, hi=24.
  EXPECT_EQ(rows[0][1], Value::Int(3));
  EXPECT_EQ(rows[0][2], Value::Real(66.0));
  EXPECT_EQ(rows[0][3], Value::Real(20.0));
  EXPECT_EQ(rows[0][4], Value::Real(24.0));
}

TEST(AggregateTest, GlobalAggregateWithoutGroups) {
  XRelation result = Aggregate(MakeReadings(), {},
                               {{AggregateFn::kCount, "", "n"}})
                         .ValueOrDie();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0][0], Value::Int(5));
}

TEST(AggregateTest, EmptyInputYieldsNoGroups) {
  XRelation empty(MakeReadings().schema_ptr());
  XRelation result =
      Aggregate(empty, {}, {{AggregateFn::kCount, "", "n"}}).ValueOrDie();
  EXPECT_TRUE(result.empty());
}

TEST(AggregateTest, IntegerSumStaysIntegral) {
  auto schema = ExtendedSchema::Create("t", {{"k", DataType::kString},
                                             {"v", DataType::kInt}})
                    .ValueOrDie();
  XRelation r(schema);
  (void)r.Insert(Tuple{Value::String("a"), Value::Int(2)});
  (void)r.Insert(Tuple{Value::String("a"), Value::Int(3)});
  XRelation result =
      Aggregate(r, {"k"}, {{AggregateFn::kSum, "v", "s"}}).ValueOrDie();
  EXPECT_EQ(result.tuples()[0][1], Value::Int(5));
  // And the schema says INTEGER.
  EXPECT_EQ(result.schema().FindAttribute("s")->type, DataType::kInt);
}

TEST(AggregateTest, MinMaxOnStrings) {
  XRelation result =
      Aggregate(MakeReadings(), {},
                {{AggregateFn::kMin, "location", "first"},
                 {AggregateFn::kMax, "location", "last"}})
          .ValueOrDie();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0][0], Value::String("office"));
  EXPECT_EQ(result.tuples()[0][1], Value::String("roof"));
}

TEST(AggregateTest, Validation) {
  XRelation readings = MakeReadings();
  // Virtual group-by attribute.
  EXPECT_FALSE(
      Aggregate(readings, {"note"}, {{AggregateFn::kCount, "", "n"}}).ok());
  // Missing input attribute.
  EXPECT_FALSE(Aggregate(readings, {}, {{AggregateFn::kAvg, "nope", "m"}})
                   .ok());
  // Non-numeric avg.
  EXPECT_FALSE(
      Aggregate(readings, {}, {{AggregateFn::kAvg, "location", "m"}}).ok());
  // Sum without input.
  EXPECT_FALSE(Aggregate(readings, {}, {{AggregateFn::kSum, "", "s"}}).ok());
  // No aggregate columns at all.
  EXPECT_FALSE(Aggregate(readings, {"location"}, {}).ok());
}

TEST(AggregateTest, DropsBindingPatterns) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  const XRelation& contacts =
      *scenario->env().GetRelation("contacts").ValueOrDie();
  XRelation result =
      Aggregate(contacts, {"messenger"}, {{AggregateFn::kCount, "", "n"}})
          .ValueOrDie();
  EXPECT_TRUE(result.schema().binding_patterns().empty());
  EXPECT_EQ(result.size(), 2u);  // email, jabber.
}

TEST(AggregatePlanTest, MeanTemperatureOverInvokedSensors) {
  // The full §1.2 pipeline: realize temperatures via β, then γ the mean
  // per location.
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  PlanPtr plan =
      Aggregate(Invoke(Scan("sensors"), "getTemperature"), {"location"},
                {{AggregateFn::kAvg, "temperature", "mean_temp"},
                 {AggregateFn::kCount, "", "sensors"}});
  QueryResult result =
      Execute(plan, &scenario->env(), &scenario->streams(), 5)
          .ValueOrDie();
  EXPECT_EQ(result.relation.size(), 3u);  // corridor, office, roof.
  // The office row aggregates two sensors.
  for (const Tuple& row : result.relation.tuples()) {
    if (row[0] == Value::String("office")) {
      EXPECT_EQ(row[2], Value::Int(2));
    }
  }
  // Schema inference agrees with evaluation.
  auto inferred =
      plan->InferSchema(scenario->env(), &scenario->streams());
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(result.relation.schema().SameAttributes(**inferred));
}

TEST(AggregatePlanTest, ParserRoundTrip) {
  const char* text =
      "aggregate[location; avg(temperature) -> mean_temp, count() -> "
      "n](invoke[getTemperature](sensors))";
  PlanPtr plan = ParseAlgebra(text).ValueOrDie();
  EXPECT_EQ(plan->ToString(), text);
  // Empty group list round-trips too.
  PlanPtr global =
      ParseAlgebra("aggregate[; count() -> n](sensors)").ValueOrDie();
  EXPECT_EQ(global->ToString(), "aggregate[; count() -> n](sensors)");
}

TEST(AggregatePlanTest, ContinuousMeanOverWindow) {
  // Continuous monitoring: mean temperature per location over the last 3
  // instants (feeding a real-time graph, §1.2).
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  PlanPtr plan = Aggregate(Window("temperatures", 3), {"location"},
                           {{AggregateFn::kAvg, "temperature", "mean"}});
  auto query = std::make_shared<ContinuousQuery>("means", plan);
  std::size_t last = 0;
  query->set_sink(
      [&](Timestamp, const XRelation& r) { last = r.size(); });
  ASSERT_TRUE(executor.Register(query).ok());
  executor.Run(5);
  EXPECT_EQ(last, 3u);  // One mean per location.
}

}  // namespace
}  // namespace serena
