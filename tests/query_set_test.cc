// Tests for the cross-query dependency lint (SER040/SER041/SER042) and
// the feeds/reads graph extraction it is built on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/query_set.h"

namespace serena {
namespace {

bool HasCode(const std::vector<Diagnostic>& diagnostics, DiagCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& FindCode(const std::vector<Diagnostic>& diagnostics,
                           DiagCode code) {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return d;
  }
  static const Diagnostic missing{};
  ADD_FAILURE() << "no diagnostic with code " << DiagCodeId(code);
  return missing;
}

/// A minimal standing query reading `stream` (the plan is only inspected
/// for its Window leaves here).
QuerySetEntry Reads(const std::string& name, const std::string& stream,
                    std::vector<std::string> feeds = {}) {
  return QuerySetEntry{name, Window(stream, 1), std::move(feeds)};
}

TEST(CollectWindowReadsTest, SortedAndDeduplicated) {
  const PlanPtr plan = UnionOf(
      Join(Window("b", 1), Window("a", 2)),
      Select(Window("b", 3),
             Formula::Compare(Operand::Attr("v"), CompareOp::kGt,
                              Operand::Const(Value::Int(0)))));
  EXPECT_EQ(CollectWindowReads(plan),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(CollectWindowReads(Scan("r")).empty());
}

TEST(QuerySetTest, LinearPipelineIsClean) {
  QuerySetOptions options;
  options.source_fed_streams = {"temperatures"};
  const auto diagnostics =
      AnalyzeQuerySet({Reads("hot-feed", "temperatures", {"hot"}),
                       Reads("hot-count", "hot")},
                      options)
          .ValueOrDie();
  EXPECT_TRUE(diagnostics.empty());
}

TEST(QuerySetTest, Ser040SelfLoopRejected) {
  const auto diagnostics =
      AnalyzeQuerySet({Reads("echo", "s", {"s"})}).ValueOrDie();
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kQueryCycle);
  EXPECT_TRUE(d.is_error());
  EXPECT_EQ(d.query, "echo");
}

TEST(QuerySetTest, Ser040TwoQueryCycleRendersThePath) {
  QuerySetOptions options;
  options.include_warnings = false;  // Silence the dangling-entry warnings.
  const auto diagnostics =
      AnalyzeQuerySet(
          {Reads("a", "y", {"x"}), Reads("b", "x", {"y"})}, options)
          .ValueOrDie();
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kQueryCycle);
  EXPECT_NE(d.message.find("->"), std::string::npos);
}

TEST(QuerySetTest, Ser041DanglingWindowSourceWarned) {
  const auto diagnostics =
      AnalyzeQuerySet({Reads("orphan", "nowhere")}).ValueOrDie();
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kDanglingSource);
  EXPECT_EQ(d.severity, Diagnostic::Severity::kWarning);
  EXPECT_EQ(d.query, "orphan");
  EXPECT_NE(d.hint.find("AddSource"), std::string::npos);
}

TEST(QuerySetTest, Ser041SuppressedForDeclaredSources) {
  QuerySetOptions options;
  options.source_fed_streams = {"nowhere"};
  EXPECT_TRUE(
      AnalyzeQuerySet({Reads("orphan", "nowhere")}, options)
          .ValueOrDie()
          .empty());
}

TEST(QuerySetTest, Ser041SuppressedWithoutWarnings) {
  QuerySetOptions options;
  options.include_warnings = false;
  EXPECT_TRUE(AnalyzeQuerySet({Reads("orphan", "nowhere")}, options)
                  .ValueOrDie()
                  .empty());
}

TEST(QuerySetTest, Ser042WriterConflictNamesBothQueries) {
  QuerySetOptions options;
  options.source_fed_streams = {"in"};
  const auto diagnostics =
      AnalyzeQuerySet(
          {Reads("first", "in", {"out"}), Reads("second", "in", {"out"})},
          options)
          .ValueOrDie();
  const Diagnostic& d = FindCode(diagnostics, DiagCode::kWriterConflict);
  EXPECT_TRUE(d.is_error());
  EXPECT_NE(d.message.find("first"), std::string::npos);
  EXPECT_NE(d.message.find("second"), std::string::npos);
  EXPECT_NE(d.message.find("out"), std::string::npos);
}

TEST(QuerySetTest, EmptySetIsClean) {
  EXPECT_TRUE(AnalyzeQuerySet({}).ValueOrDie().empty());
}

}  // namespace
}  // namespace serena
