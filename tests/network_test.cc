#include "pems/network.h"

#include <gtest/gtest.h>

namespace serena {
namespace {

SimulatedNetwork::Options ZeroLatency() {
  SimulatedNetwork::Options options;
  options.min_latency = 0;
  options.max_latency = 0;
  return options;
}

TEST(NetworkTest, AttachDetach) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.Attach("a", [](const NetworkMessage&) {}).ok());
  EXPECT_TRUE(network.IsAttached("a"));
  EXPECT_EQ(network.Attach("a", [](const NetworkMessage&) {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(network.Attach("*", [](const NetworkMessage&) {}).ok());
  ASSERT_TRUE(network.Detach("a").ok());
  EXPECT_EQ(network.Detach("a").code(), StatusCode::kNotFound);
}

TEST(NetworkTest, UnicastDelivery) {
  SimulatedNetwork network(ZeroLatency());
  std::vector<std::string> received;
  ASSERT_TRUE(network
                  .Attach("b",
                          [&](const NetworkMessage& m) {
                            received.push_back(m.type + ":" + m.payload);
                          })
                  .ok());
  network.Send(0, NetworkMessage{"a", "b", "ping", "1"});
  EXPECT_EQ(network.DeliverDue(0), 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "ping:1");
}

TEST(NetworkTest, LatencyDelaysDelivery) {
  SimulatedNetwork::Options options;
  options.min_latency = 3;
  options.max_latency = 3;
  SimulatedNetwork network(options);
  int received = 0;
  ASSERT_TRUE(
      network.Attach("b", [&](const NetworkMessage&) { ++received; }).ok());
  network.Send(0, NetworkMessage{"a", "b", "ping", ""});
  EXPECT_EQ(network.DeliverDue(2), 0u);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.DeliverDue(3), 1u);
  EXPECT_EQ(received, 1);
}

TEST(NetworkTest, BroadcastSkipsSender) {
  SimulatedNetwork network(ZeroLatency());
  int a_received = 0;
  int b_received = 0;
  ASSERT_TRUE(
      network.Attach("a", [&](const NetworkMessage&) { ++a_received; }).ok());
  ASSERT_TRUE(
      network.Attach("b", [&](const NetworkMessage&) { ++b_received; }).ok());
  network.Broadcast(0, "a", "alive", "x");
  network.DeliverDue(0);
  EXPECT_EQ(a_received, 0);
  EXPECT_EQ(b_received, 1);
}

TEST(NetworkTest, DropRateLosesMessages) {
  SimulatedNetwork::Options options = ZeroLatency();
  options.drop_rate = 1.0;
  SimulatedNetwork network(options);
  int received = 0;
  ASSERT_TRUE(
      network.Attach("b", [&](const NetworkMessage&) { ++received; }).ok());
  network.Send(0, NetworkMessage{"a", "b", "ping", ""});
  EXPECT_EQ(network.DeliverDue(10), 0u);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().dropped, 1u);
}

TEST(NetworkTest, MessageToDetachedNodeIsDropped) {
  SimulatedNetwork network(ZeroLatency());
  network.Send(0, NetworkMessage{"a", "ghost", "ping", ""});
  EXPECT_EQ(network.DeliverDue(0), 0u);
  EXPECT_EQ(network.stats().dropped, 1u);
}

TEST(NetworkTest, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    SimulatedNetwork::Options options;
    options.seed = seed;
    options.min_latency = 0;
    options.max_latency = 5;
    SimulatedNetwork network(options);
    std::vector<int> deliveries;
    (void)network.Attach("b", [](const NetworkMessage&) {});
    for (int i = 0; i < 20; ++i) {
      network.Send(i, NetworkMessage{"a", "b", "t", ""});
    }
    for (Timestamp t = 0; t < 30; ++t) {
      deliveries.push_back(static_cast<int>(network.DeliverDue(t)));
    }
    return deliveries;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace serena
