#include "stream/executor.h"

#include <gtest/gtest.h>

#include "env/scenario.h"

namespace serena {
namespace {

/// End-to-end continuous-query tests over the temperature surveillance
/// scenario — the paper's §5.2 experiment, Example 8's Q3/Q4.
class ContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
    executor_ = std::make_unique<ContinuousExecutor>(&scenario_->env(),
                                                     &scenario_->streams());
    executor_->AddSource(
        [this](Timestamp t) { return scenario_->PumpTemperatureStream(t); });
  }

  std::unique_ptr<TemperatureScenario> scenario_;
  std::unique_ptr<ContinuousExecutor> executor_;
};

TEST_F(ContinuousTest, TemperatureStreamIsFedEachInstant) {
  executor_->Run(3);
  const XDRelation* stream =
      scenario_->streams().GetStream("temperatures").ValueOrDie();
  // 4 sensors x 3 instants.
  EXPECT_EQ(stream->InsertedDuring(-1, 100).size(), 12u);
}

TEST_F(ContinuousTest, Q3SendsAlertsOnlyWhenHot) {
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  ASSERT_TRUE(executor_->Register(q3).ok());

  // Normal temperatures: no alerts.
  executor_->Run(3);
  EXPECT_TRUE(executor_->last_errors().empty());
  EXPECT_TRUE(scenario_->AllSentMessages().empty());

  // Heat the office sensors over the 35.5°C threshold (like heating the
  // physical iButtons in the paper's experiment).
  scenario_->sensors()[1]->set_bias(20.0);  // sensor06 (office).
  executor_->Run(1);
  const auto messages = scenario_->AllSentMessages();
  ASSERT_FALSE(messages.empty());
  // Carla manages the office: the alert goes to her address, via email.
  for (const SentMessage& m : messages) {
    EXPECT_EQ(m.address, "carla@elysee.fr");
    EXPECT_EQ(m.text, "Hot!");
  }
  EXPECT_FALSE(q3->accumulated_actions().empty());

  // Cooling down stops the alerts.
  scenario_->sensors()[1]->set_bias(0.0);
  scenario_->ClearOutboxes();
  executor_->Run(2);
  EXPECT_TRUE(scenario_->AllSentMessages().empty());
}

TEST_F(ContinuousTest, Q3DoesNotReinvokeForStandingTuples) {
  // §4.2: the continuous invocation operator only fires for newly
  // inserted tuples. A constant-hot sensor produces one reading per
  // instant (fresh tuples each time because the temperature value
  // changes); message count must track reading count, not relation size.
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  ASSERT_TRUE(executor_->Register(q3).ok());
  scenario_->sensors()[1]->set_bias(20.0);
  executor_->Run(4);
  // One alert per instant from sensor06 (sensor07's base may also cross).
  const auto messages = scenario_->AllSentMessages();
  EXPECT_GE(messages.size(), 4u);
  EXPECT_LE(messages.size(), 8u);  // At most both office sensors alerting.
}

TEST_F(ContinuousTest, Q4ProducesPhotoStreamWhenCold) {
  auto q4 = std::make_shared<ContinuousQuery>("q4", scenario_->Q4());
  std::vector<std::size_t> deltas;
  q4->set_sink([&](Timestamp, const XRelation& result) {
    deltas.push_back(result.size());
  });
  ASSERT_TRUE(executor_->Register(q4).ok());

  executor_->Run(2);
  EXPECT_TRUE(executor_->last_errors().empty());
  // Nothing below 12°C yet.
  for (std::size_t d : deltas) EXPECT_EQ(d, 0u);

  // Freeze the roof sensor (sensor22, watched by webcam07).
  scenario_->sensors()[3]->set_bias(-10.0);
  deltas.clear();
  executor_->Run(1);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0], 1u);  // One fresh (area, photo) delta tuple.
  EXPECT_EQ(scenario_->cameras()[2]->photos_taken(), 1u);
  // Passive photos: no actions recorded.
  EXPECT_TRUE(executor_->GetQuery("q4").ValueOrDie()
                  ->accumulated_actions()
                  .empty());
}

TEST_F(ContinuousTest, DynamicDiscoveryIntegratesNewSensorWithoutRestart) {
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  ASSERT_TRUE(executor_->Register(q3).ok());
  executor_->Run(2);

  // A new (hot!) sensor appears in the office while the query runs.
  ASSERT_TRUE(scenario_->AddSensor("sensor99", "office", 60.0).ok());
  executor_->Run(1);
  const auto messages = scenario_->AllSentMessages();
  ASSERT_FALSE(messages.empty());
  EXPECT_EQ(messages[0].address, "carla@elysee.fr");
}

TEST_F(ContinuousTest, DisappearedSensorDoesNotKillQueries) {
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  ASSERT_TRUE(executor_->Register(q3).ok());
  executor_->Run(1);
  // sensor22 disappears from the registry but stays in the relation for an
  // instant (the discovery table lags) - queries must keep running.
  ASSERT_TRUE(scenario_->env().registry().Unregister("sensor22").ok());
  executor_->Run(2);
  EXPECT_TRUE(executor_->last_errors().empty());
}

TEST_F(ContinuousTest, RecoveredServiceIsRetriedForStandingTuples) {
  // A standing query directly over invoke[getTemperature](sensors): the
  // sensors relation is static, so its tuples are "standing" after the
  // first instant. If a sensor's invocation fails while unreachable, it
  // must be retried (not considered realized) once re-registered.
  auto readings = std::make_shared<ContinuousQuery>(
      "readings", Invoke(Scan("sensors"), "getTemperature"));
  std::size_t last = 0;
  readings->set_sink(
      [&](Timestamp, const XRelation& r) { last = r.size(); });
  ASSERT_TRUE(executor_->Register(readings).ok());

  // sensor22 unreachable from the start.
  auto sensor22 = scenario_->env().registry().Lookup("sensor22")
                      .ValueOrDie();
  ASSERT_TRUE(scenario_->env().registry().Unregister("sensor22").ok());
  executor_->Run(1);
  EXPECT_EQ(last, 3u);  // 3 of 4 sensors answered.

  // The device comes back: its standing tuple is retried and answers.
  ASSERT_TRUE(scenario_->env().registry().Register(sensor22).ok());
  executor_->Run(1);
  EXPECT_EQ(last, 4u);
}

TEST_F(ContinuousTest, StreamingDeletionAndHeartbeat) {
  // S[deletion] over the windowed hot readings reports readings that left
  // the window; S[heartbeat] reports everything present.
  PlanPtr hot = Select(Window("temperatures", 1),
                       Formula::Compare(Operand::Attr("temperature"),
                                        CompareOp::kGt,
                                        Operand::Const(Value::Real(35.5))));
  auto deletion = std::make_shared<ContinuousQuery>(
      "deletions", Streaming(hot, StreamingType::kDeletion));
  auto heartbeat = std::make_shared<ContinuousQuery>(
      "heartbeat", Streaming(hot, StreamingType::kHeartbeat));
  ASSERT_TRUE(executor_->Register(deletion).ok());
  ASSERT_TRUE(executor_->Register(heartbeat).ok());

  scenario_->sensors()[0]->set_bias(30.0);  // Hot corridor sensor.
  executor_->Run(1);
  scenario_->sensors()[0]->set_bias(0.0);  // Cools down.

  std::size_t deletion_count = 0;
  deletion->set_sink([&](Timestamp, const XRelation& r) {
    deletion_count += r.size();
  });
  executor_->Run(1);
  // The hot reading left the 1-instant window: reported as deletion.
  EXPECT_EQ(deletion_count, 1u);
}

TEST_F(ContinuousTest, WindowWidensContent) {
  std::size_t w1_total = 0;
  std::size_t w3_total = 0;
  auto w1 = std::make_shared<ContinuousQuery>("w1",
                                              Window("temperatures", 1));
  auto w3 = std::make_shared<ContinuousQuery>("w3",
                                              Window("temperatures", 3));
  w1->set_sink(
      [&](Timestamp, const XRelation& r) { w1_total += r.size(); });
  w3->set_sink(
      [&](Timestamp, const XRelation& r) { w3_total += r.size(); });
  ASSERT_TRUE(executor_->Register(w1).ok());
  ASSERT_TRUE(executor_->Register(w3).ok());
  executor_->Run(5);
  EXPECT_GT(w3_total, w1_total);
}

TEST_F(ContinuousTest, UnregisterStopsQuery) {
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  ASSERT_TRUE(executor_->Register(q3).ok());
  EXPECT_EQ(executor_->Unregister("q3"), Status::OK());
  EXPECT_EQ(executor_->Unregister("q3").code(), StatusCode::kNotFound);
  scenario_->sensors()[1]->set_bias(20.0);
  executor_->Run(2);
  EXPECT_TRUE(scenario_->AllSentMessages().empty());
}

TEST_F(ContinuousTest, StreamHistoryIsPruned) {
  auto w2 = std::make_shared<ContinuousQuery>("w2",
                                              Window("temperatures", 2));
  ASSERT_TRUE(executor_->Register(w2).ok());
  executor_->set_prune_slack(0);
  executor_->Run(10);
  const XDRelation* stream =
      scenario_->streams().GetStream("temperatures").ValueOrDie();
  // Only ~2 instants of history retained (4 sensors x 3 instants bound).
  EXPECT_LE(stream->size(), 12u);
}

TEST_F(ContinuousTest, ActionLogKeepsEveryOccurrenceWithTimestamps) {
  auto q3 = std::make_shared<ContinuousQuery>("q3", scenario_->Q3());
  ASSERT_TRUE(executor_->Register(q3).ok());
  scenario_->sensors()[1]->set_bias(20.0);  // Hot from the first instant.
  executor_->Run(3);
  // The Def. 8 set may collapse repeats, but the log never does: one
  // entry per physical send, tagged with its instant.
  const auto& log = q3->action_log();
  EXPECT_EQ(log.size(), scenario_->AllSentMessages().size());
  EXPECT_GE(log.size(), 3u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].instant, log[i].instant);  // Firing order.
  }
  EXPECT_EQ(log[0].action.prototype, "sendMessage");
  EXPECT_GE(log.size(), q3->accumulated_actions().size());
}

TEST(PhotoMessagingTest, Q5SendsPhotoAlertsToAreaManager) {
  // The full §5.2 surveillance pipeline: hot reading -> manager's contact
  // entry -> camera of the same area -> takePhoto -> sendPhotoMessage.
  TemperatureScenarioOptions options;
  options.photo_messaging = true;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  ContinuousExecutor executor(&scenario->env(), &scenario->streams());
  executor.AddSource(
      [&](Timestamp t) { return scenario->PumpTemperatureStream(t); });
  auto q5 = std::make_shared<ContinuousQuery>("q5", scenario->Q5());
  ASSERT_TRUE(executor.Register(q5).ok());

  executor.Run(2);
  EXPECT_TRUE(executor.last_errors().empty());
  EXPECT_TRUE(scenario->AllSentMessages().empty());

  scenario->sensors()[1]->set_bias(25.0);  // Office overheats.
  executor.Run(1);
  const auto messages = scenario->AllSentMessages();
  ASSERT_FALSE(messages.empty());
  for (const SentMessage& m : messages) {
    EXPECT_EQ(m.address, "carla@elysee.fr");  // Office manager.
    EXPECT_EQ(m.text, "Hot! photo attached");
    EXPECT_GT(m.photo_bytes, 0u);  // The picture really rode along.
  }
  // Only the office camera shot photos.
  EXPECT_GT(scenario->cameras()[0]->photos_taken(), 0u);  // camera01.
  EXPECT_EQ(scenario->cameras()[2]->photos_taken(), 0u);  // webcam07(roof).
  // Action set records the active sendPhotoMessage invocations.
  for (const Action& action : q5->accumulated_actions().actions()) {
    EXPECT_EQ(action.prototype, "sendPhotoMessage");
  }
  EXPECT_FALSE(q5->accumulated_actions().empty());
}

TEST(PhotoMessagingTest, Q5RequiresPhotoMessagingOption) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  // Without the option the prototype is undeclared: schema inference and
  // evaluation must fail cleanly, not crash.
  PlanPtr q5 = scenario->Q5();
  EXPECT_FALSE(
      q5->InferSchema(scenario->env(), &scenario->streams()).ok());
}

TEST(PhotoMessagingTest, ContactsSchemaGainsPhotoAttributes) {
  TemperatureScenarioOptions options;
  options.photo_messaging = true;
  auto scenario = TemperatureScenario::Build(options).MoveValueOrDie();
  const XRelation* contacts =
      scenario->env().GetRelation("contacts").ValueOrDie();
  EXPECT_TRUE(contacts->schema().IsVirtual("photo"));
  EXPECT_TRUE(contacts->schema().IsVirtual("delivered"));
  EXPECT_EQ(contacts->schema().binding_patterns().size(), 2u);
  // Tuple arity is unchanged: virtual attributes carry no coordinate.
  EXPECT_EQ(contacts->schema().real_arity(), 3u);
}

/// RSS scenario: keyword windows and forwarding (§5.2 second experiment).
class RssContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = RssScenario::Build().MoveValueOrDie();
    executor_ = std::make_unique<ContinuousExecutor>(&scenario_->env(),
                                                     &scenario_->streams());
    executor_->AddSource(
        [this](Timestamp t) { return scenario_->PumpNews(t); });
  }

  std::unique_ptr<RssScenario> scenario_;
  std::unique_ptr<ContinuousExecutor> executor_;
};

TEST_F(RssContinuousTest, KeywordWindowTracksMatchingItems) {
  auto query = std::make_shared<ContinuousQuery>(
      "obama", scenario_->KeywordQuery("Obama", 10));
  std::size_t last_size = 0;
  std::size_t total_steps = 0;
  query->set_sink([&](Timestamp, const XRelation& r) {
    last_size = r.size();
    ++total_steps;
  });
  ASSERT_TRUE(executor_->Register(query).ok());
  executor_->Run(20);
  EXPECT_EQ(total_steps, 20u);
  EXPECT_TRUE(executor_->last_errors().empty());
  EXPECT_GT(last_size, 0u);  // Keyword rate guarantees matches in-window.
}

TEST_F(RssContinuousTest, MatchingNewsForwardedAsMessages) {
  auto query = std::make_shared<ContinuousQuery>(
      "forward", scenario_->ForwardQuery("Obama", 5, "Carla"));
  ASSERT_TRUE(executor_->Register(query).ok());
  executor_->Run(10);
  EXPECT_TRUE(executor_->last_errors().empty());
  const auto& outbox = scenario_->email()->outbox();
  ASSERT_FALSE(outbox.empty());
  for (const SentMessage& m : outbox) {
    EXPECT_EQ(m.address, "carla@elysee.fr");
    EXPECT_NE(m.text.find("Obama"), std::string::npos);
  }
  // Delta semantics: each matching item is forwarded exactly once even
  // though it stays in the window for 5 instants.
  std::set<std::string> unique_texts;
  for (const SentMessage& m : outbox) unique_texts.insert(m.text);
  EXPECT_EQ(unique_texts.size(), outbox.size());
}

}  // namespace
}  // namespace serena
