// Unit tests for the observability layer: the JSON writer, counters,
// gauges, the exponential latency histogram, the metrics registry, and
// the span/trace ring buffer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace serena {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, EscapesStrings) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").Value("tick");
  json.Key("count").Value(std::uint64_t{3});
  json.Key("mean").Value(1.5);
  json.Key("empty").BeginArray().EndArray();
  json.Key("items").BeginArray();
  json.Value(std::int64_t{-1}).Value(true);
  json.BeginObject().Key("k").Value("v").EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"tick\",\"count\":3,\"mean\":1.5,\"empty\":[],"
            "\"items\":[-1,true,{\"k\":\"v\"}]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Value(std::numeric_limits<double>::quiet_NaN());
  json.Value(std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsAreExponentialBase2) {
  EXPECT_EQ(Histogram::BucketBound(0), 256u);
  EXPECT_EQ(Histogram::BucketBound(1), 512u);
  EXPECT_EQ(Histogram::BucketBound(2), 1024u);
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBucketCount - 1),
            std::uint64_t{1} << 35);
  // The overflow bucket is unbounded.
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBucketCount), UINT64_MAX);
}

TEST(HistogramTest, BucketIndexMatchesBounds) {
  // Every value must land in the first bucket whose (exclusive) upper
  // bound is above it.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(255), 0u);
  EXPECT_EQ(Histogram::BucketIndex(256), 1u);
  EXPECT_EQ(Histogram::BucketIndex(511), 1u);
  EXPECT_EQ(Histogram::BucketIndex(512), 2u);
  EXPECT_EQ(Histogram::BucketIndex((std::uint64_t{1} << 35) - 1),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 35),
            Histogram::kBucketCount);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBucketCount);

  // The invariant, exhaustively at every boundary: value < bound(index),
  // and value >= bound(index - 1) when there is a previous bucket.
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t bound = Histogram::BucketBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound - 1), i) << "below bound " << bound;
    EXPECT_EQ(Histogram::BucketIndex(bound), i + 1) << "at bound " << bound;
  }
}

TEST(HistogramTest, RecordsSummaryStatistics) {
  Histogram histogram;
  EXPECT_EQ(histogram.min(), 0u);  // Empty.
  EXPECT_EQ(histogram.ValueAtPercentile(50), 0u);

  histogram.Record(100);
  histogram.Record(300);
  histogram.Record(1000);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 1400u);
  EXPECT_EQ(histogram.min(), 100u);
  EXPECT_EQ(histogram.max(), 1000u);
  EXPECT_NEAR(histogram.mean(), 1400.0 / 3.0, 1e-9);
  EXPECT_EQ(histogram.BucketCount(0), 1u);  // 100 < 256
  EXPECT_EQ(histogram.BucketCount(1), 1u);  // 300 in [256, 512)
  EXPECT_EQ(histogram.BucketCount(2), 1u);  // 1000 in [512, 1024)

  // Percentiles resolve to bucket upper bounds, clamped to the max.
  EXPECT_EQ(histogram.ValueAtPercentile(0), 100u);
  EXPECT_EQ(histogram.ValueAtPercentile(10), 256u);
  EXPECT_EQ(histogram.ValueAtPercentile(50), 512u);
  EXPECT_EQ(histogram.ValueAtPercentile(99), 1000u);  // bound 1024 > max
  EXPECT_EQ(histogram.ValueAtPercentile(100), 1000u);

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
}

TEST(HistogramTest, OverflowValuesLandInOverflowBucket) {
  Histogram histogram;
  histogram.Record(UINT64_MAX);
  EXPECT_EQ(histogram.BucketCount(Histogram::kBucketCount), 1u);
  EXPECT_EQ(histogram.ValueAtPercentile(50), UINT64_MAX);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetReturnsStableIdentity) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.counter");
  counter.Increment(5);
  EXPECT_EQ(&registry.GetCounter("test.counter"), &counter);
  EXPECT_EQ(registry.GetCounter("test.counter").value(), 5u);
  EXPECT_EQ(registry.FindCounter("test.counter"), &counter);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("test.counter"), nullptr);
}

TEST(MetricsRegistryTest, ResetValuesKeepsIdentities) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Increment(3);
  histogram.Record(100);
  registry.ResetValues();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(&registry.GetCounter("c"), &counter);  // Still the same object.
}

TEST(MetricsRegistryTest, ToJsonListsAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("serena.test.events").Increment(7);
  registry.GetGauge("serena.test.depth").Set(-2);
  Histogram& histogram = registry.GetHistogram("serena.test.latency_ns");
  histogram.Record(300);
  histogram.Record(300);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json, R"({"counters":{"serena.test.events":7},)"
                  R"("gauges":{"serena.test.depth":-2},)"
                  R"("histograms":{"serena.test.latency_ns":{)"
                  R"("count":2,"sum":600,"min":300,"max":300,"mean":300,)"
                  R"("p50":300,"p90":300,"p99":300,)"
                  R"("buckets":[{"le":512,"count":2}]}}})");
}

TEST(MetricsRegistryTest, EnabledToggles) {
  MetricsRegistry registry;
  // Fresh registries honor SERENA_METRICS; the tests run without it set,
  // so instrumentation starts enabled.
  EXPECT_TRUE(registry.enabled());
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
}

// ---------------------------------------------------------------------------
// TraceBuffer / Span
// ---------------------------------------------------------------------------

TEST(TraceBufferTest, RingOverwritesOldest) {
  TraceBuffer buffer(/*capacity=*/3);
  buffer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    SpanRecord record;
    record.name = "span" + std::to_string(i);
    record.instant = i;
    buffer.Record(std::move(record));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.total_recorded(), 5u);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "span2");  // Oldest retained...
  EXPECT_EQ(spans[2].name, "span4");  // ...to newest.

  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceBufferTest, SpanRecordsDualTimestamps) {
  TraceBuffer buffer(/*capacity=*/8);
  buffer.set_enabled(true);
  {
    Span span("executor.step", /*instant=*/42, "weather", &buffer);
  }
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "executor.step");
  EXPECT_EQ(spans[0].detail, "weather");
  EXPECT_EQ(spans[0].instant, 42);
  EXPECT_GT(spans[0].start_ns, 0u);

  const std::string json = buffer.ToJson();
  EXPECT_NE(json.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"executor.step\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"weather\""), std::string::npos);
  EXPECT_NE(json.find("\"instant\":42"), std::string::npos);
}

TEST(TraceBufferTest, DisabledBufferRecordsNothing) {
  TraceBuffer buffer(/*capacity=*/8);
  ASSERT_FALSE(buffer.enabled());  // Disabled by default.
  {
    Span span("ignored", 1, {}, &buffer);
  }
  EXPECT_EQ(buffer.total_recorded(), 0u);
}

TEST(TraceBufferTest, ShrinkingCapacityKeepsNewest) {
  TraceBuffer buffer(/*capacity=*/4);
  buffer.set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    SpanRecord record;
    record.name = "span" + std::to_string(i);
    buffer.Record(std::move(record));
  }
  buffer.set_capacity(2);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[1].name, "span3");
}

TEST(TraceBufferTest, OverflowBumpsDroppedCounterAndJson) {
  MetricsRegistry::Global().set_enabled(true);
  Counter& dropped_counter =
      MetricsRegistry::Global().GetCounter("serena.trace.dropped");
  const std::uint64_t before = dropped_counter.value();

  TraceBuffer buffer(/*capacity=*/2);
  buffer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    SpanRecord record;
    record.name = "span" + std::to_string(i);
    buffer.Record(std::move(record));
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.total_recorded(), 5u);
  EXPECT_EQ(buffer.dropped(), 3u);
  EXPECT_EQ(dropped_counter.value(), before + 3);
  EXPECT_NE(buffer.ToJson().find("\"dropped\":3"), std::string::npos);

  buffer.Clear();
  EXPECT_EQ(buffer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Span contexts / causal propagation
// ---------------------------------------------------------------------------

TEST(SpanContextTest, NestedSpansShareTraceAndParent) {
  TraceBuffer buffer(/*capacity=*/8);
  buffer.set_enabled(true);
  ASSERT_FALSE(CurrentSpanContext().valid());
  {
    Span outer("outer", /*instant=*/1, {}, &buffer);
    const SpanContext outer_context = outer.context();
    ASSERT_TRUE(outer_context.valid());
    // A root span starts its own trace.
    EXPECT_EQ(outer_context.trace_id, outer_context.span_id);
    EXPECT_EQ(CurrentSpanContext().span_id, outer_context.span_id);
    {
      Span inner("inner", /*instant=*/1, {}, &buffer);
      EXPECT_EQ(inner.context().trace_id, outer_context.trace_id);
      EXPECT_NE(inner.context().span_id, outer_context.span_id);
      EXPECT_EQ(CurrentSpanContext().span_id, inner.context().span_id);
    }
    // Inner's destruction restores the outer context.
    EXPECT_EQ(CurrentSpanContext().span_id, outer_context.span_id);
  }
  EXPECT_FALSE(CurrentSpanContext().valid());

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);  // Inner completes (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[0].thread_index, 1u);
}

TEST(SpanContextTest, InertSpanInstallsNoContext) {
  TraceBuffer buffer(/*capacity=*/8);  // Disabled.
  Span span("ignored", 1, {}, &buffer);
  EXPECT_FALSE(CurrentSpanContext().valid());
  EXPECT_FALSE(span.context().valid());
}

TEST(SpanContextTest, PreallocatedSpanIdIsUsed) {
  TraceBuffer buffer(/*capacity=*/8);
  buffer.set_enabled(true);
  const std::uint64_t id = NextSpanId();
  {
    Span span("invoke", 1, "svc", id, &buffer);
    EXPECT_EQ(span.context().span_id, id);
    span.set_link_span(id + 1000);
  }
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, id);
  EXPECT_EQ(spans[0].link_span_id, id + 1000);
}

TEST(SpanContextTest, ThreadPoolPropagatesSubmitterContext) {
  TraceBuffer& buffer = TraceBuffer::Global();
  buffer.Clear();
  buffer.set_enabled(true);
  ThreadPool pool(2);
  SpanContext root_context;
  {
    Span root("root", /*instant=*/7);
    root_context = root.context();
    pool.ParallelFor(6, [](std::size_t i) {
      Span child("child" + std::to_string(i), /*instant=*/7);
      // A little work so pool helpers get a share of the indices.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  buffer.set_enabled(false);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  buffer.Clear();

  std::size_t children = 0;
  for (const SpanRecord& span : spans) {
    if (span.name.rfind("child", 0) != 0) continue;
    ++children;
    // Regardless of which pool thread ran it, every child belongs to the
    // root's trace and parents under the root span.
    EXPECT_EQ(span.trace_id, root_context.trace_id);
    EXPECT_EQ(span.parent_id, root_context.span_id);
  }
  EXPECT_EQ(children, 6u);
}

// ---------------------------------------------------------------------------
// Torn-dashboard regression: snapshots stay internally consistent while
// writers and resetters race.
// ---------------------------------------------------------------------------

TEST(HistogramTest, SnapshotConsistentUnderConcurrentReset) {
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Record(1u << 10);
      histogram.Record(1u << 20);
    }
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) histogram.Reset();
  });
  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot snapshot = histogram.Snapshot();
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : snapshot.buckets) bucket_sum += b;
    // The invariant the field-by-field reads could not give: count always
    // equals the bucket mass the percentile walk will traverse.
    ASSERT_EQ(snapshot.count, bucket_sum);
    const std::uint64_t p50 = snapshot.ValueAtPercentile(50);
    const std::uint64_t p99 = snapshot.ValueAtPercentile(99);
    ASSERT_LE(p50, p99);
    if (snapshot.count == 0) {
      ASSERT_EQ(p50, 0u);
      ASSERT_EQ(snapshot.mean(), 0.0);
    }
  }
  stop.store(true);
  writer.join();
  resetter.join();
}

}  // namespace
}  // namespace obs
}  // namespace serena
