// Unit tests for the observability layer: the JSON writer, counters,
// gauges, the exponential latency histogram, the metrics registry, and
// the span/trace ring buffer.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace serena {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, EscapesStrings) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").Value("tick");
  json.Key("count").Value(std::uint64_t{3});
  json.Key("mean").Value(1.5);
  json.Key("empty").BeginArray().EndArray();
  json.Key("items").BeginArray();
  json.Value(std::int64_t{-1}).Value(true);
  json.BeginObject().Key("k").Value("v").EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"tick\",\"count\":3,\"mean\":1.5,\"empty\":[],"
            "\"items\":[-1,true,{\"k\":\"v\"}]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Value(std::numeric_limits<double>::quiet_NaN());
  json.Value(std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsAreExponentialBase2) {
  EXPECT_EQ(Histogram::BucketBound(0), 256u);
  EXPECT_EQ(Histogram::BucketBound(1), 512u);
  EXPECT_EQ(Histogram::BucketBound(2), 1024u);
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBucketCount - 1),
            std::uint64_t{1} << 35);
  // The overflow bucket is unbounded.
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBucketCount), UINT64_MAX);
}

TEST(HistogramTest, BucketIndexMatchesBounds) {
  // Every value must land in the first bucket whose (exclusive) upper
  // bound is above it.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(255), 0u);
  EXPECT_EQ(Histogram::BucketIndex(256), 1u);
  EXPECT_EQ(Histogram::BucketIndex(511), 1u);
  EXPECT_EQ(Histogram::BucketIndex(512), 2u);
  EXPECT_EQ(Histogram::BucketIndex((std::uint64_t{1} << 35) - 1),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 35),
            Histogram::kBucketCount);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBucketCount);

  // The invariant, exhaustively at every boundary: value < bound(index),
  // and value >= bound(index - 1) when there is a previous bucket.
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t bound = Histogram::BucketBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound - 1), i) << "below bound " << bound;
    EXPECT_EQ(Histogram::BucketIndex(bound), i + 1) << "at bound " << bound;
  }
}

TEST(HistogramTest, RecordsSummaryStatistics) {
  Histogram histogram;
  EXPECT_EQ(histogram.min(), 0u);  // Empty.
  EXPECT_EQ(histogram.ValueAtPercentile(50), 0u);

  histogram.Record(100);
  histogram.Record(300);
  histogram.Record(1000);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 1400u);
  EXPECT_EQ(histogram.min(), 100u);
  EXPECT_EQ(histogram.max(), 1000u);
  EXPECT_NEAR(histogram.mean(), 1400.0 / 3.0, 1e-9);
  EXPECT_EQ(histogram.BucketCount(0), 1u);  // 100 < 256
  EXPECT_EQ(histogram.BucketCount(1), 1u);  // 300 in [256, 512)
  EXPECT_EQ(histogram.BucketCount(2), 1u);  // 1000 in [512, 1024)

  // Percentiles resolve to bucket upper bounds, clamped to the max.
  EXPECT_EQ(histogram.ValueAtPercentile(0), 100u);
  EXPECT_EQ(histogram.ValueAtPercentile(10), 256u);
  EXPECT_EQ(histogram.ValueAtPercentile(50), 512u);
  EXPECT_EQ(histogram.ValueAtPercentile(99), 1000u);  // bound 1024 > max
  EXPECT_EQ(histogram.ValueAtPercentile(100), 1000u);

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
}

TEST(HistogramTest, OverflowValuesLandInOverflowBucket) {
  Histogram histogram;
  histogram.Record(UINT64_MAX);
  EXPECT_EQ(histogram.BucketCount(Histogram::kBucketCount), 1u);
  EXPECT_EQ(histogram.ValueAtPercentile(50), UINT64_MAX);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetReturnsStableIdentity) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.counter");
  counter.Increment(5);
  EXPECT_EQ(&registry.GetCounter("test.counter"), &counter);
  EXPECT_EQ(registry.GetCounter("test.counter").value(), 5u);
  EXPECT_EQ(registry.FindCounter("test.counter"), &counter);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("test.counter"), nullptr);
}

TEST(MetricsRegistryTest, ResetValuesKeepsIdentities) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Increment(3);
  histogram.Record(100);
  registry.ResetValues();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(&registry.GetCounter("c"), &counter);  // Still the same object.
}

TEST(MetricsRegistryTest, ToJsonListsAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("serena.test.events").Increment(7);
  registry.GetGauge("serena.test.depth").Set(-2);
  Histogram& histogram = registry.GetHistogram("serena.test.latency_ns");
  histogram.Record(300);
  histogram.Record(300);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json, R"({"counters":{"serena.test.events":7},)"
                  R"("gauges":{"serena.test.depth":-2},)"
                  R"("histograms":{"serena.test.latency_ns":{)"
                  R"("count":2,"sum":600,"min":300,"max":300,"mean":300,)"
                  R"("p50":300,"p90":300,"p99":300,)"
                  R"("buckets":[{"le":512,"count":2}]}}})");
}

TEST(MetricsRegistryTest, EnabledToggles) {
  MetricsRegistry registry;
  // Fresh registries honor SERENA_METRICS; the tests run without it set,
  // so instrumentation starts enabled.
  EXPECT_TRUE(registry.enabled());
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
}

// ---------------------------------------------------------------------------
// TraceBuffer / Span
// ---------------------------------------------------------------------------

TEST(TraceBufferTest, RingOverwritesOldest) {
  TraceBuffer buffer(/*capacity=*/3);
  buffer.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    SpanRecord record;
    record.name = "span" + std::to_string(i);
    record.instant = i;
    buffer.Record(std::move(record));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.total_recorded(), 5u);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "span2");  // Oldest retained...
  EXPECT_EQ(spans[2].name, "span4");  // ...to newest.

  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceBufferTest, SpanRecordsDualTimestamps) {
  TraceBuffer buffer(/*capacity=*/8);
  buffer.set_enabled(true);
  {
    Span span("executor.step", /*instant=*/42, "weather", &buffer);
  }
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "executor.step");
  EXPECT_EQ(spans[0].detail, "weather");
  EXPECT_EQ(spans[0].instant, 42);
  EXPECT_GT(spans[0].start_ns, 0u);

  const std::string json = buffer.ToJson();
  EXPECT_NE(json.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"executor.step\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"weather\""), std::string::npos);
  EXPECT_NE(json.find("\"instant\":42"), std::string::npos);
}

TEST(TraceBufferTest, DisabledBufferRecordsNothing) {
  TraceBuffer buffer(/*capacity=*/8);
  ASSERT_FALSE(buffer.enabled());  // Disabled by default.
  {
    Span span("ignored", 1, {}, &buffer);
  }
  EXPECT_EQ(buffer.total_recorded(), 0u);
}

TEST(TraceBufferTest, ShrinkingCapacityKeepsNewest) {
  TraceBuffer buffer(/*capacity=*/4);
  buffer.set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    SpanRecord record;
    record.name = "span" + std::to_string(i);
    buffer.Record(std::move(record));
  }
  buffer.set_capacity(2);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[1].name, "span3");
}

}  // namespace
}  // namespace obs
}  // namespace serena
