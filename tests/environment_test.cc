#include "xrel/environment.h"

#include <gtest/gtest.h>

#include "algebra/explain.h"
#include "env/prototypes.h"
#include "env/scenario.h"

namespace serena {
namespace {

TEST(EnvironmentTest, PrototypeCatalog) {
  Environment env;
  ASSERT_TRUE(env.AddPrototype(MakeSendMessagePrototype()).ok());
  EXPECT_EQ(env.AddPrototype(MakeSendMessagePrototype()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(env.AddPrototype(nullptr).ok());
  EXPECT_TRUE(env.HasPrototype("sendMessage"));
  EXPECT_FALSE(env.HasPrototype("nope"));
  EXPECT_EQ(env.PrototypeNames(),
            (std::vector<std::string>{"sendMessage"}));
}

TEST(EnvironmentTest, RelationLifecycle) {
  Environment env;
  auto schema =
      ExtendedSchema::Create("r", {{"a", DataType::kInt}}).ValueOrDie();
  ASSERT_TRUE(env.AddRelation(schema).ok());
  EXPECT_EQ(env.AddRelation(schema).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(env.HasRelation("r"));
  XRelation* r = env.GetMutableRelation("r").ValueOrDie();
  ASSERT_TRUE(r->Insert(Tuple{Value::Int(1)}).ok());
  EXPECT_EQ(env.GetRelation("r").ValueOrDie()->size(), 1u);
  ASSERT_TRUE(env.DropRelation("r").ok());
  EXPECT_FALSE(env.HasRelation("r"));
  EXPECT_EQ(env.DropRelation("r").code(), StatusCode::kNotFound);
}

TEST(EnvironmentTest, UrsaRejectsConflictingAttributeTypes) {
  Environment env;
  ASSERT_TRUE(env.AddRelation(ExtendedSchema::Create(
                                  "a", {{"temperature", DataType::kReal}})
                                  .ValueOrDie())
                  .ok());
  // Same attribute name with a different type violates URSA (§2.3.2).
  const Status status = env.AddRelation(
      ExtendedSchema::Create("b", {{"temperature", DataType::kString}})
          .ValueOrDie());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Same type is fine.
  EXPECT_TRUE(env.AddRelation(ExtendedSchema::Create(
                                  "c", {{"temperature", DataType::kReal}})
                                  .ValueOrDie())
                  .ok());
}

TEST(EnvironmentTest, RelationWithUndeclaredPrototypeRejected) {
  Environment env;
  auto schema =
      ExtendedSchema::Create(
          "contacts",
          {{"address", DataType::kString},
           {"text", DataType::kString, AttributeKind::kVirtual},
           {"messenger", DataType::kService},
           {"sent", DataType::kBool, AttributeKind::kVirtual}},
          {BindingPattern(MakeSendMessagePrototype(), "messenger")})
          .ValueOrDie();
  // sendMessage was never declared in this environment's catalog.
  EXPECT_EQ(env.AddRelation(schema).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EnvironmentTest, PutRelationReplacesContents) {
  Environment env;
  auto schema =
      ExtendedSchema::Create("r", {{"a", DataType::kInt}}).ValueOrDie();
  XRelation v1(schema);
  (void)v1.Insert(Tuple{Value::Int(1)});
  ASSERT_TRUE(env.PutRelation(v1).ok());
  XRelation v2(schema);
  (void)v2.Insert(Tuple{Value::Int(2)});
  (void)v2.Insert(Tuple{Value::Int(3)});
  ASSERT_TRUE(env.PutRelation(v2).ok());
  EXPECT_EQ(env.GetRelation("r").ValueOrDie()->size(), 2u);
}

TEST(ExplainTest, RendersTreeWithSchemas) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  const std::string explained = ExplainPlan(
      scenario->Q1(), scenario->env(), &scenario->streams());
  // Operator tree, indented.
  EXPECT_NE(explained.find("invoke[sendMessage]"), std::string::npos);
  EXPECT_NE(explained.find("  assign[text := 'Bonjour!']"),
            std::string::npos);
  EXPECT_NE(explained.find("      contacts"), std::string::npos);
  // Annotations: activity and schema partition.
  EXPECT_NE(explained.find("ACTIVE"), std::string::npos);
  EXPECT_NE(explained.find("virtual: {"), std::string::npos);
}

TEST(ExplainTest, DegradesGracefullyWithoutSchemas) {
  Environment env;
  // Unknown relation: inference fails, rendering still works.
  const std::string explained =
      ExplainPlan(Select(Scan("ghost"),
                         Formula::Compare(Operand::Attr("a"), CompareOp::kEq,
                                          Operand::Const(Value::Int(1)))),
                  env, nullptr);
  EXPECT_NE(explained.find("select[a = 1]"), std::string::npos);
  EXPECT_NE(explained.find("ghost"), std::string::npos);
  EXPECT_EQ(ExplainPlan(nullptr, env, nullptr), "(null plan)\n");
}

TEST(ExplainTest, CoversAllOperatorKinds) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  PlanPtr everything = Streaming(
      Aggregate(
          Project(
              Rename(UnionOf(Scan("sensors"), Scan("sensors")), "sensor",
                     "device"),
              {"device", "location"}),
          {"location"}, {{AggregateFn::kCount, "", "n"}}),
      StreamingType::kHeartbeat);
  const std::string explained =
      ExplainPlan(everything, scenario->env(), &scenario->streams());
  for (const char* bit : {"stream[heartbeat]", "aggregate[location;",
                          "project[device, location]",
                          "rename[sensor -> device]", "union"}) {
    EXPECT_NE(explained.find(bit), std::string::npos) << bit;
  }
}

}  // namespace
}  // namespace serena
