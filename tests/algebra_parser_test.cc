#include "ddl/algebra_parser.h"

#include <gtest/gtest.h>

#include "env/scenario.h"

namespace serena {
namespace {

TEST(AlgebraParserTest, ParsesScan) {
  PlanPtr plan = ParseAlgebra("contacts").ValueOrDie();
  EXPECT_EQ(plan->kind(), PlanKind::kScan);
  EXPECT_EQ(plan->ToString(), "contacts");
}

TEST(AlgebraParserTest, ParsesTable4Q1) {
  PlanPtr plan =
      ParseAlgebra("invoke[sendMessage](assign[text := 'Bonjour!'](select["
                   "name != 'Carla'](contacts)))")
          .ValueOrDie();
  EXPECT_EQ(plan->ToString(),
            "invoke[sendMessage](assign[text := 'Bonjour!'](select[name != "
            "'Carla'](contacts)))");
}

TEST(AlgebraParserTest, ParsesAllOperators) {
  const char* expressions[] = {
      "project[photo](cameras)",
      "select[quality >= 5](cameras)",
      "select[(a = 1 and b != 2) or not (c < 3.5)](r)",
      "rename[location -> area](temperatures)",
      "join(sensors, surveillance)",
      "union(a, b)",
      "intersect(a, b)",
      "difference(a, b)",
      "assign[quality := 5](cameras)",
      "assign[text := title](news)",
      "invoke[takePhoto[camera]](cameras)",
      "window[60](temperatures)",
      "stream[insertion](project[photo](cameras))",
      "select[title contains 'Obama'](window[60](news))",
  };
  for (const char* expr : expressions) {
    auto plan = ParseAlgebra(expr);
    ASSERT_TRUE(plan.ok()) << expr << ": " << plan.status();
  }
}

TEST(AlgebraParserTest, RoundTripsThroughToString) {
  const char* expressions[] = {
      "invoke[sendMessage](assign[text := 'Bonjour!'](select[name != "
      "'Carla'](contacts)))",
      "project[photo](invoke[takePhoto](select[quality >= "
      "5](invoke[checkPhoto](select[area = 'office'](cameras)))))",
      "stream[insertion](project[area, photo](invoke[takePhoto](assign["
      "quality := 5](join(rename[location -> area](select[temperature < "
      "12](window[1](temperatures))), cameras)))))",
      "select[temperature > 35.5](window[1](temperatures))",
  };
  for (const char* expr : expressions) {
    PlanPtr once = ParseAlgebra(expr).ValueOrDie();
    PlanPtr twice = ParseAlgebra(once->ToString()).ValueOrDie();
    EXPECT_EQ(once->ToString(), twice->ToString()) << expr;
  }
}

TEST(AlgebraParserTest, ScenarioQueriesRoundTrip) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  for (const PlanPtr& plan :
       {scenario->Q1(), scenario->Q1Prime(), scenario->Q2(),
        scenario->Q2Prime(), scenario->Q3(), scenario->Q4()}) {
    PlanPtr reparsed = ParseAlgebra(plan->ToString()).ValueOrDie();
    EXPECT_EQ(reparsed->ToString(), plan->ToString());
  }
}

TEST(AlgebraParserTest, ParsedPlanExecutesLikeBuiltPlan) {
  auto scenario = TemperatureScenario::Build().MoveValueOrDie();
  PlanPtr parsed = ParseAlgebra(scenario->Q1()->ToString()).ValueOrDie();
  QueryResult built = Execute(scenario->Q1(), &scenario->env(),
                              &scenario->streams(), 3)
                          .ValueOrDie();
  QueryResult reparsed =
      Execute(parsed, &scenario->env(), &scenario->streams(), 3)
          .ValueOrDie();
  EXPECT_TRUE(built.relation.SetEquals(reparsed.relation));
  EXPECT_EQ(built.actions, reparsed.actions);
}

TEST(AlgebraParserTest, FormulaParsing) {
  FormulaPtr f =
      ParseFormula("a = 1 and (b > 2.5 or not c != 'x')").ValueOrDie();
  EXPECT_EQ(f->ToString(), "(a = 1 and (b > 2.5 or not (c != 'x')))");
  FormulaPtr neg = ParseFormula("t < -5").ValueOrDie();
  EXPECT_EQ(neg->ToString(), "t < -5");
}

TEST(AlgebraParserTest, ErrorsAreParseErrors) {
  for (const char* bad : {"select[](r)", "project[](r)", "join(a)",
                          "invoke[p](r", "window[x](s)", "select[a =](r)",
                          "rename[a, b](r)", "stream[sideways](r)",
                          "union(a, b) trailing"}) {
    auto result = ParseAlgebra(bad);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kParseError) << bad;
  }
}

}  // namespace
}  // namespace serena
