// EXPLAIN ANALYZE: running a plan and annotating every node with its
// actual row counts, timings and invocation counts. Uses the paper's §4
// walkthrough query Q1 over the temperature scenario.

#include "algebra/explain.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "env/scenario.h"

namespace serena {
namespace {

/// Splits the rendering into lines for per-node assertions.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// The line containing `needle`, or "" when absent.
std::string LineWith(const std::string& text, const std::string& needle) {
  for (const std::string& line : Lines(text)) {
    if (line.find(needle) != std::string::npos) return line;
  }
  return "";
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = TemperatureScenario::Build().MoveValueOrDie();
  }

  Environment& env() { return scenario_->env(); }
  StreamStore& streams() { return scenario_->streams(); }

  std::unique_ptr<TemperatureScenario> scenario_;
};

// The §4 walkthrough query Q1:
//   β_sendMessage(α_text:='Bonjour!'(σ_name≠'Carla'(contacts)))
// contacts holds 3 tuples; the selection drops Carla, so every node above
// it produces exactly 2 rows and the invocation issues 2 service calls.
TEST_F(ExplainAnalyzeTest, AnnotatesQ1WithActualRowsAndTimings) {
  const std::string out =
      ExplainAnalyzePlan(scenario_->Q1(), &env(), &streams());

  const std::string scan = LineWith(out, "contacts");
  EXPECT_NE(scan.find("actual rows=3"), std::string::npos) << out;
  EXPECT_NE(scan.find("time="), std::string::npos) << out;

  const std::string select = LineWith(out, "select[");
  EXPECT_NE(select.find("actual rows=2"), std::string::npos) << out;

  const std::string assign = LineWith(out, "assign[");
  EXPECT_NE(assign.find("actual rows=2"), std::string::npos) << out;

  const std::string invoke = LineWith(out, "invoke[sendMessage]");
  EXPECT_NE(invoke.find("actual rows=2"), std::string::npos) << out;
  EXPECT_NE(invoke.find("invocations=2"), std::string::npos) << out;

  // The run footer: the instant it executed at and the actions the active
  // invocation produced (one sendMessage action per surviving contact).
  EXPECT_NE(out.find("actions: 2"), std::string::npos) << out;

  // ANALYZE *runs* the query: the two messengers were actually invoked.
  EXPECT_GE(env().registry().stats().physical_invocations, 2u);
}

TEST_F(ExplainAnalyzeTest, RepeatedAnalyzeCountsFreshInvocations) {
  // A second ANALYZE at a later instant re-invokes (per-instant memo does
  // not apply across instants).
  ExplainAnalyzeOptions options;
  options.instant = 50;
  const std::string first =
      ExplainAnalyzePlan(scenario_->Q1(), &env(), &streams(), options);
  EXPECT_NE(LineWith(first, "invoke[sendMessage]").find("invocations=2"),
            std::string::npos);

  options.instant = 51;
  const std::string second =
      ExplainAnalyzePlan(scenario_->Q1(), &env(), &streams(), options);
  EXPECT_NE(LineWith(second, "invoke[sendMessage]").find("invocations=2"),
            std::string::npos);
}

TEST_F(ExplainAnalyzeTest, EmptyCollectorRendersNeverExecuted) {
  PlanStatsCollector empty;
  const std::string out =
      RenderPlanWithStats(scenario_->Q1(), env(), &streams(), empty);
  for (const std::string& line : Lines(out)) {
    if (line.empty()) continue;
    EXPECT_NE(line.find("(never executed)"), std::string::npos) << line;
  }
}

TEST_F(ExplainAnalyzeTest, EvaluationFailureIsReportedInline) {
  // A scan of a relation that does not exist: ANALYZE still renders the
  // tree and appends the error instead of failing.
  const PlanPtr bad = Scan("no_such_relation");
  const std::string out = ExplainAnalyzePlan(bad, &env(), &streams());
  EXPECT_NE(out.find("no_such_relation"), std::string::npos);
  EXPECT_NE(out.find("evaluation failed:"), std::string::npos) << out;
}

TEST_F(ExplainAnalyzeTest, NullPlanAndEnvironmentDegradeGracefully) {
  EXPECT_EQ(ExplainAnalyzePlan(nullptr, &env(), &streams()), "(null plan)\n");
  EXPECT_EQ(ExplainAnalyzePlan(scenario_->Q1(), nullptr, &streams()),
            "(no environment)\n");
}

// Plain EXPLAIN must be unaffected by the ANALYZE plumbing: no actual-row
// annotations, no execution.
TEST_F(ExplainAnalyzeTest, PlainExplainDoesNotExecute) {
  const std::uint64_t physical_before =
      env().registry().stats().physical_invocations;
  const std::string out = ExplainPlan(scenario_->Q1(), env(), &streams());
  EXPECT_EQ(out.find("actual rows"), std::string::npos);
  EXPECT_EQ(env().registry().stats().physical_invocations, physical_before);
}

}  // namespace
}  // namespace serena
