#include "pems/monitor.h"

#include <gtest/gtest.h>

#include "env/sim_services.h"
#include "obs/metrics.h"

namespace serena {
namespace {

TEST(MonitorTest, SnapshotReflectsSystemState) {
  auto pems = Pems::Create().MoveValueOrDie();
  ASSERT_TRUE(pems->tables()
                  .ExecuteDdl(R"(
    PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
    PROTOTYPE getTemperature() : (temperature REAL);
    EXTENDED RELATION contacts (
      name STRING, address STRING, text STRING VIRTUAL,
      messenger SERVICE, sent BOOLEAN VIRTUAL
    ) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );
    INSERT INTO contacts VALUES ('Carla', 'c@x', 'email');
    EXTENDED STREAM temperatures (temperature REAL);
  )")
                  .ok());
  ASSERT_TRUE(pems->Deploy("gw", std::make_shared<MessengerService>(
                                     "email",
                                     MessengerService::Kind::kEmail))
                  .ok());
  pems->Run(2);
  ASSERT_TRUE(pems->queries()
                  .RegisterContinuous(
                      "blast",
                      "invoke[sendMessage](assign[text := 'x'](contacts))")
                  .ok());
  pems->Run(1);

  const PemsMetrics metrics = SnapshotMetrics(*pems);
  EXPECT_EQ(metrics.instant, 3);
  EXPECT_EQ(metrics.prototypes, 2u);
  EXPECT_EQ(metrics.relations, 1u);
  EXPECT_EQ(metrics.total_tuples, 1u);
  EXPECT_EQ(metrics.streams, 1u);
  EXPECT_EQ(metrics.services, 1u);
  EXPECT_EQ(metrics.services_discovered, 1u);
  EXPECT_GT(metrics.invocations.active_invocations, 0u);
  EXPECT_GT(metrics.network.sent, 0u);
  ASSERT_EQ(metrics.queries.size(), 1u);
  EXPECT_EQ(metrics.queries[0].name, "blast");
  EXPECT_EQ(metrics.queries[0].steps, 1u);
  EXPECT_EQ(metrics.queries[0].actions, 1u);

  const std::string rendered = metrics.ToString();
  EXPECT_NE(rendered.find("blast"), std::string::npos);
  EXPECT_NE(rendered.find("1 relations (1 tuples)"), std::string::npos);
}

TEST(MonitorTest, SnapshotToJsonHasAllSections) {
  auto pems = Pems::Create().MoveValueOrDie();
  ASSERT_TRUE(pems->tables()
                  .ExecuteDdl(R"(
    PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
    EXTENDED RELATION contacts (
      name STRING, address STRING, text STRING VIRTUAL,
      messenger SERVICE, sent BOOLEAN VIRTUAL
    ) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );
    INSERT INTO contacts VALUES ('Carla', 'c@x', 'email');
  )")
                  .ok());
  ASSERT_TRUE(pems->Deploy("gw", std::make_shared<MessengerService>(
                                     "email",
                                     MessengerService::Kind::kEmail))
                  .ok());
  pems->Run(2);
  ASSERT_TRUE(pems->queries()
                  .RegisterContinuous(
                      "blast",
                      "invoke[sendMessage](assign[text := 'x'](contacts))")
                  .ok());
  pems->Run(1);

  const std::string json = SnapshotMetrics(*pems).ToJson();
  // Every dashboard section, spot-checked by key.
  for (const char* expected :
       {"\"instant\":3", "\"catalog\":", "\"prototypes\":1",
        "\"relations\":1", "\"total_tuples\":1", "\"services\":",
        "\"available\":1", "\"discovered\":1", "\"invocations\":",
        "\"logical\":", "\"memo_hits\":", "\"failed\":", "\"network\":",
        "\"sent\":", "\"executor\":", "\"ticks\":3", "\"query_errors\":0",
        "\"tick_latency_ns\":", "\"queries\":[",
        "{\"name\":\"blast\",\"steps\":1,\"actions\":1}"}) {
    EXPECT_NE(json.find(expected), std::string::npos)
        << "missing " << expected << " in " << json;
  }
}

// The acceptance scenario for the telemetry layer: a PEMS running 100
// ticks with standing invocation queries must leave the process-wide
// registry holding a per-tick latency histogram, per-prototype invocation
// latencies, and memo hit/miss counts.
TEST(MonitorTest, HundredTickRunPopulatesMetricsRegistry) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetValues();  // Isolate from other tests in this binary.

  auto pems = Pems::Create().MoveValueOrDie();
  ASSERT_TRUE(pems->tables()
                  .ExecuteDdl(
                      "PROTOTYPE getTemperature() : (temperature REAL);")
                  .ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pems->Deploy("node-" + std::to_string(i),
                             std::make_shared<TemperatureSensorService>(
                                 "sensor0" + std::to_string(i), 18.0 + i,
                                 i + 1))
                    .ok());
  }
  pems->Run(2);  // Let discovery reach the core ERM.
  ASSERT_TRUE(pems->queries()
                  .RegisterDiscoveryQuery("thermometers", "getTemperature")
                  .ok());
  ASSERT_TRUE(pems->queries()
                  .RegisterContinuous(
                      "readings", "invoke[getTemperature](thermometers)")
                  .ok());
  // A second identical standing query: its invocations hit the
  // per-instant memo the first one populated.
  ASSERT_TRUE(pems->queries()
                  .RegisterContinuous(
                      "readings2", "invoke[getTemperature](thermometers)")
                  .ok());
  pems->Run(100);

  // Per-tick latency histogram.
  const obs::Histogram* tick_ns =
      registry.FindHistogram("serena.executor.tick_ns");
  ASSERT_NE(tick_ns, nullptr);
  EXPECT_GE(tick_ns->count(), 100u);
  EXPECT_GT(tick_ns->sum(), 0u);

  // Per-prototype invocation latency + memo traffic.
  const obs::Histogram* invoke_ns =
      registry.FindHistogram("serena.service.getTemperature.invoke_ns");
  ASSERT_NE(invoke_ns, nullptr);
  EXPECT_GT(invoke_ns->count(), 0u);
  const obs::Counter* memo_hits =
      registry.FindCounter("serena.service.getTemperature.memo_hits");
  const obs::Counter* memo_misses =
      registry.FindCounter("serena.service.getTemperature.memo_misses");
  ASSERT_NE(memo_hits, nullptr);
  ASSERT_NE(memo_misses, nullptr);
  EXPECT_GT(memo_hits->value(), 0u);
  EXPECT_GT(memo_misses->value(), 0u);

  // Per-query step latencies.
  EXPECT_NE(registry.FindHistogram("serena.executor.query.readings.step_ns"),
            nullptr);

  // The dashboard JSON reports it all.
  const std::string json = registry.ToJson();
  for (const char* expected :
       {"\"serena.executor.tick_ns\":",
        "\"serena.service.getTemperature.invoke_ns\":",
        "\"serena.service.getTemperature.memo_hits\":",
        "\"serena.op.invoke.rows_out\":", "\"buckets\":"}) {
    EXPECT_NE(json.find(expected), std::string::npos)
        << "missing " << expected << " in " << json;
  }

  // The per-instance snapshot agrees.
  const PemsMetrics metrics = SnapshotMetrics(*pems);
  EXPECT_EQ(metrics.total_ticks, 102u);
  EXPECT_GE(metrics.tick_latency.count, 100u);
  EXPECT_GT(metrics.invocations.memo_hits, 0u);
}

// The satellite bugfix: `last_errors()` only covers the most recent tick,
// so failures between two snapshots used to vanish. The monotonic
// `total_query_errors` never loses them.
TEST(MonitorTest, TotalQueryErrorsIsMonotonic) {
  auto pems = Pems::Create().MoveValueOrDie();
  ContinuousExecutor& executor = pems->queries().executor();
  ASSERT_TRUE(executor
                  .Register(std::make_shared<ContinuousQuery>(
                      "doomed", Scan("no_such_relation")))
                  .ok());
  pems->Run(3);
  EXPECT_EQ(executor.last_errors().size(), 1u);  // Most recent tick only.
  EXPECT_EQ(executor.total_query_errors(), 3u);  // All of them.
  EXPECT_EQ(SnapshotMetrics(*pems).total_query_errors, 3u);

  // A tick with no failure clears last_errors but not the total.
  ASSERT_TRUE(executor.Unregister("doomed").ok());
  pems->Run(1);
  EXPECT_TRUE(executor.last_errors().empty());
  EXPECT_EQ(executor.total_query_errors(), 3u);
}

TEST(MonitorTest, EmptySystemRenders) {
  auto pems = Pems::Create().MoveValueOrDie();
  const PemsMetrics metrics = SnapshotMetrics(*pems);
  EXPECT_EQ(metrics.relations, 0u);
  EXPECT_EQ(metrics.services, 0u);
  EXPECT_NE(metrics.ToString().find("continuous queries: 0"),
            std::string::npos);
}

}  // namespace
}  // namespace serena
