#include "pems/monitor.h"

#include <gtest/gtest.h>

#include "env/sim_services.h"

namespace serena {
namespace {

TEST(MonitorTest, SnapshotReflectsSystemState) {
  auto pems = Pems::Create().MoveValueOrDie();
  ASSERT_TRUE(pems->tables()
                  .ExecuteDdl(R"(
    PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;
    PROTOTYPE getTemperature() : (temperature REAL);
    EXTENDED RELATION contacts (
      name STRING, address STRING, text STRING VIRTUAL,
      messenger SERVICE, sent BOOLEAN VIRTUAL
    ) USING BINDING PATTERNS ( sendMessage[messenger](address, text) : (sent) );
    INSERT INTO contacts VALUES ('Carla', 'c@x', 'email');
    EXTENDED STREAM temperatures (temperature REAL);
  )")
                  .ok());
  ASSERT_TRUE(pems->Deploy("gw", std::make_shared<MessengerService>(
                                     "email",
                                     MessengerService::Kind::kEmail))
                  .ok());
  pems->Run(2);
  ASSERT_TRUE(pems->queries()
                  .RegisterContinuous(
                      "blast",
                      "invoke[sendMessage](assign[text := 'x'](contacts))")
                  .ok());
  pems->Run(1);

  const PemsMetrics metrics = SnapshotMetrics(*pems);
  EXPECT_EQ(metrics.instant, 3);
  EXPECT_EQ(metrics.prototypes, 2u);
  EXPECT_EQ(metrics.relations, 1u);
  EXPECT_EQ(metrics.total_tuples, 1u);
  EXPECT_EQ(metrics.streams, 1u);
  EXPECT_EQ(metrics.services, 1u);
  EXPECT_EQ(metrics.services_discovered, 1u);
  EXPECT_GT(metrics.invocations.active_invocations, 0u);
  EXPECT_GT(metrics.network.sent, 0u);
  ASSERT_EQ(metrics.queries.size(), 1u);
  EXPECT_EQ(metrics.queries[0].name, "blast");
  EXPECT_EQ(metrics.queries[0].steps, 1u);
  EXPECT_EQ(metrics.queries[0].actions, 1u);

  const std::string rendered = metrics.ToString();
  EXPECT_NE(rendered.find("blast"), std::string::npos);
  EXPECT_NE(rendered.find("1 relations (1 tuples)"), std::string::npos);
}

TEST(MonitorTest, EmptySystemRenders) {
  auto pems = Pems::Create().MoveValueOrDie();
  const PemsMetrics metrics = SnapshotMetrics(*pems);
  EXPECT_EQ(metrics.relations, 0u);
  EXPECT_EQ(metrics.services, 0u);
  EXPECT_NE(metrics.ToString().find("continuous queries: 0"),
            std::string::npos);
}

}  // namespace
}  // namespace serena
